"""Crash/recovery experiment: Fig. 4 under coordinator crashes.

``run_fig4_recovery`` executes the §6.1 ParslDock run with a write-ahead
journal attached and heartbeat leases on, kills the coordinator at a
chosen journal offset (:class:`~repro.faults.plan.CoordinatorCrash`),
then boots a **fresh** world that resumes from the crashed journal. The
claim under test is exact recovery: the resumed run's rendered outputs —
run status, per-site pytest artifacts, the summarize wave, the run log,
and normalized provenance — are byte-identical to an uninterrupted run,
and no journaled-complete task body ever executes twice (the idempotency
-key audit).

Crash points are *journal offsets*, not virtual times, so the same named
point means the same lifecycle moment in every run:

* ``mid-dispatch``  — the first ``task.dispatched`` record just landed;
* ``mid-execute``   — the first ``task.completed`` record just landed;
* ``between-waves`` — the last per-site job finished, the summarize wave
  has not started;
* ``after-last``    — the last ``task.completed`` record just landed.
"""

from __future__ import annotations

import json
from dataclasses import asdict, dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.core.reporting import parse_pytest_stdout
from repro.faults.plan import CoordinatorCrash, FaultPlan
from repro.suites import execute_suite, prepare_suite

RECOVERY_SITES: Tuple[str, ...] = ("chameleon", "faster", "expanse")
RECOVERY_SUITE = "fig4"
# generous TTL: leases are on to prove the machinery coexists with
# recovery, but no lease may expire mid-run and perturb byte-identity
LEASE_TTL = 100000.0
CRASH_POINT_NAMES: Tuple[str, ...] = (
    "mid-dispatch", "mid-execute", "between-waves", "after-last"
)


def _execute(
    crash_at: Optional[int] = None,
    resume_journal=None,
    telemetry: bool = True,
    seed: int = 0,
    journaled: bool = True,
    suite=RECOVERY_SUITE,
):
    """One journaled suite run; returns (world, run, journal, crashed).

    The suite's per-site jobs are augmented with a dependent
    ``summarize`` job that needs every test job, so with concurrent jobs
    it forms a second wave — which is what makes the ``between-waves``
    crash point meaningful. ``crash_at`` arms a :class:`CoordinatorCrash`
    at that journal record; ``resume_journal`` boots the world in
    recovery mode from a crashed run's journal. Setup (users, sites,
    endpoints) is identical in every mode, so journal offsets line up
    across baseline, crash, and resume.
    """
    prepared = prepare_suite(
        suite,
        telemetry=telemetry,
        concurrent_jobs=True,
        gated=False,
        name_override=(
            "ParslDock crash-safe CI" if suite == RECOVERY_SUITE else ""
        ),
    )
    world = prepared.world
    prepared.builder.add_job(
        "summarize",
        steps=[{"name": "Summarize", "run": "echo all sites done"}],
        needs=list(prepared.mat.jobs),
    )

    journal = None
    if journaled:
        journal = world.attach_journal()
        world.faas.enable_leases(ttl=LEASE_TTL)
    if resume_journal is not None:
        world.resume_from(resume_journal)
    if crash_at is not None:
        plan = FaultPlan(seed=seed, profile="coordinator-crash").add(
            CoordinatorCrash(at_event_seq=crash_at)
        )
        world.install_faults(plan)
        world.arm_faults()

    suite_run = execute_suite(prepared, crash_ok=True)
    return world, suite_run.run, journal, suite_run.crashed


def crash_points_of(journal, job_count: int = len(RECOVERY_SITES)) -> Dict[str, int]:
    """Map each named crash point to its 1-based journal record offset.

    ``job_count`` is the number of first-wave test jobs (one per suite
    instance job for the default Fig. 4 recovery suite).
    """
    dispatched: List[int] = []
    completed: List[int] = []
    jobs_finished: List[int] = []
    for i, record in enumerate(journal.records, start=1):
        if record.kind == "task.dispatched":
            dispatched.append(i)
        elif record.kind == "task.completed":
            completed.append(i)
        elif record.kind == "job.finished":
            jobs_finished.append(i)
    if not dispatched or not completed or len(jobs_finished) < job_count:
        raise ValueError(
            "baseline journal is missing lifecycle records; "
            f"have {len(journal)} records"
        )
    return {
        "mid-dispatch": dispatched[0],
        "mid-execute": completed[0],
        "between-waves": jobs_finished[job_count - 1],
        "after-last": completed[-1],
    }


def _render_outputs(world, run) -> str:
    """Deterministic text rendering of everything a run produced.

    This is the byte-identity surface: run status, per-job status, the
    per-site pytest artifacts (raw + parsed), the full run log, and every
    provenance record with ``task_replayed`` normalized out (it is the
    one field that *should* differ between a live and a resumed run).
    """
    lines = [f"run: {run.run_id} status={run.status} sha={run.sha}"]
    for job_run in run.jobs.values():
        lines.append(f"job: {job_run.job_id} status={job_run.status}")
        lines.extend(
            f"  step status={outcome.status} "
            f"outputs={json.dumps(outcome.outputs, sort_keys=True)}"
            for outcome in job_run.step_outcomes
        )
    for site_name in RECOVERY_SITES:
        artifact = world.hub.artifacts.download(
            run.run_id, f"correct-{site_name}-stdout"
        )
        parsed = parse_pytest_stdout(artifact.content)
        lines.append(f"artifact: {artifact.name}")
        lines.append(artifact.content)
        lines.extend(
            f"  {test_name}: {outcome} {duration:.6f}"
            for test_name, (outcome, duration) in sorted(parsed.items())
        )
    lines.append("log:")
    lines.extend(run.log)
    lines.append("provenance:")
    for record in world.provenance.all():
        data = asdict(record)
        data["task_replayed"] = False
        lines.append(json.dumps(data, sort_keys=True))
    return "\n".join(lines)


@dataclass
class Fig4RecoveryResult:
    """One crash-then-resume cycle measured against the baseline."""

    crash_label: str
    crash_record: int
    journal_records: int  # records in the crashed journal
    baseline_output: str
    resumed_output: str
    run_status: str
    replayed_tasks: int
    replayed_steps: int
    double_executed: List[str] = field(default_factory=list)
    resumed_world: object = None

    @property
    def identical(self) -> bool:
        return self.baseline_output == self.resumed_output

    @property
    def ok(self) -> bool:
        return (
            self.identical
            and not self.double_executed
            and self.run_status == "success"
        )


def run_fig4_recovery(
    crash_at="mid-execute", seed: int = 0, telemetry: bool = True
) -> Fig4RecoveryResult:
    """Crash Fig. 4 at one point, resume it, compare against the baseline.

    ``crash_at`` is a named point (see :data:`CRASH_POINT_NAMES`) or a
    raw 1-based journal record offset.
    """
    world_base, run_base, baseline_journal, _ = _execute(
        telemetry=telemetry, seed=seed
    )
    baseline_output = _render_outputs(world_base, run_base)
    return _recover_one(
        crash_at, baseline_journal, baseline_output,
        seed=seed, telemetry=telemetry,
    )


def _recover_one(
    crash_at,
    baseline_journal,
    baseline_output: str,
    seed: int,
    telemetry: bool,
) -> Fig4RecoveryResult:
    """Crash + resume for one point, given the baseline journal."""
    points = crash_points_of(baseline_journal)
    if isinstance(crash_at, str) and not crash_at.isdigit():
        if crash_at not in points:
            raise ValueError(
                f"unknown crash point {crash_at!r}; "
                f"choices: {list(points)} or a record number"
            )
        label, crash_record = crash_at, points[crash_at]
    else:
        crash_record = int(crash_at)
        label = f"record-{crash_record}"

    _, _, crash_journal, crashed = _execute(
        crash_at=crash_record, telemetry=telemetry, seed=seed
    )
    if not crashed:
        raise RuntimeError(
            f"crash at record {crash_record} never fired "
            f"(journal has {len(crash_journal)} records)"
        )

    resumed_world, resumed_run, _, _ = _execute(
        resume_journal=crash_journal, telemetry=telemetry, seed=seed
    )
    resumed_output = _render_outputs(resumed_world, resumed_run)

    # the idempotency-key audit: no journaled-complete task re-executed
    completed = set(resumed_world.faas.replay_index.completed_success())
    double = sorted(completed & resumed_world.faas.executed_keys)

    return Fig4RecoveryResult(
        crash_label=label,
        crash_record=crash_record,
        journal_records=len(crash_journal),
        baseline_output=baseline_output,
        resumed_output=resumed_output,
        run_status=resumed_run.status if resumed_run else "missing",
        replayed_tasks=len(resumed_world.faas.replayed_keys),
        replayed_steps=resumed_world.engine.replayed_steps,
        double_executed=double,
        resumed_world=resumed_world,
    )


def run_fig4_recovery_sweep(
    seed: int = 0, telemetry: bool = True
) -> List[Fig4RecoveryResult]:
    """Crash + resume at every named point, sharing one baseline run."""
    world_base, run_base, baseline_journal, _ = _execute(
        telemetry=telemetry, seed=seed
    )
    baseline_output = _render_outputs(world_base, run_base)
    return [
        _recover_one(
            name, baseline_journal, baseline_output,
            seed=seed, telemetry=telemetry,
        )
        for name in CRASH_POINT_NAMES
    ]


def format_recovery_report(results: List[Fig4RecoveryResult]) -> str:
    """Deterministic plain-text report over one or more crash points."""
    lines = [
        "Fig. 4 crash/recovery — write-ahead journal + resume",
        f"crash points tested: {len(results)}",
        "",
    ]
    for r in results:
        verdict = "IDENTICAL" if r.identical else "DIVERGED"
        audit = (
            "clean" if not r.double_executed
            else f"{len(r.double_executed)} double-executed"
        )
        lines.append(
            f"  {r.crash_label:<14} crash@{r.crash_record:<4} "
            f"journal={r.journal_records:<4} status={r.run_status:<8} "
            f"replayed tasks={r.replayed_tasks} steps={r.replayed_steps}  "
            f"{verdict}  audit={audit}"
        )
    all_ok = all(r.ok for r in results)
    lines += [
        "",
        f"resumed outputs byte-identical to baseline: "
        f"{'yes' if all_ok else 'NO'}",
    ]
    return "\n".join(lines)
