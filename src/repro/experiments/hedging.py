"""Fail-slow defense: tail latency with and without hedged execution.

The gray-failure scenario the fail-slow literature (and the hedging
plane) is built around: one pooled site serves a steady single-tenant
workload, and the ``fail-slow`` chaos profile degrades one pool member —
it stays online, keeps succeeding, and quietly runs 3–6x slow for most
of the run. Nothing in the resilience plane fires (no errors, no breaker
trips, no retries), so an undefended service pays the full price in tail
latency: every task routed to the gray member inflates p95/p99, and the
member's queue compounds it.

``run_fig4_failslow`` runs three worlds against the same seed:

* **defense-off** — least-loaded routing, health routing enabled, no
  hedging (health has no gray signal, so the slow member keeps winning
  ties);
* **defense-on** — the same world plus the hedging plane: the straggler
  detector feeds gray scores into health-aware routing, and dispatches
  that outlive the quantile-derived deadline get a speculative duplicate
  on another member, first result wins;
* **fault-free control** — the defense-on world without the fault plan,
  proving the plane is quiescent on a healthy pool (zero hedges).

All arrivals and durations come from ``random.Random(seed)``, and every
hedge decision depends only on virtual-time observations, so two
same-seed runs — and their formatted reports — are byte-identical.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional

from repro.experiments import common
from repro.faas.client import ComputeClient
from repro.faas.hedging import HedgeConfig
from repro.faas.task import TaskState
from repro.faults.profiles import build_profile
from repro.telemetry.metrics import percentile
from repro.world import World

FAILSLOW_SITE = "chameleon"
FAULT_FREE_PROFILES = ("none", "off")


@dataclass(frozen=True)
class HedgingParams:
    """One comparison's knobs; everything derives from these + the seed."""

    seed: int = 7
    profile: str = "fail-slow"
    endpoints: int = 3
    horizon: float = 1600.0
    mean_interarrival: float = 6.0
    min_seconds: float = 4.0
    max_seconds: float = 20.0


@dataclass(frozen=True)
class HedgeArrival:
    at: float
    duration: float


def generate_failslow_workload(params: HedgingParams) -> List[HedgeArrival]:
    """Seeded Poisson arrivals with bounded-uniform task durations.

    Durations are bounded (no heavy tail) on purpose: with a healthy
    ceiling of ``max_seconds`` the pooled p95 sits just under it, the
    hedge deadline lands above anything a healthy member can take, and
    every hedge the defended run launches is attributable to the
    fail-slow windows — the fault-free control proving exactly that.
    """
    rng = random.Random(params.seed)
    arrivals: List[HedgeArrival] = []
    t = rng.expovariate(1.0 / params.mean_interarrival)
    while t < params.horizon:
        arrivals.append(
            HedgeArrival(
                round(t, 6),
                round(rng.uniform(params.min_seconds, params.max_seconds), 6),
            )
        )
        t += rng.expovariate(1.0 / params.mean_interarrival)
    return arrivals


def hedge_config(params: HedgingParams) -> HedgeConfig:
    """Hedge tuning sized to the workload's duration envelope.

    The deadline floor sits above ``max_seconds`` so a healthy dispatch
    can never be hedged even before the sample window warms up; after
    warm-up the pooled p95 (≈ the duration ceiling) times the factor
    keeps the deadline in the same place, so only fail-slow-stretched
    dispatches cross it.
    """
    return HedgeConfig(
        quantile=95.0,
        factor=1.5,
        min_samples=20,
        min_deadline=params.max_seconds * 1.25,
        window=600.0,
        detector_window=600.0,
        flag_ratio=2.0,
        detector_min_samples=5,
    )


@dataclass
class FailSlowRunResult:
    params: HedgingParams
    hedged: bool
    world: Any
    makespan: float
    submitted: int
    completed: int
    p50: float
    p95: float
    p99: float
    hedges_launched: int = 0
    hedges_won: int = 0
    hedges_cancelled: int = 0
    hedges_lost: int = 0
    wasted_seconds: float = 0.0
    useful_seconds: float = 0.0
    wasted_ratio: float = 0.0
    stragglers_flagged: int = 0
    # exactly-once audit: futures still pending at idle, and tasks that
    # emitted more than one ``task.completed`` (both must be zero)
    unresolved_futures: int = 0
    double_resolutions: int = 0


def _failslow_work(fctx, seconds: float) -> float:
    fctx.handle.compute(seconds)
    return seconds


def run_failslow(
    params: HedgingParams,
    hedged: bool = True,
    fault_free: bool = False,
) -> FailSlowRunResult:
    """One world, one seed, the full fail-slow workload."""
    plan = (
        None
        if fault_free or params.profile in FAULT_FREE_PROFILES
        else build_profile(params.profile, params.seed)
    )
    world = World(
        telemetry=True,
        streaming_metrics=True,
        faults=plan,
        # fail-slow never takes an endpoint offline, but keep the same
        # dispatch-time liveness semantics as the other pooled runs
        offline_policy="queue",
        placement_policy="least-loaded",
        hedge=hedge_config(params) if hedged else None,
    )
    # both runs route health-aware; only the defended run has a gray
    # signal to feed it, so the routing delta is the detector's alone
    world.enable_observability(health_routing=True)
    user = world.register_user("hedger", {FAILSLOW_SITE: "x-hedger"})
    client = ComputeClient(world.faas, user.client_id, user.client_secret)
    common.deploy_site_mep_pool(world, FAILSLOW_SITE, size=params.endpoints)
    function_id = client.register_function(_failslow_work, "failslow-work")

    arrivals = generate_failslow_workload(params)
    futures = []

    def _submit(arrival: HedgeArrival) -> None:
        futures.append(
            client.submit(FAILSLOW_SITE, function_id, arrival.duration)
        )

    started_at = world.clock.now
    for arrival in arrivals:
        world.clock.call_after(arrival.at, lambda a=arrival: _submit(a))
    if plan is not None:
        world.arm_faults()
    world.clock.run_until_idle()
    world.slo.finish(world.clock.now)

    tasks = world.faas.tasks_for(user.identity.urn)
    latencies: List[float] = []
    completed = 0
    last_done = started_at
    for task in tasks:
        if task.state is TaskState.SUCCESS and task.completed_at is not None:
            completed += 1
            latencies.append(task.completed_at - task.submitted_at)
            last_done = max(last_done, task.completed_at)
    # makespan from the last completion, not clock.now: stale no-op
    # hedge-deadline events keep the queue warm past the real finish
    makespan = max(last_done - started_at, 1e-9)

    completions: Dict[str, int] = {}
    for event in world.events.query("faas", "task.completed"):
        task_id = event.data.get("task_id", "")
        completions[task_id] = completions.get(task_id, 0) + 1

    controller = world.faas.hedging
    stats = controller.stats if controller is not None else None
    return FailSlowRunResult(
        params=params,
        hedged=hedged,
        world=world,
        makespan=makespan,
        submitted=len(tasks),
        completed=completed,
        p50=percentile(latencies, 50.0),
        p95=percentile(latencies, 95.0),
        p99=percentile(latencies, 99.0),
        hedges_launched=stats.hedges_launched if stats else 0,
        hedges_won=stats.hedges_won if stats else 0,
        hedges_cancelled=stats.hedges_cancelled if stats else 0,
        hedges_lost=stats.hedges_lost if stats else 0,
        wasted_seconds=stats.wasted_seconds if stats else 0.0,
        useful_seconds=stats.useful_seconds if stats else 0.0,
        wasted_ratio=stats.wasted_ratio() if stats else 0.0,
        stragglers_flagged=stats.stragglers_flagged if stats else 0,
        unresolved_futures=sum(1 for f in futures if not f.done()),
        double_resolutions=sum(1 for n in completions.values() if n > 1),
    )


@dataclass
class FailSlowComparison:
    """Three same-seed runs: undefended, defended, and the quiet control."""

    params: HedgingParams
    unhedged: FailSlowRunResult
    hedged: FailSlowRunResult
    fault_free: FailSlowRunResult

    @property
    def p99_cut(self) -> float:
        """Fractional p99 reduction of the defended run (0.30 = 30%)."""
        if self.unhedged.p99 <= 0:
            return 0.0
        return (self.unhedged.p99 - self.hedged.p99) / self.unhedged.p99

    @property
    def p95_cut(self) -> float:
        if self.unhedged.p95 <= 0:
            return 0.0
        return (self.unhedged.p95 - self.hedged.p95) / self.unhedged.p95


def run_fig4_failslow(params: HedgingParams) -> FailSlowComparison:
    return FailSlowComparison(
        params=params,
        unhedged=run_failslow(params, hedged=False),
        hedged=run_failslow(params, hedged=True),
        fault_free=run_failslow(params, hedged=True, fault_free=True),
    )


def run_suite_failslow(
    spec,
    seed: int = 7,
    profile: str = "",
    policy: str = "least-loaded",
    pool_size: int = 3,
    params: Optional[HedgingParams] = None,
):
    """Run a declarative suite through FaaS with hedged execution armed.

    Thin entry point for ``repro suite run <file> --hedge``: every suite
    instance is submitted as an async CORRECT task under the same hedge
    tuning the synthetic experiment uses, sized by ``params`` (default
    :class:`HedgingParams` at the given seed). Returns the
    :class:`~repro.suites.sweep.SweepResult`.
    """
    from repro.suites import run_sweep

    params = params or HedgingParams(seed=seed, endpoints=pool_size)
    return run_sweep(
        spec,
        seed=seed,
        profile=profile,
        policy=policy,
        pool_size=pool_size,
        hedge=hedge_config(params),
    )


def format_hedging_report(comparison: FailSlowComparison) -> str:
    """The fail-slow defense figure, deterministic to the byte."""
    p = comparison.params
    off, on = comparison.unhedged, comparison.hedged
    quiet = comparison.fault_free
    lines = [
        f"Fail-slow Fig. 4 — seed {p.seed}, profile {p.profile!r}",
        f"pool: {p.endpoints}x {FAILSLOW_SITE!r}; mean interarrival "
        f"{p.mean_interarrival:g}s; durations "
        f"{p.min_seconds:g}-{p.max_seconds:g}s over {p.horizon:g}s",
        "",
        f"{'':28}{'defense-off':>16}{'defense-on':>16}",
    ]
    rows = [
        ("completed / submitted", f"{off.completed}/{off.submitted}",
         f"{on.completed}/{on.submitted}"),
        ("makespan (s)", f"{off.makespan:.1f}", f"{on.makespan:.1f}"),
        ("p50 latency (s)", f"{off.p50:.1f}", f"{on.p50:.1f}"),
        ("p95 latency (s)", f"{off.p95:.1f}", f"{on.p95:.1f}"),
        ("p99 latency (s)", f"{off.p99:.1f}", f"{on.p99:.1f}"),
        ("stragglers flagged", str(off.stragglers_flagged),
         str(on.stragglers_flagged)),
        ("hedges launched", str(off.hedges_launched),
         str(on.hedges_launched)),
        ("hedges won / cancelled", f"{off.hedges_won}/{off.hedges_cancelled}",
         f"{on.hedges_won}/{on.hedges_cancelled}"),
        ("wasted work (s)", f"{off.wasted_seconds:.1f}",
         f"{on.wasted_seconds:.1f}"),
        ("wasted work share", f"{off.wasted_ratio * 100:.1f}%",
         f"{on.wasted_ratio * 100:.1f}%"),
    ]
    for label, left, right in rows:
        lines.append(f"{label:28}{left:>16}{right:>16}")
    lines.append("")
    lines.append(
        f"p95 cut: {comparison.p95_cut * 100:.1f}%   "
        f"p99 cut: {comparison.p99_cut * 100:.1f}% (gate: >=30%)"
    )
    lines.append(
        f"wasted work share: {on.wasted_ratio * 100:.1f}% (gate: <=10%)"
    )
    lines.append(
        "double resolutions: "
        f"{off.double_resolutions + on.double_resolutions + quiet.double_resolutions}"
    )
    lines.append(
        "unresolved futures: "
        f"{off.unresolved_futures + on.unresolved_futures + quiet.unresolved_futures}"
    )
    lines.append(f"hedges on fault-free run: {quiet.hedges_launched}")
    return "\n".join(lines)
