"""Experiment harnesses: one module per paper table/figure.

Benchmarks under ``benchmarks/`` and the runnable examples both call
these, so the numbers printed by the benchmark suite and the numbers a
user sees from ``examples/`` come from the same code.
"""

from repro.experiments.fig4_parsldock import (
    run_fig4,
    run_fig4_overlap,
    Fig4Result,
    Fig4OverlapResult,
)
from repro.experiments.fig5_psij import run_fig5, Fig5Result
from repro.experiments.chaos import (
    ChaosFig4Result,
    format_chaos_report,
    run_fig4_chaos,
    run_fig5_chaos,
)
from repro.experiments.exp63_kamping import run_exp63, Exp63Result
from repro.experiments.observability import (
    ObsFig4Result,
    format_obs_report,
    parse_slo_overrides,
    run_fig4_obs,
)
from repro.experiments.recovery import (
    CRASH_POINT_NAMES,
    Fig4RecoveryResult,
    format_recovery_report,
    run_fig4_recovery,
    run_fig4_recovery_sweep,
)
from repro.experiments.routing import (
    PooledRun,
    RoutingComparison,
    format_routing_report,
    run_fig4_pooled,
    run_pooled,
)
from repro.experiments.overload import (
    OverloadComparison,
    OverloadParams,
    OverloadRunResult,
    format_overload_report,
    generate_workload,
    overload_config,
    run_overload,
    run_overload_comparison,
)
from repro.experiments.hedging import (
    FailSlowComparison,
    FailSlowRunResult,
    HedgingParams,
    format_hedging_report,
    generate_failslow_workload,
    hedge_config,
    run_failslow,
    run_fig4_failslow,
)
from repro.experiments.fig1_badges import run_fig1
from repro.experiments.survey_tables import (
    table1_rows,
    table2_rows,
    table3_rows,
    table4_rows_and_probes,
)

__all__ = [
    "run_fig4",
    "run_fig4_overlap",
    "Fig4Result",
    "Fig4OverlapResult",
    "run_fig5",
    "Fig5Result",
    "ChaosFig4Result",
    "format_chaos_report",
    "run_fig4_chaos",
    "run_fig5_chaos",
    "run_exp63",
    "Exp63Result",
    "ObsFig4Result",
    "format_obs_report",
    "parse_slo_overrides",
    "run_fig4_obs",
    "CRASH_POINT_NAMES",
    "Fig4RecoveryResult",
    "format_recovery_report",
    "run_fig4_recovery",
    "run_fig4_recovery_sweep",
    "PooledRun",
    "RoutingComparison",
    "format_routing_report",
    "run_fig4_pooled",
    "run_pooled",
    "OverloadComparison",
    "OverloadParams",
    "OverloadRunResult",
    "format_overload_report",
    "generate_workload",
    "overload_config",
    "run_overload",
    "run_overload_comparison",
    "FailSlowComparison",
    "FailSlowRunResult",
    "HedgingParams",
    "format_hedging_report",
    "generate_failslow_workload",
    "hedge_config",
    "run_failslow",
    "run_fig4_failslow",
    "run_fig1",
    "table1_rows",
    "table2_rows",
    "table3_rows",
    "table4_rows_and_probes",
]
