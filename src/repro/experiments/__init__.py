"""Experiment harnesses: one module per paper table/figure.

Benchmarks under ``benchmarks/`` and the runnable examples both call
these, so the numbers printed by the benchmark suite and the numbers a
user sees from ``examples/`` come from the same code.

Re-exports are grouped per module, in the same order as the imports
below; ``tests/test_experiments.py`` asserts ``__all__`` stays importable
and duplicate-free.
"""

from repro.experiments.fig1_badges import run_fig1
from repro.experiments.fig4_parsldock import (
    Fig4OverlapResult,
    Fig4Result,
    fig4_result_from,
    run_fig4,
    run_fig4_overlap,
)
from repro.experiments.fig5_psij import (
    Fig5Result,
    fig5_result_from,
    run_fig5,
)
from repro.experiments.exp63_kamping import (
    Exp63Result,
    exp63_result_from,
    run_exp63,
)
from repro.experiments.chaos import (
    ChaosFig4Result,
    format_chaos_report,
    run_fig4_chaos,
    run_fig5_chaos,
    run_suite_chaos,
)
from repro.experiments.observability import (
    ObsFig4Result,
    format_obs_report,
    parse_slo_overrides,
    run_fig4_obs,
)
from repro.experiments.recovery import (
    CRASH_POINT_NAMES,
    Fig4RecoveryResult,
    format_recovery_report,
    run_fig4_recovery,
    run_fig4_recovery_sweep,
)
from repro.experiments.routing import (
    PooledRun,
    RoutingComparison,
    format_routing_report,
    run_fig4_pooled,
    run_pooled,
)
from repro.experiments.overload import (
    OverloadComparison,
    OverloadParams,
    OverloadRunResult,
    format_overload_report,
    generate_workload,
    overload_config,
    run_overload,
    run_overload_comparison,
    run_suite_overload,
)
from repro.experiments.hedging import (
    FailSlowComparison,
    FailSlowRunResult,
    HedgingParams,
    format_hedging_report,
    generate_failslow_workload,
    hedge_config,
    run_failslow,
    run_fig4_failslow,
    run_suite_failslow,
)
from repro.experiments.survey_tables import (
    table1_rows,
    table2_rows,
    table3_rows,
    table4_rows_and_probes,
)

__all__ = [
    # fig1_badges
    "run_fig1",
    # fig4_parsldock
    "Fig4OverlapResult",
    "Fig4Result",
    "fig4_result_from",
    "run_fig4",
    "run_fig4_overlap",
    # fig5_psij
    "Fig5Result",
    "fig5_result_from",
    "run_fig5",
    # exp63_kamping
    "Exp63Result",
    "exp63_result_from",
    "run_exp63",
    # chaos
    "ChaosFig4Result",
    "format_chaos_report",
    "run_fig4_chaos",
    "run_fig5_chaos",
    "run_suite_chaos",
    # observability
    "ObsFig4Result",
    "format_obs_report",
    "parse_slo_overrides",
    "run_fig4_obs",
    # recovery
    "CRASH_POINT_NAMES",
    "Fig4RecoveryResult",
    "format_recovery_report",
    "run_fig4_recovery",
    "run_fig4_recovery_sweep",
    # routing
    "PooledRun",
    "RoutingComparison",
    "format_routing_report",
    "run_fig4_pooled",
    "run_pooled",
    # overload
    "OverloadComparison",
    "OverloadParams",
    "OverloadRunResult",
    "format_overload_report",
    "generate_workload",
    "overload_config",
    "run_overload",
    "run_overload_comparison",
    "run_suite_overload",
    # hedging
    "FailSlowComparison",
    "FailSlowRunResult",
    "HedgingParams",
    "format_hedging_report",
    "generate_failslow_workload",
    "hedge_config",
    "run_failslow",
    "run_fig4_failslow",
    "run_suite_failslow",
    # survey_tables
    "table1_rows",
    "table2_rows",
    "table3_rows",
    "table4_rows_and_probes",
]
