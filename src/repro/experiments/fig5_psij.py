"""Fig. 5 / §6.2: expressing PSI/J CI jobs with CORRECT on Purdue Anvil.

PSI/J's tests must run on the login node (LocalProvider), the MEP is
configured login-only, and the workflow extracts stdout/stderr as
artifacts *regardless of pass or fail*. With PSI/J v0.9.9 the run fails —
the batch-attribute renderer bug — and the experiment's point is that the
failure text reaches the Action UI (the run log) and the full outputs are
retrievable from artifacts (Fig. 5 top and bottom panes).

The experiment is declared in ``suites/fig5.yaml``; this module keeps
the historical entry point and result shape, plus the fault plan that
reproduces the defect by injection against the *fixed* suite.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Tuple

from repro.faults.plan import FaultPlan, TestFailure
from repro.suites import run_suite

REPO_SLUG = "exaworks/psij-python"
WORKFLOW_PATH = ".github/workflows/correct.yml"
SITE = "anvil"
SUITE = "fig5"


@dataclass
class Fig5Result:
    run: object
    stdout_artifact: str
    stderr_artifact: str
    tests: Dict[str, Tuple[str, float]]
    # the world that produced the run, for telemetry export (trace CLI)
    world: object = None

    @property
    def run_failed(self) -> bool:
        return self.run.status == "failure"

    @property
    def failing_tests(self) -> Dict[str, Tuple[str, float]]:
        return {
            name: result
            for name, result in self.tests.items()
            if result[0] in ("FAILED", "ERROR")
        }

    def failure_reported_in_ui(self) -> bool:
        """Did the failure text reach the runner-side log (Fig. 5 top)?"""
        return any("CORRECT: remote command exited" in line for line in self.run.log)


def inject_failure_plan(seed: int = 0) -> FaultPlan:
    """The fault plan reproducing Fig. 5's failing test by injection.

    Arms the exact ``AttributeError`` the v0.9.9 renderer defect raises
    against the *patched* suite — proving the fault layer converges on
    the hard-coded failure path byte for byte.
    """
    plan = FaultPlan(seed=seed, profile="fig5-inject")
    plan.add(
        TestFailure(
            at=0.0,
            suite="tests/test_executors.py",
            test_name="test_batch_attributes",
            exception_type="AttributeError",
            message="'JobSpec' object has no attribute 'attributes'",
        )
    )
    return plan


def run_fig5(
    telemetry: bool = True, inject_failure: bool = False, suite=SUITE
) -> Fig5Result:
    """Execute the §6.2 experiment; returns the run + recovered outputs.

    ``inject_failure=True`` ships the *fixed* PSI/J suite and reproduces
    the paper's failing-test artifact through the fault layer instead of
    the library defect: the run must fail identically either way.
    """
    faults = inject_failure_plan() if inject_failure else None
    suite_run = run_suite(
        suite,
        telemetry=telemetry,
        faults=faults,
        arm_faults="at-start" if inject_failure else "none",
        files_kwargs={"fixed": inject_failure},
    )
    return fig5_result_from(suite_run)


def fig5_result_from(suite_run) -> Fig5Result:
    """Adapt a completed suite run into the historical result shape."""
    result = suite_run.results[0]
    return Fig5Result(
        run=suite_run.run,
        stdout_artifact=result.stdout,
        stderr_artifact=result.stderr,
        tests=result.parsed or {},
        world=suite_run.world,
    )
