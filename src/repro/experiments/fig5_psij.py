"""Fig. 5 / §6.2: expressing PSI/J CI jobs with CORRECT on Purdue Anvil.

PSI/J's tests must run on the login node (LocalProvider), the MEP is
configured login-only, and the workflow extracts stdout/stderr as
artifacts *regardless of pass or fail*. With PSI/J v0.9.9 the run fails —
the batch-attribute renderer bug — and the experiment's point is that the
failure text reaches the Action UI (the run log) and the full outputs are
retrievable from artifacts (Fig. 5 top and bottom panes).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Tuple

from repro.apps.psij import suite as psij_suite
from repro.core.reporting import parse_pytest_stdout
from repro.core.workflow_builder import WorkflowBuilder
from repro.experiments import common
from repro.faults.plan import FaultPlan, TestFailure
from repro.world import World

REPO_SLUG = "exaworks/psij-python"
WORKFLOW_PATH = ".github/workflows/correct.yml"
SITE = "anvil"


@dataclass
class Fig5Result:
    run: object
    stdout_artifact: str
    stderr_artifact: str
    tests: Dict[str, Tuple[str, float]]
    # the world that produced the run, for telemetry export (trace CLI)
    world: object = None

    @property
    def run_failed(self) -> bool:
        return self.run.status == "failure"

    @property
    def failing_tests(self) -> Dict[str, Tuple[str, float]]:
        return {
            name: result
            for name, result in self.tests.items()
            if result[0] in ("FAILED", "ERROR")
        }

    def failure_reported_in_ui(self) -> bool:
        """Did the failure text reach the runner-side log (Fig. 5 top)?"""
        return any("CORRECT: remote command exited" in line for line in self.run.log)


def inject_failure_plan(seed: int = 0) -> FaultPlan:
    """The fault plan reproducing Fig. 5's failing test by injection.

    Arms the exact ``AttributeError`` the v0.9.9 renderer defect raises
    against the *patched* suite — proving the fault layer converges on
    the hard-coded failure path byte for byte.
    """
    plan = FaultPlan(seed=seed, profile="fig5-inject")
    plan.add(
        TestFailure(
            at=0.0,
            suite="tests/test_executors.py",
            test_name="test_batch_attributes",
            exception_type="AttributeError",
            message="'JobSpec' object has no attribute 'attributes'",
        )
    )
    return plan


def run_fig5(telemetry: bool = True, inject_failure: bool = False) -> Fig5Result:
    """Execute the §6.2 experiment; returns the run + recovered outputs.

    ``inject_failure=True`` ships the *fixed* PSI/J suite and reproduces
    the paper's failing-test artifact through the fault layer instead of
    the library defect: the run must fail identically either way.
    """
    faults = inject_failure_plan() if inject_failure else None
    world = World(telemetry=telemetry, faults=faults)
    if inject_failure:
        world.arm_faults()
    user = world.register_user("vhayot", {SITE: "x-vhayot"})
    common.provision_user_site(
        world, user, SITE, "x-vhayot", conda_env="psij", stack=common.PSIJ_STACK
    )
    # the Anvil MEP runs everything on the login node (LocalProvider)
    mep = common.deploy_site_mep(world, SITE, login_only=True)

    step = WorkflowBuilder.correct_step(
        name="Run PSI/J test suite",
        step_id="psij-tests",
        shell_cmd="pip install -r requirements.txt && pytest",
        conda_env="psij",
        artifact_prefix="psij-ci",
    )
    builder = WorkflowBuilder("PSI/J CI via CORRECT").on_push()
    builder.add_job(
        "psij-anvil",
        steps=[step],
        environment="hpc-anvil",
        env={"ENDPOINT_UUID": mep.endpoint_id},
    )
    common.create_repo_with_workflow(
        world,
        REPO_SLUG,
        owner=user,
        files=psij_suite.repo_files(fixed=inject_failure),
        workflow_path=WORKFLOW_PATH,
        workflow_text=builder.render(),
        environments={
            "hpc-anvil": {
                "GLOBUS_ID": user.client_id,
                "GLOBUS_SECRET": user.client_secret,
            }
        },
    )
    run = world.engine.runs[-1]
    common.approve_all(world, run, user.login)

    stdout = world.hub.artifacts.download(run.run_id, "psij-ci-stdout").content
    stderr = world.hub.artifacts.download(run.run_id, "psij-ci-stderr").content
    return Fig5Result(
        run=run,
        stdout_artifact=stdout,
        stderr_artifact=stderr,
        tests=parse_pytest_stdout(stdout),
        world=world,
    )
