"""Fig. 1: SC reproducibility badges over time."""

from __future__ import annotations

from typing import Dict

from repro.badges.history import BadgeHistoryModel


def run_fig1(seed: int = 2025) -> Dict[int, Dict[str, int]]:
    """Run the cohort review simulation; returns {year: level counts}.

    Counts are "holds at least this badge" per year: ``available``,
    ``evaluated``, ``reproduced``.
    """
    model = BadgeHistoryModel(seed=seed)
    return BadgeHistoryModel.cumulative_counts(model.run())
