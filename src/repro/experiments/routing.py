"""Pooled Fig. 4: placement policies over multi-endpoint sites.

The paper's Fig. 4 pins one endpoint per site, so a site's whole test
suite serializes through one MEP. With the placement plane the same
suite can be *sharded*: each site deploys a pool of N endpoints, the
workflow splits pytest into shards via ``-k`` expressions, and every
shard targets the **site name** — the router's policy decides which pool
member runs it.

``run_fig4_pooled`` runs the sharded workflow twice on identical worlds:
once under ``pinned`` (every shard lands on pool member 0, today's
behavior) and once under the requested policy (``least-loaded`` by
default). Because the shards are balanced by *effective* cost (work
divided by each case's thread count), any policy that actually spreads
them across the pool cuts the makespan — the measurable win the routing
CLI and ``benchmarks/test_routing.py`` assert.

The pooled run defaults to the cloud site only. On the batch sites a
second pool member provisions its own SLURM pilot, and under the
catalog's background load one node frees every 150–240 s — so the extra
cold-pilot queue wait exceeds the ~80 s of shard work it would absorb,
and pooling *loses* there (measured: 614 s vs 419 s across all three
sites). Fan-out across pool members pays off exactly where execution
starts are cheap: cloud instances and login-node endpoints.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Tuple

from repro.faas.placement import RouteDecision
from repro.suites import run_suite

# Sites the pooled comparison runs on (see the module docstring for why
# the batch sites sit this one out).
ROUTE_SITES: Tuple[str, ...] = ("chameleon",)
ROUTE_SUITE = "fig4-sharded"

# Near-balanced split of the ParslDock suite by *effective* cost — work
# divided by each case's thread count, the time a multi-core node
# actually spends: shard A ≈ 75.0 s, shard B ≈ 78.2 s at reference
# speed. Keywords use the simulated pytest's ``-k "a or b"``
# any-substring matching; together the shards cover all ten cases with
# no overlap.
SHARDS: Tuple[Tuple[str, str], ...] = (
    ("shard-a", "scores or exhaustive or conformer or weight"),
    ("shard-b", "single or pipeline or surrogate or prepare or parse"),
)


@dataclass
class PooledRun:
    """One sharded, pooled Fig. 4 run under a single placement policy."""

    policy: str
    pool_size: int
    makespan: float
    run: object
    decisions: List[RouteDecision]
    # site -> shard -> endpoint id the shard's tasks actually ran on
    placements: Dict[str, Dict[str, str]] = field(default_factory=dict)
    world: object = None

    def endpoints_used(self) -> int:
        """Distinct endpoints that received at least one shard."""
        return len({
            endpoint_id
            for shards in self.placements.values()
            for endpoint_id in shards.values()
        })


@dataclass
class RoutingComparison:
    """The same pooled workload under ``pinned`` vs. another policy."""

    pinned: PooledRun
    routed: PooledRun

    @property
    def improvement(self) -> float:
        """Fractional makespan cut of the routed run vs. pinned."""
        if not self.pinned.makespan:
            return 0.0
        return 1.0 - self.routed.makespan / self.pinned.makespan

    @property
    def routed_is_faster(self) -> bool:
        return self.routed.makespan < self.pinned.makespan


def run_pooled(
    policy: str,
    pool_size: int = 2,
    sites: Tuple[str, ...] = ROUTE_SITES,
    telemetry: bool = True,
    suite=ROUTE_SUITE,
) -> PooledRun:
    """One sharded suite run on ``pool_size`` endpoints per site.

    The workload comes from a suite file (``suites/fig4-sharded.yaml``
    by default) whose jobs use ``route: pool`` — each job targets its
    *site name* and the router's policy picks a pool member. Placements
    are keyed by each instance's ``shard`` variable (falling back to the
    step id for suites without one).
    """
    suite_run = run_suite(
        suite,
        overrides={"site": list(sites)},
        strict=True,
        telemetry=telemetry,
        concurrent_jobs=True,
        placement_policy=policy,
        pool_size=pool_size,
        gated=False,
    )
    world = suite_run.world
    by_artifact = {
        instance.stdout_artifact: instance
        for instance in suite_run.mat.active
    }
    placements: Dict[str, Dict[str, str]] = {
        site: {} for site in suite_run.mat.sites()
    }
    for record in world.provenance.all():
        instance = by_artifact.get(record.stdout_artifact)
        if instance is not None:
            shard = str(instance.variables.get("shard", instance.step_id))
            placements[instance.target][shard] = record.endpoint_id
    return PooledRun(
        policy=policy,
        pool_size=pool_size,
        makespan=suite_run.makespan,
        run=suite_run.run,
        decisions=list(world.faas.router.decisions),
        placements=placements,
        world=world,
    )


def run_fig4_pooled(
    policy: str = "least-loaded",
    pool_size: int = 2,
    sites: Tuple[str, ...] = ROUTE_SITES,
    telemetry: bool = True,
    suite=ROUTE_SUITE,
) -> RoutingComparison:
    """Sharded Fig. 4 under ``pinned`` vs. ``policy`` on identical pools.

    Both runs build the same world, pools, and workflow; only the FaaS
    placement policy differs. Under ``pinned`` every shard serializes
    through pool member 0 of its site; a load-spreading policy runs the
    shards side by side, cutting the makespan.
    """
    pinned = run_pooled(
        "pinned", pool_size=pool_size, sites=sites,
        telemetry=telemetry, suite=suite,
    )
    routed = run_pooled(
        policy, pool_size=pool_size, sites=sites,
        telemetry=telemetry, suite=suite,
    )
    return RoutingComparison(pinned=pinned, routed=routed)


def format_routing_report(comparison: RoutingComparison) -> str:
    """Plain-text report for the ``route`` CLI subcommand."""
    pinned, routed = comparison.pinned, comparison.routed
    lines = [
        f"Pooled Fig. 4 — placement policy '{routed.policy}' vs 'pinned' "
        f"({routed.pool_size} endpoints/site)",
        "",
        f"  pinned       makespan {pinned.makespan:10.2f}s   "
        f"endpoints used: {pinned.endpoints_used()}",
        f"  {routed.policy:<12} makespan {routed.makespan:10.2f}s   "
        f"endpoints used: {routed.endpoints_used()}",
        "",
        f"makespan cut: {100.0 * comparison.improvement:.1f}%",
        "",
        "shard placement (routed run):",
    ]
    lines.extend(
        f"  {site_name:<12} {shard_name:<8} -> {endpoint_id[:8]}"
        for site_name, shards in sorted(routed.placements.items())
        for shard_name, endpoint_id in sorted(shards.items())
    )
    lines.append("")
    lines.append(
        f"routing decisions recorded: {len(routed.decisions)} "
        f"(policy={routed.policy})"
    )
    lines.extend(
        f"  pool={decision.pool:<12} -> {decision.endpoint_id[:8]}  "
        f"depth_at_route={decision.queue_depth_at_route}"
        for decision in routed.decisions
    )
    return "\n".join(lines)
