"""Ablations of the design choices DESIGN.md calls out.

* :func:`overhead_ablation` — §7.3: pilot-job reuse vs per-task batch
  allocations, quantifying the amortization CORRECT inherits from the
  FaaS substrate.
* :func:`security_ablation` — §5.2: each security mechanism exercised in
  both the blocked and allowed direction.
* :func:`cron_vs_correct` — §6.2: PSI/J's cron CI baseline vs CORRECT on
  result freshness and review gating.
* :func:`retention_ablation` — §7.4: the 90-day artifact window vs
  committing outputs to the repository.
* :func:`cloud_overhead_sweep` — §7.3: task round-trip latency as a
  function of the cloud-service overhead, isolating the fixed FaaS cost
  from site-side execution time.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List

from repro.apps.psij import suite as psij_suite
from repro.apps.psij.cron import BranchPolicy, CronCI
from repro.apps.psij.dashboard import Dashboard
from repro.core.security import correct_function_ids
from repro.errors import (
    ArtifactExpired,
    FunctionNotAllowed,
    IdentityMappingError,
    PermissionDenied,
    TaskFailed,
    TokenExpired,
)
from repro.executor.pilot import PilotExecutor
from repro.executor.providers import SlurmProvider
from repro.experiments import common
from repro.faas.client import ComputeClient
from repro.faas.endpoint import EndpointTemplate
from repro.world import World


# ---------------------------------------------------------------------------
# §7.3 overhead
# ---------------------------------------------------------------------------


@dataclass
class OverheadResult:
    pilot_latencies: List[float]
    per_task_latencies: List[float]

    @property
    def pilot_total(self) -> float:
        return sum(self.pilot_latencies)

    @property
    def per_task_total(self) -> float:
        return sum(self.per_task_latencies)

    @property
    def amortization_factor(self) -> float:
        """How much cheaper the pilot's steady-state tasks are."""
        steady = self.pilot_latencies[1:] or self.pilot_latencies
        steady_mean = sum(steady) / len(steady)
        per_task_mean = sum(self.per_task_latencies) / len(
            self.per_task_latencies
        )
        return per_task_mean / steady_mean if steady_mean > 0 else float("inf")


def overhead_ablation(
    n_tasks: int = 6, task_work: float = 5.0, site_name: str = "faster"
) -> OverheadResult:
    """Run the same task stream on a reused pilot and on per-task blocks."""
    world = World()
    user = world.register_user("ops", {site_name: "x-ops"})
    site = world.site(site_name)
    partition = common.SITE_PARTITIONS[site_name]
    assert partition is not None

    def run_task(executor: PilotExecutor) -> float:
        start = world.clock.now
        executor.submit(lambda handle: handle.compute(task_work))
        return world.clock.now - start

    # (a) one pilot, N tasks
    pilot = PilotExecutor(
        SlurmProvider(site, "x-ops", partition=partition, walltime=7200.0)
    )
    pilot_latencies = [run_task(pilot) for _ in range(n_tasks)]
    pilot.shutdown()

    # (b) a fresh allocation per task
    per_task_latencies: List[float] = []
    for _ in range(n_tasks):
        executor = PilotExecutor(
            SlurmProvider(site, "x-ops", partition=partition, walltime=7200.0)
        )
        per_task_latencies.append(run_task(executor))
        executor.shutdown()
    return OverheadResult(pilot_latencies, per_task_latencies)


@dataclass
class CloudOverheadResult:
    """Round-trip latency per cloud-overhead setting (§7.3)."""

    latencies: Dict[float, float]  # overhead seconds -> round-trip seconds

    @property
    def marginal_cost(self) -> float:
        """Seconds of round-trip added per second of cloud overhead."""
        settings = sorted(self.latencies)
        lo, hi = settings[0], settings[-1]
        if hi == lo:
            return 0.0
        return (self.latencies[hi] - self.latencies[lo]) / (hi - lo)


def cloud_overhead_sweep(
    overheads: tuple = (0.0, 0.4, 0.8, 1.6, 3.2),
    site_name: str = "chameleon",
) -> CloudOverheadResult:
    """Measure task round-trip time under different FaaS overheads.

    Rebuilds the world's cloud with each ``cloud_overhead_seconds``
    setting and times a trivial task on an unscheduled site, so the
    measured latency isolates the dispatch path: cloud overhead plus two
    network traversals plus (constant) execution.
    """
    from repro.faas.service import FaaSService

    latencies: Dict[float, float] = {}
    for overhead in overheads:
        world = World()
        world.faas = FaaSService(
            world.clock,
            world.auth,
            events=world.events,
            cloud_overhead_seconds=overhead,
        )
        world.services.faas = world.faas
        user = world.register_user("ops", {site_name: "x-ops"})
        mep = common.deploy_site_mep(world, site_name)
        client = ComputeClient(world.faas, user.client_id, user.client_secret)
        fid = client.register_function(lambda fctx: 0, name="noop")
        start = world.clock.now
        task_id = client.run(mep.endpoint_id, fid)
        client.get_result(task_id)
        latencies[overhead] = world.clock.now - start
    return CloudOverheadResult(latencies)


# ---------------------------------------------------------------------------
# §5.2 security
# ---------------------------------------------------------------------------


def security_ablation() -> Dict[str, bool]:
    """Exercise each mechanism both ways; True = behaved as designed."""
    results: Dict[str, bool] = {}
    world = World()
    owner = world.register_user("owner", {"faster": "x-owner"})
    intruder = world.register_user("intruder", {})

    # --- reviewer gate ---------------------------------------------------
    from repro.core.security import sole_reviewer_rules
    from repro.core.workflow_builder import WorkflowBuilder

    mep = common.deploy_site_mep(world, "faster", login_only=True)
    step = WorkflowBuilder.correct_step(
        name="gated", shell_cmd="hostname", clone="false"
    )
    builder = WorkflowBuilder("gated").on_push()
    builder.add_job(
        "remote", steps=[step], environment="hpc",
        env={"ENDPOINT_UUID": mep.endpoint_id},
    )
    common.create_repo_with_workflow(
        world, "owner/gated-repo", owner=owner, files={"README.md": "x\n"},
        workflow_path=".github/workflows/ci.yml",
        workflow_text=builder.render(),
        environments={
            "hpc": {
                "GLOBUS_ID": owner.client_id,
                "GLOBUS_SECRET": owner.client_secret,
            }
        },
    )
    run = world.engine.runs[-1]
    results["gate_blocks_until_approval"] = run.status == "waiting"
    try:
        world.engine.approve(run, "remote", "intruder")
        results["gate_rejects_non_reviewer"] = False
    except PermissionDenied:
        results["gate_rejects_non_reviewer"] = True
    world.engine.approve(run, "remote", "owner")
    results["gate_allows_sole_reviewer"] = run.status == "success"

    # --- function allow-list ------------------------------------------------
    allowed = set(correct_function_ids(owner.identity.urn).values())
    template = EndpointTemplate(name="locked", allowed_functions=allowed)
    locked = world.deploy_mep(
        "expanse", templates={"default": template}
    )
    world.map_user_to_site(owner, "expanse", "x-owner")
    client = ComputeClient(world.faas, owner.client_id, owner.client_secret)
    rogue_id = client.register_function(
        lambda fctx: fctx.shell().run("rm -rf /scratch").exit_code,
        name="rogue.wipe",
    )
    try:
        task = client.run(locked.endpoint_id, rogue_id)
        client.get_result(task)
        results["allowlist_blocks_unapproved_function"] = False
    except TaskFailed as exc:
        results["allowlist_blocks_unapproved_function"] = (
            "FunctionNotAllowed" in exc.remote_traceback
        )
    from repro.core.remote import FN_RUN_SHELL, run_shell_command

    shell_id = client.register_function(run_shell_command, name=FN_RUN_SHELL)
    task = client.run(locked.endpoint_id, shell_id, "hostname", cwd="")
    results["allowlist_admits_correct_helpers"] = (
        client.get_result(task)["exit_code"] == 0
    )

    # --- identity mapping ------------------------------------------------------
    intruder_client = ComputeClient(
        world.faas, intruder.client_id, intruder.client_secret
    )
    probe_id = intruder_client.register_function(
        lambda fctx: "in", name="probe"
    )
    try:
        task = intruder_client.run(mep.endpoint_id, probe_id)
        intruder_client.get_result(task)
        results["unmapped_identity_rejected"] = False
    except TaskFailed as exc:
        results["unmapped_identity_rejected"] = (
            "IdentityMappingError" in exc.remote_traceback
        )

    # --- token expiry -----------------------------------------------------------
    short_token = world.auth.client_credentials_grant(
        owner.client_id, owner.client_secret, lifetime=10.0
    )
    world.clock.advance(11.0)
    try:
        world.auth.introspect(short_token.value)
        results["expired_token_rejected"] = False
    except TokenExpired:
        results["expired_token_rejected"] = True

    # --- branch filter -----------------------------------------------------------
    hosted = world.hub.repo("owner/gated-repo")
    hosted.environment("hpc").protection.allowed_branches.append("main")
    world.hub.push_commit(
        "owner/gated-repo", author="owner", message="feature work",
        patch={"feature.txt": "wip\n"}, branch="feature",
    )
    feature_runs = [
        r for r in world.engine.runs
        if r.repo_slug == "owner/gated-repo" and r.branch == "feature"
    ]
    results["branch_filter_blocks_other_branches"] = bool(feature_runs) and (
        feature_runs[-1].status == "failure"
    )
    return results


# ---------------------------------------------------------------------------
# §6.2 cron vs CORRECT
# ---------------------------------------------------------------------------


@dataclass
class CronVsCorrectResult:
    cron_staleness_after_push: float
    correct_staleness_after_push: float
    cron_requires_review: bool
    correct_requires_review: bool
    cron_maps_author_to_account: bool
    both_catch_failure: bool


def cron_vs_correct() -> CronVsCorrectResult:
    """Same repo, same site: PSI/J's cron CI vs a CORRECT workflow."""
    world = World()
    user = world.register_user("vhayot", {"anvil": "x-vhayot"})
    common.provision_user_site(
        world, user, "anvil", "x-vhayot", "psij", common.PSIJ_STACK
    )
    hosted = world.hub.create_repo("exaworks/psij-python", owner=user.login)
    world.hub.push_commit(
        "exaworks/psij-python", author=user.login, message="init",
        files=psij_suite.repo_files(),
    )

    # cron deployment in the user's account, daily interval
    dashboard = Dashboard()
    handle = world.site("anvil").login_handle("x-vhayot")
    cron = CronCI(
        handle, world.hub, "exaworks/psij-python", dashboard,
        policy=BranchPolicy.MAIN_ONLY, interval=24 * 3600.0, conda_env="psij",
    )
    cron.tick()  # overnight run reflects the current code

    # a push lands mid-day: cron results are now stale until the next tick
    world.clock.advance(6 * 3600.0)
    world.hub.push_commit(
        "exaworks/psij-python", author=user.login, message="fix docs",
        patch={"README.md": "# PSI/J (updated)\n"},
    )
    cron_staleness = world.clock.now - (cron.last_tick or 0.0)

    # CORRECT: triggering is push-driven, so staleness is just run latency
    mep = common.deploy_site_mep(world, "anvil", login_only=True)
    from repro.core.workflow_builder import WorkflowBuilder

    step = WorkflowBuilder.correct_step(
        name="tests", shell_cmd="pytest", conda_env="psij",
        artifact_prefix="psij-ci",
    )
    builder = WorkflowBuilder("psij-correct").on_push()
    builder.add_job(
        "anvil", steps=[step], environment="hpc",
        env={"ENDPOINT_UUID": mep.endpoint_id},
    )
    env = hosted.create_environment(
        user.login, "hpc",
        protection=__import__(
            "repro.core.security", fromlist=["sole_reviewer_rules"]
        ).sole_reviewer_rules(user.login),
    )
    env.secrets.set("GLOBUS_ID", user.client_id, set_by=user.login)
    env.secrets.set("GLOBUS_SECRET", user.client_secret, set_by=user.login)
    push_time = world.clock.now
    world.hub.push_commit(
        "exaworks/psij-python", author=user.login, message="add CORRECT CI",
        patch={".github/workflows/ci.yml": builder.render()},
    )
    run = world.engine.runs[-1]
    common.approve_all(world, run, user.login)
    correct_staleness = world.clock.now - push_time

    # both must surface the v0.9.9 failure
    cron_failed = any(
        r.report is not None and r.report.failed > 0 for r in cron.runs
    )
    correct_failed = run.status == "failure"

    return CronVsCorrectResult(
        cron_staleness_after_push=cron_staleness,
        correct_staleness_after_push=correct_staleness,
        cron_requires_review=cron.requires_review_before_execution,
        correct_requires_review=True,  # environment reviewer gate
        cron_maps_author_to_account=cron.maps_author_to_account,
        both_catch_failure=cron_failed and correct_failed,
    )


# ---------------------------------------------------------------------------
# §7.4 artifact retention
# ---------------------------------------------------------------------------


def retention_ablation() -> Dict[str, bool]:
    """Artifacts expire at 90 days; repository commits persist."""
    world = World()
    user = world.register_user("curator", {})
    world.hub.create_repo("curator/results", owner=user.login)
    world.hub.push_commit(
        "curator/results", author=user.login, message="init",
        files={"README.md": "results\n"},
    )
    artifact = world.hub.artifacts.upload("run-000001", "stdout", "42\n")
    world.hub.push_commit(
        "curator/results", author=user.login, message="persist outputs",
        patch={"outputs/stdout.txt": "42\n"},
    )
    results = {
        "artifact_available_before_expiry": bool(
            world.hub.artifacts.download("run-000001", "stdout")
        )
    }
    world.clock.advance(91 * 24 * 3600.0)
    try:
        world.hub.artifacts.download("run-000001", "stdout")
        results["artifact_expired_after_90_days"] = False
    except ArtifactExpired:
        results["artifact_expired_after_90_days"] = True
    repo = world.hub.repo("curator/results").repository
    results["committed_output_persists"] = (
        repo.read_file("main", "outputs/stdout.txt") == "42\n"
    )
    return results
