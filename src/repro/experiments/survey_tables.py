"""Tables 1–4: the survey tables, regenerated from executable state."""

from __future__ import annotations

from typing import Dict, List, Tuple

from repro.baselines.base import SCIENCE_APP_DESCRIPTORS
from repro.baselines.hpc_ci import HPC_CI_ADAPTERS, CorrectAdapter
from repro.world import World


def table1_rows() -> List[List[str]]:
    """Table 1: science-application features important for CI."""
    return [
        ["Collaboration", "Scientific software consists of multilayered code"],
        [
            "Computational requirements",
            "Large data volumes, substantial memory, long-running tests",
        ],
        [
            "Visualization, Monitoring, Logging",
            "Monitor execution, visualize changes, access history",
        ],
        [
            "Reproducibility",
            "Performance and accurate downstream results matter",
        ],
    ]


def table2_rows() -> List[List[str]]:
    """Table 2: CI usage in four scientific applications."""
    return [d.table2_row() for d in SCIENCE_APP_DESCRIPTORS]


def table3_rows() -> List[List[str]]:
    """Table 3: characteristics important for CI of HPC software."""
    return [
        [
            "Collaborative",
            "Developed by many groups with access to different infrastructure",
        ],
        [
            "Secure",
            "No elevated privileges; execution linked to the right account",
        ],
        ["Lightweight", "Mindful of (scarce, allocated) resource use"],
    ]


def table4_rows_and_probes(
    include_correct: bool = False,
) -> Tuple[List[List[str]], Dict[str, Dict[str, bool]]]:
    """Table 4: run every adapter's probes; returns (rows, probe results).

    Probes execute against a fresh :class:`~repro.world.World`, so the
    table's claims are demonstrated, not transcribed.
    """
    adapters = list(HPC_CI_ADAPTERS)
    if include_correct:
        adapters.append(CorrectAdapter())
    world = World()
    rows: List[List[str]] = []
    probes: Dict[str, Dict[str, bool]] = {}
    for adapter in adapters:
        rows.append(adapter.descriptor.table4_row())
        probes[adapter.descriptor.name] = adapter.probe(world)
    return rows, probes
