"""Chaos experiments: the paper's figures under injected faults.

``run_suite_chaos`` replays *any* declarative suite with a seeded fault
plan armed and the resilience layer on: endpoint outages and injected
task errors are absorbed by retries with deterministic backoff, a
hard-down site trips its circuit breaker, and the run degrades to a
per-instance partial result instead of crashing. ``run_fig4_chaos`` is
the historical entry point — ``suites/fig4.yaml`` under chaos —
and ``run_fig5_chaos`` reproduces §6.2's failing-test artifact through
fault injection against the *fixed* PSI/J suite, proving the fault
layer converges on the hard-coded defect path.

Everything is virtual-time deterministic: the same seed twice produces
byte-identical reports (the CI ``chaos-smoke`` job asserts exactly
that).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.experiments.fig5_psij import Fig5Result, run_fig5
from repro.faults.plan import FaultPlan
from repro.faults.profiles import DOWN_SITE, FLAKY_SITE, build_profile
from repro.faults.resilience import BreakerPolicy, RetryPolicy
from repro.suites import SuiteRun, run_suite

# resilience configuration every chaos run shares: enough attempts to
# ride out a short outage window, a breaker that opens fast enough for
# the hard-down site to trip it within one task's retry budget
CHAOS_RETRY = dict(
    max_attempts=5, base_delay=5.0, multiplier=2.0, max_delay=120.0,
    jitter=0.1,
)
CHAOS_BREAKER = BreakerPolicy(failure_threshold=3, reset_timeout=1800.0)

# graceful degradation routing: the flaky site may fail over to the
# healthy cloud site; the hard-down site deliberately has no fallback,
# so its breaker opening skips the site instead
CHAOS_FALLBACKS = {FLAKY_SITE: "chameleon"}


@dataclass
class ChaosFig4Result:
    """Fig. 4 under faults: per-site partial results + recovery audit."""

    run: object
    plan: FaultPlan
    site_status: Dict[str, str]  # site -> "ok" | "skipped"
    skip_reasons: Dict[str, str]
    durations: Dict[str, Dict[str, float]]  # only sites that completed
    outcomes: Dict[str, Dict[str, str]]
    resilience: Dict
    breakers: Dict[str, Dict]
    injected: List[Dict] = field(default_factory=list)
    records_with_seed: int = 0
    world: object = None

    @property
    def sites_ok(self) -> List[str]:
        return [s for s, st in self.site_status.items() if st == "ok"]

    @property
    def sites_skipped(self) -> List[str]:
        return [s for s, st in self.site_status.items() if st == "skipped"]


def run_suite_chaos(
    suite,
    seed: int = 7,
    profile: str = "flaky-endpoint",
    telemetry: bool = True,
    overrides: Optional[Dict] = None,
    world_setup=None,
) -> SuiteRun:
    """Execute any declarative suite with the named fault profile armed.

    The flaky site's failures are retried (and, if its breaker opens,
    failed over to the declared fallback); a permanently-down site
    exhausts its retry budget, trips its breaker, and its job fails —
    the run reports partial results per instance with the skip reason,
    and never raises out of the harness. Faults are armed *after* setup,
    so fault times mean "virtual seconds into the CI run".
    """
    plan = build_profile(profile, seed)
    return run_suite(
        suite,
        overrides=overrides,
        telemetry=telemetry,
        world_setup=world_setup,
        faults=plan,
        arm_faults="after-setup",
        retry_policy=RetryPolicy(seed=seed, **CHAOS_RETRY),
        breaker=CHAOS_BREAKER,
        # offline endpoints reject at dispatch (retryably), not at the
        # cloud's front door — the degraded path instead of a crash
        offline_policy="queue",
        fallbacks=dict(CHAOS_FALLBACKS),
        strict=False,
    )


def run_fig4_chaos(
    seed: int = 7,
    profile: str = "flaky-endpoint",
    telemetry: bool = True,
    sites: Tuple[str, ...] = ("chameleon", "faster", "expanse"),
    world_setup=None,
    suite="fig4",
) -> ChaosFig4Result:
    """Execute Fig. 4 (as a suite) with the named fault profile armed.

    ``world_setup(world)``, if given, runs right after construction —
    the hook the observability experiment uses to attach its plane
    before any event flows.
    """
    suite_run = run_suite_chaos(
        suite,
        seed=seed,
        profile=profile,
        telemetry=telemetry,
        overrides={"site": list(sites)},
        world_setup=world_setup,
    )
    world = suite_run.world

    site_status: Dict[str, str] = {}
    skip_reasons: Dict[str, str] = {}
    durations: Dict[str, Dict[str, float]] = {}
    outcomes: Dict[str, Dict[str, str]] = {}
    for result in suite_run.results:
        key = result.key
        if result.status == "ok":
            site_status[key] = "ok"
            parsed = result.parsed or {}
            durations[key] = {n: d for n, (_, d) in parsed.items()}
            outcomes[key] = {n: o for n, (o, _) in parsed.items()}
        else:
            site_status[key] = "skipped"
            skip_reasons[key] = result.reason

    records_with_seed = sum(
        1 for record in world.provenance.all() if record.fault_seed == seed
    )
    breakers = {
        site_name: world.faas.breaker_for(
            suite_run.endpoints[site_name]
        ).snapshot()
        for site_name in suite_run.endpoints
    }
    return ChaosFig4Result(
        run=suite_run.run,
        plan=world.fault_injector.plan,
        site_status=site_status,
        skip_reasons=skip_reasons,
        durations=durations,
        outcomes=outcomes,
        resilience=world.faas.resilience.summary(),
        breakers=breakers,
        injected=list(world.fault_injector.injected),
        records_with_seed=records_with_seed,
        world=world,
    )


def run_fig5_chaos(seed: int = 0, telemetry: bool = True) -> Fig5Result:
    """§6.2's failing artifact reproduced by injection (fixed suite)."""
    del seed  # the plan is a single deterministic test failure
    return run_fig5(telemetry=telemetry, inject_failure=True)


def format_chaos_report(result: ChaosFig4Result) -> str:
    """Deterministic plain-text report (byte-identical per seed)."""
    plan = result.plan
    lines = [
        f"Chaos Fig. 4 — profile {plan.profile!r}, seed {plan.seed}",
        f"faults planned: {len(plan)}  "
        f"(flaky site: {FLAKY_SITE}, hard-down site: {DOWN_SITE})",
        "",
        f"run status: {result.run.status}",
        "",
        "per-site results:",
    ]
    for site, status in result.site_status.items():
        if status == "ok":
            tests = result.outcomes.get(site, {})
            passed = sum(1 for o in tests.values() if o == "PASSED")
            total_s = sum(result.durations.get(site, {}).values())
            lines.append(
                f"  {site:<12} ok       {passed}/{len(tests)} passed"
                f"  ({total_s:8.2f}s of tests)"
            )
        else:
            reason = result.skip_reasons.get(site, "")
            lines.append(f"  {site:<12} SKIPPED  {reason}")
    res = result.resilience
    lines += [
        "",
        "resilience:",
        f"  retries:       {res['retries']}",
        f"  failovers:     {res['failovers']}",
        f"  breaker trips: {res['breaker_trips']}",
        f"  timeouts:      {res['timeouts']}",
        f"  give-ups:      {res['give_ups']}",
        "  errors absorbed: "
        + (
            ", ".join(f"{k}={v}" for k, v in res["by_error"].items())
            or "none"
        ),
        "",
        "breakers:",
    ]
    lines.extend(
        f"  {site:<12} state={snap['state']:<9} trips={snap['trips']}"
        for site, snap in result.breakers.items()
    )
    lines += ["", f"injected faults fired: {len(result.injected)}"]
    for entry in result.injected:
        extra = {
            k: v for k, v in entry.items() if k not in ("time", "kind")
        }
        detail = ", ".join(f"{k}={v}" for k, v in sorted(extra.items()))
        lines.append(f"  t={entry['time']:10.2f}  {entry['kind']:<22} {detail}")
    lines += [
        "",
        f"provenance: {result.records_with_seed} execution record(s) "
        f"carry fault seed {plan.seed}",
    ]
    return "\n".join(lines)
