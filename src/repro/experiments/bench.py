"""Microbenchmark harness: the engine's performance trajectory.

Every future PR needs a number to beat. This module drives the FaaS
stack with seeded synthetic workloads (10k–1M tasks) and distills each
run into a :class:`BenchResult` that serializes to ``BENCH_<scenario>.json``
— wall time, tasks/sec, peak event counts, and p50/p95 dispatch latency
in *virtual* time. The JSON schema (``repro-bench/4``) is documented in
DESIGN.md §12: version 2 added ``alerts_fired`` and the per-window
``queue_wait_p95_series`` from the observability plane (``--obs``);
version 3 added the overload-plane disposition counters (``admitted``,
``rejected``, ``shed``, ``brownout_seconds``); version 4 adds the
hedging-plane counters (``hedges_launched``, ``hedges_won``,
``wasted_work_seconds``). ``--baseline`` still accepts files from every
earlier schema generation.

Three scenario families ship:

* ``dispatch_*`` — N zero-dependency synthetic tasks with seeded
  virtual durations, spread round-robin over M single-site endpoints.
  This is a pure spine benchmark: submit validation, event emission,
  dispatch scheduling, pilot execution, and completion fan-out, with
  no workflow engine in the loop.
* ``fig4_pooled`` — the full pooled Fig. 4 routing experiment, timed.
  A macro-benchmark: CI engine, CORRECT action, placement, telemetry.
* ``overload_*`` — N tasks offered at ~2x pool capacity through the
  overload-protection plane, with arrivals *scheduled in virtual time*
  instead of burst-submitted. Measures the engine's disposal rate when
  admission control, AIMD limiting, and shedding are all in the path.

``python -m repro bench <scenario>`` runs one and writes its JSON;
``--baseline`` turns the run into a regression gate (used by the
``bench-smoke`` CI job).
"""

from __future__ import annotations

import json
import platform
import random
import time
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Optional

from repro.telemetry import percentile

SCHEMA = "repro-bench/4"

# baseline files from any schema generation still gate throughput
ACCEPTED_BASELINE_SCHEMAS = (
    "repro-bench/1", "repro-bench/2", "repro-bench/3", "repro-bench/4",
)

# tasks are submitted (and peak-pending sampled) in slices of this size
SUBMIT_SLICE = 1000


@dataclass
class BenchResult:
    """One scenario's measurements, ready to serialize.

    ``dispatch_latency_*`` are virtual-time seconds from ``task.submitted``
    to ``task.dispatched``; wall-clock figures measure the simulator
    itself, virtual figures measure the simulated system.
    """

    scenario: str
    params: Dict[str, Any]
    tasks: int
    wall_seconds: float
    tasks_per_second: float
    virtual_makespan: float
    events_emitted: int
    peak_pending_events: int
    dispatch_latency_p50: float
    dispatch_latency_p95: float
    extras: Dict[str, Any] = field(default_factory=dict)
    # schema v2: observability-plane summaries (zero/empty when the
    # collector was not attached, so the fields are always present)
    alerts_fired: int = 0
    queue_wait_p95_series: List[List[float]] = field(default_factory=list)
    # schema v3: overload-plane disposition counters (all zero when no
    # protection plane was attached, so the fields are always present)
    admitted: int = 0
    rejected: int = 0
    shed: int = 0
    brownout_seconds: float = 0.0
    # schema v4: hedging-plane counters (all zero when the service was
    # built without a HedgeConfig, so the fields are always present)
    hedges_launched: int = 0
    hedges_won: int = 0
    wasted_work_seconds: float = 0.0

    def to_json(self) -> Dict[str, Any]:
        return {
            "schema": SCHEMA,
            "scenario": self.scenario,
            "params": dict(self.params),
            "results": {
                "tasks": self.tasks,
                "wall_seconds": round(self.wall_seconds, 4),
                "tasks_per_second": round(self.tasks_per_second, 1),
                "virtual_makespan": round(self.virtual_makespan, 3),
                "events_emitted": self.events_emitted,
                "peak_pending_events": self.peak_pending_events,
                "dispatch_latency": {
                    "p50": round(self.dispatch_latency_p50, 4),
                    "p95": round(self.dispatch_latency_p95, 4),
                },
                "alerts_fired": self.alerts_fired,
                "queue_wait_p95_series": [
                    [round(start, 1), round(value, 4)]
                    for start, value in self.queue_wait_p95_series
                ],
                "admitted": self.admitted,
                "rejected": self.rejected,
                "shed": self.shed,
                "brownout_seconds": round(self.brownout_seconds, 3),
                "hedges_launched": self.hedges_launched,
                "hedges_won": self.hedges_won,
                "wasted_work_seconds": round(self.wasted_work_seconds, 3),
                **{k: v for k, v in sorted(self.extras.items())},
            },
            "meta": {
                "python": platform.python_version(),
                "implementation": platform.python_implementation(),
            },
        }

    def write(self, directory: str = ".") -> str:
        path = f"{directory.rstrip('/')}/BENCH_{self.scenario}.json"
        with open(path, "w", encoding="utf-8") as fh:
            json.dump(self.to_json(), fh, indent=2, sort_keys=False)
            fh.write("\n")
        return path


def _bench_work(fctx, seconds: float) -> float:
    """The synthetic task body: burn ``seconds`` of virtual compute."""
    fctx.handle.compute(seconds)
    return seconds


def run_dispatch_bench(
    tasks: int = 100_000,
    endpoints: int = 8,
    seed: int = 0,
    mean_seconds: float = 2.0,
    telemetry: bool = False,
    span_sample_rate: Optional[float] = None,
    journal_batch: int = 0,
    obs: bool = False,
) -> BenchResult:
    """N seeded synthetic tasks round-robin over M cloud endpoints.

    Virtual task durations are uniform in ``[0.5, 1.5] * mean_seconds``
    from ``random.Random(seed)``, so the same seed replays the same
    workload. ``telemetry=True`` attaches the tracer/metrics bridge
    (optionally with a span sampling rate); ``journal_batch > 0``
    additionally journals the run with that store-flush batch size.
    ``obs=True`` implies telemetry and attaches the full observability
    plane (windowed series, default SLO pack, health scorer); bench
    worlds always use streaming histograms when telemetry is on, so a
    1M-task run holds fixed-size buckets instead of every observation.
    """
    from repro.experiments import common
    from repro.faas.client import ComputeClient
    from repro.world import World

    telemetry = telemetry or obs
    world_kwargs: Dict[str, Any] = {
        "telemetry": telemetry,
        "streaming_metrics": telemetry,
    }
    if span_sample_rate is not None:
        from repro.telemetry.sampling import RatioSampler

        world_kwargs["span_sampler"] = RatioSampler(span_sample_rate, seed=seed)
    world = World(**world_kwargs)
    if obs:
        world.enable_observability()
    if journal_batch:
        from repro.durability.journal import Journal

        world.attach_journal(Journal(batch_size=journal_batch))
    user = world.register_user("bench", {"chameleon": "bench"})
    pool = common.deploy_site_mep_pool(world, "chameleon", size=endpoints)
    endpoint_ids = [mep.endpoint_id for mep in pool]
    client = ComputeClient(world.faas, user.client_id, user.client_secret)
    function_id = client.register_function(_bench_work, "bench-work")

    rng = random.Random(seed)
    durations = [
        mean_seconds * (0.5 + rng.random()) for _ in range(tasks)
    ]

    clock = world.clock
    peak_pending = 0
    started = time.perf_counter()
    futures = []
    for base in range(0, tasks, SUBMIT_SLICE):
        futures.extend(
            client.submit(
                endpoint_ids[index % endpoints],
                function_id,
                durations[index],
            )
            for index in range(base, min(base + SUBMIT_SLICE, tasks))
        )
        peak_pending = max(peak_pending, clock.pending_events())
    clock.run_until_idle()
    wall = time.perf_counter() - started

    unresolved = [f for f in futures if not f.done()]
    if unresolved:
        raise RuntimeError(
            f"dispatch bench: {len(unresolved)} of {tasks} futures unresolved"
        )
    if world.journal is not None:
        world.journal.flush()

    events = world.events
    submitted = {
        e.data["task_id"]: e.time for e in events.query("faas", "task.submitted")
    }
    latencies = [
        e.time - submitted[e.data["task_id"]]
        for e in events.query("faas", "task.dispatched")
        if e.data["task_id"] in submitted
    ]
    params: Dict[str, Any] = {
        "tasks": tasks,
        "endpoints": endpoints,
        "seed": seed,
        "mean_seconds": mean_seconds,
        "telemetry": telemetry,
    }
    if span_sample_rate is not None:
        params["span_sample_rate"] = span_sample_rate
    if journal_batch:
        params["journal_batch"] = journal_batch
    if obs:
        params["obs"] = True
    extras: Dict[str, Any] = {
        "spans_recorded": len(world.tracer.spans),
    }
    if world.journal is not None:
        extras["journal_records"] = len(world.journal)
    alerts_fired = 0
    p95_series: List[List[float]] = []
    if obs:
        world.slo.finish(clock.now)
        alerts_fired = world.slo.alerts_fired
        wait_series = world.series.get("faas.task.queue_wait")
        if wait_series is not None:
            p95_series = [
                [start, summary.get("p95", 0.0)]
                for start, summary in wait_series.buckets()
                if summary.get("count")
            ]
    return BenchResult(
        scenario=f"dispatch_{_format_count(tasks)}",
        params=params,
        tasks=tasks,
        wall_seconds=wall,
        tasks_per_second=tasks / wall if wall > 0 else 0.0,
        virtual_makespan=clock.now,
        events_emitted=len(events),
        peak_pending_events=peak_pending,
        dispatch_latency_p50=percentile(latencies, 50),
        dispatch_latency_p95=percentile(latencies, 95),
        extras=extras,
        alerts_fired=alerts_fired,
        queue_wait_p95_series=p95_series,
    )


def run_overload_bench(
    tasks: int = 50_000,
    tenants: int = 8,
    endpoints: int = 8,
    seed: int = 0,
    mean_seconds: float = 2.0,
) -> BenchResult:
    """N tasks offered at ~2x pool capacity through the protection plane.

    Unlike the ``dispatch_*`` scenarios, arrivals are scheduled in
    virtual time (per-tenant exponential interarrivals summing to twice
    the pool's service rate) rather than burst-submitted: admission
    control and AIMD react to queue pressure over time, and a single
    up-front burst would only measure the rejection fast-path. Rejected
    and shed submissions resolve their futures to typed retryable
    errors and still count toward throughput — the bench measures how
    fast the engine *disposes* of offered work, admitted or not.
    """
    from repro.experiments import common
    from repro.experiments.overload import OverloadParams, overload_config
    from repro.faas.client import ComputeClient
    from repro.faas.overload import (
        PRIORITY_BATCH,
        PRIORITY_CRITICAL,
        PRIORITY_NORMAL,
    )
    from repro.world import World

    shape = OverloadParams(
        tenants=tenants,
        seed=seed,
        endpoints=endpoints,
        mean_seconds=mean_seconds,
        offered_utilization=2.0,
    )
    world = World(
        overload=overload_config(shape),
        placement_policy="least-loaded",
    )
    common.deploy_site_mep_pool(world, "chameleon", size=endpoints)
    clients: List[ComputeClient] = []
    function_ids: List[str] = []
    for index in range(tenants):
        login = f"bench-{index}"
        user = world.register_user(login, {"chameleon": f"x-{login}"})
        client = ComputeClient(world.faas, user.client_id, user.client_secret)
        clients.append(client)
        function_ids.append(
            client.register_function(_bench_work, f"bench-work-{index}")
        )

    # per-tenant seeded arrival streams; each tenant offers 2x/tenants of
    # the pool's aggregate service rate, so the whole offered load is ~2x
    per_tenant = tasks // tenants
    counts = [
        per_tenant + (1 if index < tasks % tenants else 0)
        for index in range(tenants)
    ]
    rate = 2.0 * (endpoints / mean_seconds) / tenants
    futures = []

    def _submit(tenant: int, duration: float, priority: int) -> None:
        futures.append(
            clients[tenant].submit(
                "chameleon",
                function_ids[tenant],
                duration,
                priority=priority,
            )
        )

    clock = world.clock
    started = time.perf_counter()
    for tenant in range(tenants):
        rng = random.Random(seed * 1_000_003 + tenant)
        t = 0.0
        for _ in range(counts[tenant]):
            t += rng.expovariate(rate)
            duration = mean_seconds * (0.5 + rng.random())
            draw = rng.random()
            priority = (
                PRIORITY_CRITICAL if draw < 0.10
                else PRIORITY_NORMAL if draw < 0.70
                else PRIORITY_BATCH
            )
            clock.call_after(
                t, lambda te=tenant, d=duration, p=priority: _submit(te, d, p)
            )
    peak_pending = clock.pending_events()
    clock.run_until_idle()
    wall = time.perf_counter() - started

    unresolved = [f for f in futures if not f.done()]
    if unresolved:
        raise RuntimeError(
            f"overload bench: {len(unresolved)} of {tasks} futures unresolved"
        )

    events = world.events
    submitted = {
        e.data["task_id"]: e.time for e in events.query("faas", "task.submitted")
    }
    latencies = [
        e.time - submitted[e.data["task_id"]]
        for e in events.query("faas", "task.dispatched")
        if e.data["task_id"] in submitted
    ]
    controller = world.faas.overload
    return BenchResult(
        scenario=f"overload_{_format_count(tasks)}",
        params={
            "tasks": tasks,
            "tenants": tenants,
            "endpoints": endpoints,
            "seed": seed,
            "mean_seconds": mean_seconds,
            "offered_utilization": 2.0,
        },
        tasks=tasks,
        wall_seconds=wall,
        tasks_per_second=tasks / wall if wall > 0 else 0.0,
        virtual_makespan=clock.now,
        events_emitted=len(events),
        peak_pending_events=peak_pending,
        dispatch_latency_p50=percentile(latencies, 50),
        dispatch_latency_p95=percentile(latencies, 95),
        extras={
            "aimd_backoffs": controller.stats.backoffs,
            "brownouts": controller.stats.brownouts,
        },
        admitted=controller.stats.admitted,
        rejected=controller.stats.rejected,
        shed=controller.stats.shed,
        brownout_seconds=controller.brownout_seconds(clock.now),
    )


def run_fig4_pooled_bench(pool_size: int = 2) -> BenchResult:
    """Time the full pooled Fig. 4 routing experiment (macro-benchmark)."""
    from repro.experiments.routing import run_fig4_pooled

    started = time.perf_counter()
    comparison = run_fig4_pooled(pool_size=pool_size)
    wall = time.perf_counter() - started

    routed = comparison.routed
    events = routed.world.events
    submitted = {
        e.data["task_id"]: e.time for e in events.query("faas", "task.submitted")
    }
    latencies = [
        e.time - submitted[e.data["task_id"]]
        for e in events.query("faas", "task.dispatched")
        if e.data["task_id"] in submitted
    ]
    tasks = len(submitted)
    return BenchResult(
        scenario="fig4_pooled",
        params={"pool_size": pool_size, "policy": routed.policy},
        tasks=tasks,
        wall_seconds=wall,
        tasks_per_second=tasks / wall if wall > 0 else 0.0,
        virtual_makespan=routed.makespan,
        events_emitted=len(events),
        peak_pending_events=routed.world.clock.pending_events(),
        dispatch_latency_p50=percentile(latencies, 50),
        dispatch_latency_p95=percentile(latencies, 95),
        extras={
            "pinned_makespan": round(comparison.pinned.makespan, 3),
            "makespan_cut": round(comparison.improvement, 4),
            "spans_recorded": len(routed.world.tracer.spans),
        },
    )


def _format_count(count: int) -> str:
    if count % 1_000_000 == 0 and count >= 1_000_000:
        return f"{count // 1_000_000}m"
    if count % 1000 == 0 and count >= 1000:
        return f"{count // 1000}k"
    return str(count)


# named scenario -> zero-argument runner; CLI flags override via lambdas
SCENARIOS: Dict[str, Callable[..., BenchResult]] = {
    "dispatch_10k": lambda **kw: run_dispatch_bench(
        tasks=kw.pop("tasks", 10_000), **kw
    ),
    "dispatch_100k": lambda **kw: run_dispatch_bench(
        tasks=kw.pop("tasks", 100_000), **kw
    ),
    "dispatch_1m": lambda **kw: run_dispatch_bench(
        tasks=kw.pop("tasks", 1_000_000), **kw
    ),
    "fig4_pooled": lambda **kw: run_fig4_pooled_bench(
        pool_size=kw.pop("pool_size", 2)
    ),
    "overload_50k": lambda **kw: run_overload_bench(
        tasks=kw.pop("tasks", 50_000), **kw
    ),
}


def check_against_baseline(
    result: BenchResult, baseline_path: str, tolerance: float = 0.2
) -> List[str]:
    """Compare throughput against a committed baseline JSON.

    Returns a list of human-readable failures (empty = within budget).
    Only throughput is gated: wall time scales with machine speed in the
    same direction, and virtual-time figures are deterministic anyway.
    Baselines written under older schema generations are still
    accepted — the gated fields are identical in every schema.
    """
    with open(baseline_path, encoding="utf-8") as fh:
        baseline = json.load(fh)
    base_schema = baseline.get("schema", "")
    if base_schema and base_schema not in ACCEPTED_BASELINE_SCHEMAS:
        return [
            f"unsupported baseline schema {base_schema!r}; "
            f"accepted: {', '.join(ACCEPTED_BASELINE_SCHEMAS)}"
        ]
    base_tps = float(baseline["results"]["tasks_per_second"])
    floor = base_tps * (1.0 - tolerance)
    failures: List[str] = []
    if result.tasks_per_second < floor:
        failures.append(
            f"throughput regression: {result.tasks_per_second:.1f} tasks/s "
            f"< {floor:.1f} (baseline {base_tps:.1f} - {tolerance:.0%})"
        )
    base_scenario = baseline.get("scenario", "")
    if base_scenario and base_scenario != result.scenario:
        failures.append(
            f"scenario mismatch: ran {result.scenario!r}, "
            f"baseline is {base_scenario!r}"
        )
    return failures


def format_bench_report(result: BenchResult) -> str:
    lines = [
        f"bench {result.scenario} — {result.tasks} tasks",
        "",
        f"  wall time:            {result.wall_seconds:10.2f} s",
        f"  throughput:           {result.tasks_per_second:10.1f} tasks/s",
        f"  virtual makespan:     {result.virtual_makespan:10.1f} s",
        f"  events emitted:       {result.events_emitted:10d}",
        f"  peak pending events:  {result.peak_pending_events:10d}",
        f"  dispatch latency p50: {result.dispatch_latency_p50:10.2f} s (virtual)",
        f"  dispatch latency p95: {result.dispatch_latency_p95:10.2f} s (virtual)",
    ]
    if result.queue_wait_p95_series or result.alerts_fired:
        lines.append(f"  alerts fired:         {result.alerts_fired:10d}")
        lines.append(
            f"  p95 windows recorded: "
            f"{len(result.queue_wait_p95_series):10d}"
        )
    if result.admitted or result.rejected or result.shed:
        lines.append(f"  admitted:             {result.admitted:10d}")
        lines.append(f"  rejected:             {result.rejected:10d}")
        lines.append(f"  shed:                 {result.shed:10d}")
        lines.append(
            f"  brownout:             {result.brownout_seconds:10.1f} s (virtual)"
        )
    if result.hedges_launched:
        lines.append(f"  hedges launched:      {result.hedges_launched:10d}")
        lines.append(f"  hedges won:           {result.hedges_won:10d}")
        lines.append(
            f"  wasted work:          "
            f"{result.wasted_work_seconds:10.1f} s (virtual)"
        )
    lines.extend(
        f"  {key + ':':<22}{value:>10}"
        for key, value in sorted(result.extras.items())
    )
    return "\n".join(lines)
