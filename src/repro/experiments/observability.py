"""Observability experiments: Fig. 4 watched by the continuous plane.

``run_fig4_obs`` executes the §6.1 workflow — fault-free, or under a
seeded chaos profile — with the observability plane attached *before*
any event flows: windowed time-series recording, the default (or a
caller-supplied) SLO pack evaluating at every bucket boundary, and the
health scorer reading the same store. The result carries everything the
``repro obs`` CLI renders or exports: the alert timeline, closing
health, per-window p95 series, OpenMetrics text, and the JSON
dashboard snapshot.

Determinism is the point: the plane only *observes* the same event
stream the chaos experiments already pin byte-identical per seed, and
SLO evaluation happens at virtual-time bucket boundaries — so two runs
with the same seed produce identical series, identical alert
timelines, and identical reports (CI's ``obs-smoke`` job diffs them).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Dict, List, Optional, Tuple

from repro.experiments.chaos import run_fig4_chaos
from repro.experiments.fig4_parsldock import FIG4_SITES, run_fig4
from repro.telemetry import (
    DEFAULT_WINDOW,
    dashboard_snapshot,
    default_slo_pack,
    openmetrics_text,
)

# profile value meaning "no faults": plain Fig. 4 with the plane attached
FAULT_FREE_PROFILES = ("none", "off")


@dataclass
class ObsFig4Result:
    """One observed Fig. 4 run plus every observability surface."""

    profile: str
    seed: int
    window: float
    world: Any
    base: Any  # Fig4Result (fault-free) or ChaosFig4Result (chaos)
    end_time: float

    @property
    def fault_free(self) -> bool:
        return self.profile in FAULT_FREE_PROFILES

    @property
    def alerts_fired(self) -> int:
        return self.world.slo.alerts_fired

    @property
    def alert_timeline(self) -> List[Dict[str, Any]]:
        return self.world.slo.timeline

    def p95_series(self, name: str = "faas.task.queue_wait") -> List[
        Tuple[float, float]
    ]:
        """``(bucket_start, p95)`` for the unlabeled quantile series."""
        series = self.world.series.get(name)
        if series is None:
            return []
        return [
            (start, summary.get("p95", 0.0))
            for start, summary in series.buckets()
            if summary.get("count")
        ]

    def openmetrics(self) -> str:
        return openmetrics_text(self.world.metrics, self.world.series)

    def dashboard(self) -> Dict[str, Any]:
        return dashboard_snapshot(
            self.world.metrics,
            self.world.series,
            health=self.world.health,
            engine=self.world.slo,
            now=self.end_time,
        )


def run_fig4_obs(
    seed: int = 7,
    profile: str = "flaky-endpoint",
    window: float = DEFAULT_WINDOW,
    rules=None,
    telemetry: bool = True,
    health_routing: bool = False,
    sites: Tuple[str, ...] = FIG4_SITES,
    suite: str = "fig4",
) -> ObsFig4Result:
    """Run a suite (Fig. 4 by default) with the observability plane attached.

    ``profile="none"`` runs the fault-free experiment (the default SLO
    pack must stay silent on it); any chaos profile name runs
    :func:`~repro.experiments.chaos.run_fig4_chaos` under that plan.
    ``rules`` defaults to :func:`default_slo_pack` for the window.
    """

    def setup(world) -> None:
        world.enable_observability(
            window=window, rules=rules, health_routing=health_routing
        )

    if profile in FAULT_FREE_PROFILES:
        base = run_fig4(
            sites=sites, telemetry=telemetry, world_setup=setup, suite=suite
        )
    else:
        base = run_fig4_chaos(
            seed=seed, profile=profile, telemetry=telemetry, sites=sites,
            world_setup=setup, suite=suite,
        )
    world = base.world
    end_time = world.clock.now
    # the final (partial) bucket never closes on its own — no later
    # event arrives to push the boundary — so evaluate it explicitly
    world.slo.finish(end_time)
    return ObsFig4Result(
        profile=profile,
        seed=seed,
        window=window,
        world=world,
        base=base,
        end_time=end_time,
    )


def parse_slo_overrides(
    specs: Optional[List[str]], window: float
) -> Optional[list]:
    """CLI ``--slo key=value`` overrides → an alert-rule pack.

    Recognised keys: ``error-rate`` (fraction in (0, 1]) and
    ``p95-latency`` (virtual seconds). ``None``/empty means "use the
    default pack".
    """
    if not specs:
        return None
    thresholds = {"error-rate": 0.05, "p95-latency": 5400.0}
    for spec in specs:
        key, sep, raw = spec.partition("=")
        if not sep:
            raise ValueError(
                f"--slo expects key=value, got {spec!r}"
            )
        key = key.strip()
        if key not in thresholds:
            raise ValueError(
                f"unknown SLO key {key!r}; choices: {sorted(thresholds)}"
            )
        thresholds[key] = float(raw)
    return default_slo_pack(
        window,
        latency_threshold=thresholds["p95-latency"],
        error_rate_threshold=thresholds["error-rate"],
    )


def format_obs_report(result: ObsFig4Result) -> str:
    """Deterministic plain-text report (byte-identical per seed)."""
    world = result.world
    lines = [
        f"Observed Fig. 4 — profile {result.profile!r}, "
        f"seed {result.seed}, window {result.window:.0f}s",
        f"virtual makespan observed: t={result.end_time:.1f}s",
        "",
    ]
    p95 = result.p95_series()
    lines.append("p95 dispatch queue wait per window:")
    if not p95:
        lines.append("  (no dispatches observed)")
    lines.extend(
        f"  [{start:>10.0f}s .. {start + result.window:>10.0f}s)  "
        f"p95={value:10.3f}s"
        for start, value in p95
    )
    lines.append("")
    lines.append(world.slo.report())
    lines.append("")
    lines.append(world.health.report(result.end_time))
    lines.append("")
    lines.append(
        f"series recorded: {len(world.series)}  "
        f"alerts fired: {result.alerts_fired}  "
        f"firing at end: {', '.join(world.slo.firing) or 'none'}"
    )
    return "\n".join(lines)
