"""Shared experiment setup: users, sites, conda stacks, MEP templates."""

from __future__ import annotations

from typing import Dict, List, Optional

from repro.core.security import sole_reviewer_rules
from repro.faas.endpoint import EndpointTemplate, MultiUserEndpoint
from repro.world import World, WorldUser

# the compute partition name for each batch site in the catalog
SITE_PARTITIONS: Dict[str, Optional[str]] = {
    "chameleon": None,  # cloud VM: no scheduler
    "faster": "normal",
    "expanse": "compute",
    "anvil": "shared",
}

# §6.1's docking stack, installed via Conda on every site
DOCKING_STACK: Dict[str, str] = {
    "parsldock": "*",
    "pytest": ">=8",
}

# §6.2's PSI/J stack (versions from Fig. 5)
PSIJ_STACK: Dict[str, str] = {
    "psij-python": "==0.9.9",
    "pytest": ">=7",
}


def provision_user_site(
    world: World,
    user: WorldUser,
    site_name: str,
    account: str,
    conda_env: str,
    stack: Dict[str, str],
) -> None:
    """Create the account, the conda environment, and install the stack.

    The install is charged to the clock through a login-node handle, like
    a human preparing the site before wiring up CI.
    """
    if site_name not in user.site_accounts:
        world.map_user_to_site(user, site_name, account)
    site = world.site(site_name)
    handle = site.login_handle(account)
    manager = handle.conda()
    if conda_env not in manager.environments():
        manager.create(conda_env)
    downloaded = manager.install(conda_env, dict(stack))
    handle.io(downloaded)


def deploy_site_mep(
    world: World,
    site_name: str,
    login_only: bool = False,
    walltime: float = 7200.0,
    nodes: int = 1,
) -> MultiUserEndpoint:
    """Deploy a MEP with the per-site template the paper's setup used.

    Restricted sites get a template whose tests run on compute nodes via
    a SLURM pilot while outbound-needing functions (clones) run on the
    login node; ``login_only=True`` reproduces the Anvil configuration
    where tests themselves must run on the login node (§6.2).
    ``walltime``/``nodes`` are the scheduler requirements a declarative
    suite may override per site.
    """
    partition = None if login_only else SITE_PARTITIONS[site_name]
    template = EndpointTemplate(
        name="default",
        compute_partition=partition,
        nodes_per_block=nodes,
        walltime=walltime,
    )
    return world.deploy_mep(site_name, templates={"default": template})


def deploy_site_mep_pool(
    world: World,
    site_name: str,
    size: int,
    login_only: bool = False,
    walltime: float = 7200.0,
    nodes: int = 1,
) -> List[MultiUserEndpoint]:
    """Deploy ``size`` MEPs with the site's paper template as one pool.

    Member 0 keeps the site's historical singleton endpoint id, so a
    pool of one is indistinguishable from :func:`deploy_site_mep`.
    Submissions targeting the site name route through the placement
    policy of ``world.faas``.
    """
    partition = None if login_only else SITE_PARTITIONS[site_name]
    template = EndpointTemplate(
        name="default",
        compute_partition=partition,
        nodes_per_block=nodes,
        walltime=walltime,
    )
    return world.deploy_mep_pool(
        site_name, size, templates={"default": template}
    )


def create_repo_with_workflow(
    world: World,
    slug: str,
    owner: WorldUser,
    files: Dict[str, str],
    workflow_path: str,
    workflow_text: str,
    environments: Optional[Dict[str, Dict[str, str]]] = None,
) -> None:
    """Create a hosted repo, its protected environments, and first commit.

    ``environments`` maps environment name → secrets; each environment is
    protected with the owner as sole reviewer (the §5.2 recommendation).
    The workflow file is part of the first commit, so pushing it triggers
    the CI run.
    """
    hosted = world.hub.create_repo(slug, owner=owner.login)
    for env_name, secrets in (environments or {}).items():
        env = hosted.create_environment(
            owner.login, env_name, protection=sole_reviewer_rules(owner.login)
        )
        for name, value in secrets.items():
            env.secrets.set(name, value, set_by=owner.login)
    all_files = dict(files)
    all_files[workflow_path] = workflow_text
    world.hub.push_commit(
        slug, author=owner.login, message="Initial commit with CI", files=all_files
    )


def approve_all(world: World, run, reviewer: str) -> None:
    """Approve every environment gate in a run as ``reviewer``."""
    while run.status == "waiting":
        pending = run.pending_approvals()
        if not pending:
            break
        for job_id in pending:
            world.engine.approve(run, job_id, reviewer)
