"""Multi-tenant overload: goodput with and without the protection plane.

The scenario the ROADMAP's multi-tenant item and Gamblin & Katz both
describe: N tenants share one pooled site, one tenant goes hot at many
times its fair share, and the facility degrades under the `overload`
chaos profile (fault bursts + a short blackout + control-plane latency).
Every submission carries a deadline, so an unprotected service loses
throughput twice over — queued tasks time out after burning capacity,
and fault-driven retries amplify the queue they are waiting in.

``run_overload_comparison`` runs three worlds against the same seed:

* **baseline** — every tenant at fair share, fault-free, protection off
  (the per-tenant p95 yardstick);
* **unprotected** — the hot tenant floods, protection off;
* **protected** — the same flood through admission control, AIMD
  concurrency, retry budgets, and priority shedding with brownout.

All arrivals, durations, and priorities come from per-tenant
``random.Random`` streams derived from the seed, so two same-seed runs
(and therefore their formatted reports) are byte-identical.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field, replace
from typing import Any, Dict, List, Optional

from repro.experiments import common
from repro.faas.client import ComputeClient
from repro.faas.overload import (
    PRIORITY_BATCH,
    PRIORITY_CRITICAL,
    PRIORITY_NORMAL,
    OverloadConfig,
)
from repro.faas.task import TaskState
from repro.faults.profiles import build_profile
from repro.faults.resilience import RetryPolicy
from repro.telemetry.metrics import percentile
from repro.telemetry.slo import overload_slo_pack
from repro.world import World

OVERLOAD_SITE = "chameleon"
FAULT_FREE_PROFILES = ("none", "off")

# Retry tuning for overload runs: fewer, faster attempts than the chaos
# experiments — under contention a long backoff ladder just holds queue
# slots hostage past the task's own deadline.
OVERLOAD_RETRY = dict(
    max_attempts=4, base_delay=4.0, multiplier=2.0, max_delay=60.0, jitter=0.1
)


@dataclass(frozen=True)
class OverloadParams:
    """One comparison's knobs; everything derives from these + the seed."""

    tenants: int = 4
    seed: int = 7
    profile: str = "overload"
    endpoints: int = 4
    horizon: float = 900.0
    mean_seconds: float = 30.0
    hot_factor: float = 8.0
    offered_utilization: float = 0.5
    deadline: float = 60.0

    @property
    def capacity(self) -> float:
        """Aggregate pool service rate, tasks per virtual second."""
        return self.endpoints / self.mean_seconds

    @property
    def fair_rate(self) -> float:
        """Each tenant's nominal fair share of the offered utilization
        (bursts add ~60% on top, so utilization is set conservatively)."""
        return self.capacity * self.offered_utilization / self.tenants


@dataclass(frozen=True)
class Arrival:
    at: float
    tenant: int
    duration: float
    priority: int


def _duration(rng: random.Random, mean: float) -> float:
    # Pareto(alpha=2) over x_m=1 has mean 2, so half the scale recovers
    # the requested mean while keeping the heavy tail; capped at 10x so
    # one draw cannot occupy an endpoint for the whole horizon
    return round(0.5 * mean * min(10.0, rng.paretovariate(2.0)), 6)


def _priority(rng: random.Random) -> int:
    draw = rng.random()
    if draw < 0.10:
        return PRIORITY_CRITICAL
    if draw < 0.70:
        return PRIORITY_NORMAL
    return PRIORITY_BATCH


def generate_workload(params: OverloadParams) -> List[Arrival]:
    """Seeded bursty + heavy-tailed arrivals for every tenant.

    Tenant 0 offers ``hot_factor`` times its fair share; everyone else
    offers exactly fair share. Interarrivals are exponential with a 20%
    chance of a burst (2–4 extra tasks within 3 s), durations are
    Pareto-tailed, and priorities are ~10% critical / 60% normal / 30%
    batch. Each tenant draws from its own ``random.Random`` stream, so
    adding a tenant never perturbs another tenant's arrivals.
    """
    arrivals: List[Arrival] = []
    for tenant in range(params.tenants):
        rng = random.Random(params.seed * 1_000_003 + tenant)
        rate = params.fair_rate * (params.hot_factor if tenant == 0 else 1.0)
        if rate <= 0.0:
            continue
        t = rng.expovariate(rate)
        while t < params.horizon:
            arrivals.append(
                Arrival(
                    round(t, 6), tenant,
                    _duration(rng, params.mean_seconds), _priority(rng),
                )
            )
            if rng.random() < 0.2:
                for _ in range(rng.randint(2, 4)):
                    offset = t + rng.uniform(0.1, 3.0)
                    if offset >= params.horizon:
                        break
                    arrivals.append(
                        Arrival(
                            round(offset, 6), tenant,
                            _duration(rng, params.mean_seconds),
                            _priority(rng),
                        )
                    )
            t += rng.expovariate(rate)
    arrivals.sort(key=lambda a: (a.at, a.tenant))
    return arrivals


def overload_config(params: OverloadParams) -> OverloadConfig:
    """Protection tuning sized to the experiment's capacity envelope.

    Rate quotas give every tenant headroom over fair share (protection
    must not tax a well-behaved tenant), in-flight caps bound how much
    of the queue one tenant can own, the AIMD limiter backs off on
    queue depth or when dispatch p95 nears half the deadline, and shed
    watermarks sit above the admission-capped steady state so a
    fault-free fair-share run sheds exactly zero.
    """
    depth = max(6, 2 * params.endpoints)
    return OverloadConfig(
        tenant_rate=5.0 * params.fair_rate,
        tenant_burst=8.0,
        tenant_max_inflight=max(2, (3 * params.endpoints) // 2),
        aimd_initial=float(2 * params.endpoints),
        aimd_min=1.5 * params.endpoints,
        aimd_max=float(3 * params.endpoints),
        aimd_queue_high=depth + 2,
        aimd_p95_high=0.5 * params.deadline,
        aimd_cooldown=30.0,
        retry_budget=0.25,
        tenant_retry_budget=0.5,
        budget_window=300.0,
        shed_watermarks={
            PRIORITY_BATCH: depth + 4,
            PRIORITY_NORMAL: 3 * depth,
        },
        brownout_enter=depth + 2,
        brownout_exit=depth // 2,
        brownout_sample_rate=0.1,
        brownout_seed=params.seed,
    )


@dataclass
class TenantReport:
    """Per-tenant outcome: the fairness half of the goodput story."""

    login: str
    urn: str
    hot: bool
    submitted: int = 0
    rejected: int = 0
    shed: int = 0
    completed: int = 0
    first_attempt: int = 0
    timeouts: int = 0
    p95_queue_wait: Optional[float] = None


@dataclass
class OverloadRunResult:
    params: OverloadParams
    protection: bool
    world: Any
    makespan: float
    goodput: float
    submitted: int
    completed: int
    tenants: List[TenantReport] = field(default_factory=list)
    admitted: int = 0
    rejected: int = 0
    shed: int = 0
    brownouts: int = 0
    brownout_seconds: float = 0.0
    backoffs: int = 0
    retries: int = 0
    retries_denied: int = 0
    give_ups: int = 0
    timeouts: int = 0
    alerts_fired: int = 0

    @property
    def fault_free(self) -> bool:
        return self.params.profile in FAULT_FREE_PROFILES


def _overload_work(fctx, seconds: float) -> float:
    fctx.handle.compute(seconds)
    return seconds


def run_overload(
    params: OverloadParams,
    protection: bool = True,
    config: Optional[OverloadConfig] = None,
    journal=None,
    replay_journal=None,
) -> OverloadRunResult:
    """One world, one seed, the full multi-tenant workload.

    ``journal`` attaches a write-ahead journal (for crash/replay tests);
    ``replay_journal`` replays journaled successes instead of executing
    them — the PR 4 resume path, used to prove shed counts reproduce.
    """
    plan = (
        None
        if params.profile in FAULT_FREE_PROFILES
        else build_profile(params.profile, params.seed)
    )
    if protection and config is None:
        config = overload_config(params)
    world = World(
        telemetry=True,
        streaming_metrics=True,
        faults=plan,
        retry_policy=RetryPolicy(seed=params.seed, **OVERLOAD_RETRY),
        # offline endpoints reject at dispatch (retryably), not at the
        # cloud's front door — outages must not raise out of submit
        offline_policy="queue",
        placement_policy="least-loaded",
        overload=config if protection else None,
    )
    world.enable_observability(rules=overload_slo_pack())
    if journal is not None:
        world.attach_journal(journal)

    clients: List[ComputeClient] = []
    reports: List[TenantReport] = []
    for index in range(params.tenants):
        login = f"tenant-{index}"
        user = world.register_user(login, {OVERLOAD_SITE: f"x-{login}"})
        client = ComputeClient(world.faas, user.client_id, user.client_secret)
        clients.append(client)
        reports.append(
            TenantReport(login=login, urn=client.identity_urn, hot=index == 0)
        )
    common.deploy_site_mep_pool(world, OVERLOAD_SITE, size=params.endpoints)
    if replay_journal is not None:
        from repro.durability import ReplayIndex

        world.faas.enable_replay(ReplayIndex(replay_journal))
    function_ids = [
        client.register_function(_overload_work, f"overload-work-{index}")
        for index, client in enumerate(clients)
    ]

    arrivals = generate_workload(params)
    futures = []

    def _submit(arrival: Arrival) -> None:
        futures.append(
            clients[arrival.tenant].submit(
                OVERLOAD_SITE,
                function_ids[arrival.tenant],
                arrival.duration,
                timeout=params.deadline,
                priority=arrival.priority,
            )
        )

    started_at = world.clock.now
    for arrival in arrivals:
        world.clock.call_after(arrival.at, lambda a=arrival: _submit(a))
    if plan is not None:
        world.arm_faults()
    world.clock.run_until_idle()
    end = world.clock.now
    world.slo.finish(end)
    makespan = max(end - started_at, 1e-9)

    by_urn = {report.urn: report for report in reports}
    for event in world.events.query("faas", "task.rejected"):
        report = by_urn.get(event.data.get("tenant", ""))
        if report is not None:
            report.rejected += 1
            if event.data.get("reason") == "shed":
                report.shed += 1

    total_first = 0
    for report in reports:
        tasks = world.faas.tasks_for(report.urn)
        report.submitted = len(tasks)
        waits = []
        for task in tasks:
            if task.state is TaskState.SUCCESS:
                report.completed += 1
                if task.attempts == 1:
                    report.first_attempt += 1
            if task.exception_text.startswith("TaskTimeout"):
                report.timeouts += 1
            wait = task.queue_latency
            if wait is not None:
                waits.append(wait)
        if waits:
            report.p95_queue_wait = percentile(waits, 95.0)
        total_first += report.first_attempt

    controller = world.faas.overload
    resilience = world.faas.resilience
    return OverloadRunResult(
        params=params,
        protection=protection,
        world=world,
        makespan=makespan,
        goodput=total_first / makespan,
        submitted=sum(r.submitted for r in reports),
        completed=sum(r.completed for r in reports),
        tenants=reports,
        admitted=(
            controller.stats.admitted
            if controller is not None
            else sum(r.submitted for r in reports)
        ),
        rejected=controller.stats.rejected if controller is not None else 0,
        shed=controller.stats.shed if controller is not None else 0,
        brownouts=controller.stats.brownouts if controller is not None else 0,
        brownout_seconds=(
            controller.brownout_seconds(end) if controller is not None else 0.0
        ),
        backoffs=controller.stats.backoffs if controller is not None else 0,
        retries=resilience.retries,
        retries_denied=(
            controller.stats.retries_denied if controller is not None else 0
        ),
        give_ups=resilience.give_ups,
        timeouts=resilience.timeouts,
        alerts_fired=world.slo.alerts_fired,
    )


@dataclass
class OverloadComparison:
    """Three same-seed runs: yardstick, collapse, and protection."""

    params: OverloadParams
    baseline: OverloadRunResult
    unprotected: OverloadRunResult
    protected: OverloadRunResult

    @property
    def goodput_ratio(self) -> float:
        if self.unprotected.goodput <= 0.0:
            return float("inf") if self.protected.goodput > 0.0 else 1.0
        return self.protected.goodput / self.unprotected.goodput

    def victim_p95_ratios(self) -> Dict[str, float]:
        """Protected-run p95 queue wait over fair-share baseline, per
        non-hot tenant (the acceptance criterion's fairness bound)."""
        ratios: Dict[str, float] = {}
        baseline = {r.login: r.p95_queue_wait for r in self.baseline.tenants}
        for report in self.protected.tenants:
            if report.hot:
                continue
            fair = baseline.get(report.login)
            if not fair or report.p95_queue_wait is None:
                continue
            ratios[report.login] = report.p95_queue_wait / fair
        return ratios

    def victims_within(self, factor: float = 1.5) -> bool:
        return all(r <= factor for r in self.victim_p95_ratios().values())


def run_overload_comparison(params: OverloadParams) -> OverloadComparison:
    baseline = run_overload(
        replace(params, hot_factor=1.0, profile="none"), protection=False
    )
    unprotected = run_overload(params, protection=False)
    protected = run_overload(params, protection=True)
    return OverloadComparison(params, baseline, unprotected, protected)


def run_suite_overload(
    spec,
    seed: int = 7,
    profile: str = "",
    policy: str = "least-loaded",
    pool_size: int = 4,
    params: Optional[OverloadParams] = None,
):
    """Run a declarative suite through FaaS with the protection plane armed.

    Thin entry point for ``repro suite run <file> --overload``: every
    suite instance is submitted as an async CORRECT task with the same
    admission/AIMD/shed tuning the synthetic experiment uses, sized by
    ``params`` (default :class:`OverloadParams` at the given seed).
    Returns the :class:`~repro.suites.sweep.SweepResult`.
    """
    from repro.suites import run_sweep

    # one tenant submits the whole suite, so don't split capacity four ways
    params = params or OverloadParams(seed=seed, tenants=1, endpoints=pool_size)
    return run_sweep(
        spec,
        seed=seed,
        profile=profile,
        policy=policy,
        pool_size=pool_size,
        overload=overload_config(params),
    )


def format_overload_report(comparison: OverloadComparison) -> str:
    """The goodput-under-overload figure, deterministic to the byte."""
    p = comparison.params
    off, on = comparison.unprotected, comparison.protected
    lines = [
        f"Overload Fig. 4 — {p.tenants} tenants, seed {p.seed}, "
        f"profile {p.profile!r}",
        f"pool: {p.endpoints}x {OVERLOAD_SITE!r}; mean task "
        f"{p.mean_seconds:g}s; deadline {p.deadline:g}s; "
        f"hot tenant at {p.hot_factor:g}x fair share",
        "",
        f"{'':28}{'protection-off':>16}{'protection-on':>16}",
    ]
    rows = [
        ("goodput (first-try/s)", f"{off.goodput:.4f}", f"{on.goodput:.4f}"),
        ("makespan (s)", f"{off.makespan:.1f}", f"{on.makespan:.1f}"),
        ("completed / submitted", f"{off.completed}/{off.submitted}",
         f"{on.completed}/{on.submitted}"),
        ("rejected (quota+aimd)", str(off.rejected - off.shed),
         str(on.rejected - on.shed)),
        ("shed (priority)", str(off.shed), str(on.shed)),
        ("retries / denied", f"{off.retries}/{off.retries_denied}",
         f"{on.retries}/{on.retries_denied}"),
        ("give-ups", str(off.give_ups), str(on.give_ups)),
        ("timeouts", str(off.timeouts), str(on.timeouts)),
        ("aimd backoffs", str(off.backoffs), str(on.backoffs)),
        ("brownout (s)", f"{off.brownout_seconds:.1f}",
         f"{on.brownout_seconds:.1f}"),
        ("alerts fired", str(off.alerts_fired), str(on.alerts_fired)),
    ]
    for label, left, right in rows:
        lines.append(f"{label:28}{left:>16}{right:>16}")
    lines.append("")
    lines.append(
        f"{'tenant':12}{'role':>8}{'fair p95':>12}{'off p95':>12}{'on p95':>12}"
    )
    baseline_p95 = {
        r.login: r.p95_queue_wait for r in comparison.baseline.tenants
    }

    def _fmt(value: Optional[float]) -> str:
        return "-" if value is None else f"{value:.1f}"

    off_p95 = {r.login: r.p95_queue_wait for r in off.tenants}
    for report in on.tenants:
        lines.append(
            f"{report.login:12}{'hot' if report.hot else 'fair':>8}"
            f"{_fmt(baseline_p95.get(report.login)):>12}"
            f"{_fmt(off_p95.get(report.login)):>12}"
            f"{_fmt(report.p95_queue_wait):>12}"
        )
    lines.append("")
    ratio = comparison.goodput_ratio
    ratio_text = "inf" if ratio == float("inf") else f"{ratio:.2f}"
    beats = "yes" if ratio > 1.0 else "no"
    lines.append(f"goodput ratio (on/off): {ratio_text}x")
    lines.append(
        f"protection-on goodput strictly beats protection-off: {beats}"
    )
    lines.append(
        "victim p95 within 1.5x fair baseline: "
        f"{'yes' if comparison.victims_within(1.5) else 'no'}"
    )
    lines.append(f"sheds under protection: {on.shed}")
    return "\n".join(lines)
