"""§6.3: reproducing the KaMPIng artifact evaluation with CORRECT.

The KaMPIng artifacts are scripts inside a published container image; the
workflow has one step per artifact, each executed on a Chameleon instance
through CORRECT (the paper started a MEP inside the container; we run
each artifact with ``docker run <image> <script>``, which our shell
executes in-container). Outputs are stored as workflow artifacts per
step.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List

from repro.apps.kamping.artifacts import (
    ARTIFACT_COMMANDS,
    KAMPING_IMAGE_REFERENCE,
    kamping_image,
    register_artifact_commands,
)
from repro.core.workflow_builder import WorkflowBuilder
from repro.experiments import common
from repro.world import World

REPO_SLUG = "kamping-site/kamping-reproducibility"
WORKFLOW_PATH = ".github/workflows/ae.yml"
SITE = "chameleon"


@dataclass
class Exp63Result:
    run: object
    artifact_outputs: Dict[str, str]  # artifact name -> stdout
    # the world that produced the run, for telemetry export (trace CLI)
    world: object = None

    @property
    def all_passed(self) -> bool:
        return self.run.status == "success" and all(
            "verdict: PASS" in out or "passed" in out
            for out in self.artifact_outputs.values()
        )

    def verdicts(self) -> Dict[str, bool]:
        return {
            name: ("verdict: PASS" in out or "passed" in out)
            for name, out in self.artifact_outputs.items()
        }


def repo_files() -> Dict[str, str]:
    return {
        "README.md": (
            "# KaMPIng reproducibility\n\nArtifact scripts are baked into "
            f"the container `{KAMPING_IMAGE_REFERENCE}`; run each via the "
            "workflow.\n"
        ),
        "scripts/run-all.sh": "\n".join(
            f"docker run {KAMPING_IMAGE_REFERENCE} {name}"
            for name in sorted(ARTIFACT_COMMANDS)
        )
        + "\n",
    }


def run_exp63(telemetry: bool = True) -> Exp63Result:
    """Execute the §6.3 experiment; returns per-artifact outputs."""
    world = World(telemetry=telemetry)
    user = world.register_user("vhayot", {SITE: "cc"})
    # publish the AE container and wire its commands into the shell layer
    world.container_registry.push(kamping_image())
    register_artifact_commands(world.services.image_commands)

    mep = common.deploy_site_mep(world, SITE)

    steps: List[dict] = [
        WorkflowBuilder.correct_step(
            name=f"Artifact {name}",
            step_id=name,
            shell_cmd=f"docker run {KAMPING_IMAGE_REFERENCE} {name}",
            artifact_prefix=f"ae-{name}",
            clone="false",
        )
        for name in sorted(ARTIFACT_COMMANDS)
    ]
    builder = WorkflowBuilder("KaMPIng artifact evaluation").on_push()
    builder.add_job(
        "reproduce",
        steps=steps,
        environment="chameleon",
        env={"ENDPOINT_UUID": mep.endpoint_id},
    )
    common.create_repo_with_workflow(
        world,
        REPO_SLUG,
        owner=user,
        files=repo_files(),
        workflow_path=WORKFLOW_PATH,
        workflow_text=builder.render(),
        environments={
            "chameleon": {
                "GLOBUS_ID": user.client_id,
                "GLOBUS_SECRET": user.client_secret,
            }
        },
    )
    run = world.engine.runs[-1]
    common.approve_all(world, run, user.login)

    outputs: Dict[str, str] = {}
    for name in sorted(ARTIFACT_COMMANDS):
        outputs[name] = world.hub.artifacts.download(
            run.run_id, f"ae-{name}-stdout"
        ).content
    return Exp63Result(run=run, artifact_outputs=outputs, world=world)
