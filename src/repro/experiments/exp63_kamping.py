"""§6.3: reproducing the KaMPIng artifact evaluation with CORRECT.

The KaMPIng artifacts are scripts inside a published container image; the
workflow has one step per artifact, each executed on a Chameleon instance
through CORRECT (the paper started a MEP inside the container; we run
each artifact with ``docker run <image> <script>``, which our shell
executes in-container). Outputs are stored as workflow artifacts per
step.

The experiment is declared in ``suites/exp63.yaml`` — the suite's
``containers:`` block publishes the image and registers its commands —
and this module keeps the historical entry point, result shape, and the
repo-files factory the suite references.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict

from repro.apps.kamping.artifacts import (
    ARTIFACT_COMMANDS,
    KAMPING_IMAGE_REFERENCE,
)
from repro.suites import run_suite

REPO_SLUG = "kamping-site/kamping-reproducibility"
WORKFLOW_PATH = ".github/workflows/ae.yml"
SITE = "chameleon"
SUITE = "exp63"


@dataclass
class Exp63Result:
    run: object
    artifact_outputs: Dict[str, str]  # artifact name -> stdout
    # the world that produced the run, for telemetry export (trace CLI)
    world: object = None

    @property
    def all_passed(self) -> bool:
        return self.run.status == "success" and all(
            "verdict: PASS" in out or "passed" in out
            for out in self.artifact_outputs.values()
        )

    def verdicts(self) -> Dict[str, bool]:
        return {
            name: ("verdict: PASS" in out or "passed" in out)
            for name, out in self.artifact_outputs.items()
        }


def repo_files() -> Dict[str, str]:
    return {
        "README.md": (
            "# KaMPIng reproducibility\n\nArtifact scripts are baked into "
            f"the container `{KAMPING_IMAGE_REFERENCE}`; run each via the "
            "workflow.\n"
        ),
        "scripts/run-all.sh": "\n".join(
            f"docker run {KAMPING_IMAGE_REFERENCE} {name}"
            for name in sorted(ARTIFACT_COMMANDS)
        )
        + "\n",
    }


def run_exp63(telemetry: bool = True, suite=SUITE) -> Exp63Result:
    """Execute the §6.3 experiment; returns per-artifact outputs."""
    return exp63_result_from(run_suite(suite, telemetry=telemetry))


def exp63_result_from(suite_run) -> Exp63Result:
    """Adapt a completed suite run into the historical result shape."""
    outputs: Dict[str, str] = {
        str(result.instance.variables["artifact"]): result.stdout
        for result in suite_run.results
    }
    return Exp63Result(
        run=suite_run.run, artifact_outputs=outputs, world=suite_run.world
    )
