"""Fig. 4: ParslDock test-suite runtimes across three sites (§6.1).

One workflow, three environment-gated jobs — Chameleon CHI@TACC, TAMU
FASTER, SDSC Expanse — each invoking CORRECT with ``shell_cmd: pytest``
in the site's ``docking`` conda environment. FASTER and Expanse block
outbound internet on compute nodes, so their MEP templates clone on the
login node and run tests on a SLURM pilot; Chameleon runs everything on
the instance itself.

The result object carries per-site, per-test durations parsed from the
stdout artifacts — the series plotted in Fig. 4.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Tuple

from repro.apps.parsldock import suite as parsldock_suite
from repro.core.reporting import parse_pytest_stdout
from repro.core.workflow_builder import WorkflowBuilder
from repro.experiments import common
from repro.world import World

FIG4_SITES = ("chameleon", "faster", "expanse")
REPO_SLUG = "parsl/parsl-docking-tutorial"
WORKFLOW_PATH = ".github/workflows/correct.yml"


@dataclass
class Fig4Result:
    """Per-site test durations plus run bookkeeping."""

    run: object
    durations: Dict[str, Dict[str, float]]  # site -> test -> seconds
    outcomes: Dict[str, Dict[str, str]]  # site -> test -> PASSED/...
    queue_waits: Dict[str, float] = field(default_factory=dict)
    # the world that produced the run, for telemetry export (trace CLI)
    world: object = None

    def tests(self) -> List[str]:
        any_site = next(iter(self.durations.values()))
        return list(any_site)

    def fastest_site_per_test(self) -> Dict[str, str]:
        out: Dict[str, str] = {}
        for test in self.tests():
            out[test] = min(
                self.durations, key=lambda site: self.durations[site][test]
            )
        return out

    def all_passed(self) -> bool:
        return all(
            outcome == "PASSED"
            for site_outcomes in self.outcomes.values()
            for outcome in site_outcomes.values()
        )


def build_world(
    sites: Tuple[str, ...] = FIG4_SITES,
    telemetry: bool = True,
    span_sampler=None,
    world_setup=None,
) -> Tuple[World, object, Dict[str, str]]:
    """Set up the §6.1 testbed; returns (world, user, endpoint ids).

    ``world_setup(world)``, if given, runs right after construction
    (e.g. to attach the observability plane before any event flows).
    """
    world = World(telemetry=telemetry, span_sampler=span_sampler)
    if world_setup is not None:
        world_setup(world)
    accounts = {site: "x-vhayot" for site in sites}
    user = world.register_user("vhayot", accounts)
    endpoints: Dict[str, str] = {}
    for site_name in sites:
        common.provision_user_site(
            world, user, site_name, accounts[site_name],
            conda_env="docking", stack=common.DOCKING_STACK,
        )
        mep = common.deploy_site_mep(world, site_name)
        endpoints[site_name] = mep.endpoint_id
    return world, user, endpoints


def build_workflow(endpoints: Dict[str, str]) -> str:
    """One job per site, each environment-gated, each running pytest."""
    builder = WorkflowBuilder("ParslDock multi-site CI").on_push()
    for site_name, endpoint_id in endpoints.items():
        step = WorkflowBuilder.correct_step(
            name=f"Run pytest on {site_name}",
            step_id=f"pytest-{site_name}",
            shell_cmd="pytest",
            conda_env="docking",
            artifact_prefix=f"correct-{site_name}",
        )
        builder.add_job(
            f"test-{site_name}",
            steps=[step],
            environment=f"hpc-{site_name}",
            env={"ENDPOINT_UUID": endpoint_id},
        )
    return builder.render()


@dataclass
class Fig4OverlapResult:
    """§6.1 with the deferred task lifecycle: overlap across sites.

    ``per_site_serialized`` holds each site's run duration when its job
    executes alone (the seed's blocking behaviour); ``makespan`` is the
    wall-clock of the three-site run with concurrent jobs. Overlap means
    ``makespan < serialized_total`` strictly: FASTER's pilot queue wait
    now coexists with Expanse's test execution in virtual time.
    """

    per_site_serialized: Dict[str, float]
    makespan: float
    concurrent_run: object
    durations: Dict[str, Dict[str, float]]  # site -> test -> seconds
    # the world of the concurrent run, for telemetry export
    world: object = None

    @property
    def serialized_total(self) -> float:
        return sum(self.per_site_serialized.values())

    @property
    def speedup(self) -> float:
        return self.serialized_total / self.makespan if self.makespan else 0.0


def _run_gate_free(
    sites: Tuple[str, ...], concurrent_jobs: bool, telemetry: bool = True
) -> Tuple[World, object, Dict[str, str], float]:
    """One ParslDock run with repo-level secrets (no approval gates).

    Returns (world, run, endpoints, duration) where duration covers
    trigger to completion — the part the task lifecycle changes; site
    provisioning beforehand is excluded from the comparison.
    """
    world = World(concurrent_jobs=concurrent_jobs, telemetry=telemetry)
    accounts = {site: "x-vhayot" for site in sites}
    user = world.register_user("vhayot", accounts)
    endpoints: Dict[str, str] = {}
    for site_name in sites:
        common.provision_user_site(
            world, user, site_name, accounts[site_name],
            conda_env="docking", stack=common.DOCKING_STACK,
        )
        mep = common.deploy_site_mep(world, site_name)
        endpoints[site_name] = mep.endpoint_id

    builder = WorkflowBuilder("ParslDock multi-site CI (ungated)").on_push()
    for site_name, endpoint_id in endpoints.items():
        step = WorkflowBuilder.correct_step(
            name=f"Run pytest on {site_name}",
            step_id=f"pytest-{site_name}",
            shell_cmd="pytest",
            conda_env="docking",
            artifact_prefix=f"correct-{site_name}",
        )
        builder.add_job(
            f"test-{site_name}",
            steps=[step],
            env={"ENDPOINT_UUID": endpoint_id},
        )

    hosted = world.hub.create_repo(REPO_SLUG, owner=user.login)
    hosted.secrets.set("GLOBUS_ID", user.client_id, set_by=user.login)
    hosted.secrets.set("GLOBUS_SECRET", user.client_secret, set_by=user.login)
    all_files = dict(parsldock_suite.repo_files())
    all_files[WORKFLOW_PATH] = builder.render()
    started_at = world.clock.now
    world.hub.push_commit(
        REPO_SLUG, author=user.login,
        message="Initial commit with CI", files=all_files,
    )
    run = world.engine.runs[-1]
    if run.status != "success":
        raise RuntimeError(
            f"ungated ParslDock run ended {run.status}; log:\n"
            + "\n".join(run.log)
        )
    return world, run, endpoints, world.clock.now - started_at


def run_fig4_overlap(
    sites: Tuple[str, ...] = FIG4_SITES, telemetry: bool = True
) -> Fig4OverlapResult:
    """Demonstrate cross-site overlap from the deferred task lifecycle.

    Each site's job is first run alone (serialized baseline), then all
    sites run in one world with ``concurrent_jobs`` enabled. Per-test
    durations come from the simulated pytest stdout, so the Fig. 4
    series are identical in both modes — only the *makespan* shrinks.
    """
    per_site: Dict[str, float] = {}
    for site_name in sites:
        _, _, _, duration = _run_gate_free(
            (site_name,), concurrent_jobs=False, telemetry=telemetry
        )
        per_site[site_name] = duration

    world, run, _, makespan = _run_gate_free(
        sites, concurrent_jobs=True, telemetry=telemetry
    )
    durations: Dict[str, Dict[str, float]] = {}
    for site_name in sites:
        artifact = world.hub.artifacts.download(
            run.run_id, f"correct-{site_name}-stdout"
        )
        parsed = parse_pytest_stdout(artifact.content)
        durations[site_name] = {name: d for name, (_, d) in parsed.items()}
    return Fig4OverlapResult(
        per_site_serialized=per_site,
        makespan=makespan,
        concurrent_run=run,
        durations=durations,
        world=world,
    )


def run_fig4(
    sites: Tuple[str, ...] = FIG4_SITES,
    telemetry: bool = True,
    span_sampler=None,
    world_setup=None,
) -> Fig4Result:
    """Execute the full §6.1 experiment; returns the Fig. 4 series."""
    world, user, endpoints = build_world(
        sites, telemetry=telemetry, span_sampler=span_sampler,
        world_setup=world_setup,
    )
    workflow_text = build_workflow(endpoints)
    environments = {
        f"hpc-{site}": {
            "GLOBUS_ID": user.client_id,
            "GLOBUS_SECRET": user.client_secret,
        }
        for site in sites
    }
    common.create_repo_with_workflow(
        world,
        REPO_SLUG,
        owner=user,
        files=parsldock_suite.repo_files(),
        workflow_path=WORKFLOW_PATH,
        workflow_text=workflow_text,
        environments=environments,
    )
    run = world.engine.runs[-1]
    common.approve_all(world, run, user.login)
    if run.status != "success":
        raise RuntimeError(
            f"Fig. 4 workflow ended {run.status}; log:\n" + "\n".join(run.log)
        )

    durations: Dict[str, Dict[str, float]] = {}
    outcomes: Dict[str, Dict[str, str]] = {}
    queue_waits: Dict[str, float] = {}
    for site_name in sites:
        artifact = world.hub.artifacts.download(
            run.run_id, f"correct-{site_name}-stdout"
        )
        parsed = parse_pytest_stdout(artifact.content)
        durations[site_name] = {name: d for name, (_, d) in parsed.items()}
        outcomes[site_name] = {name: o for name, (o, _) in parsed.items()}
        endpoint = world.faas.endpoint(endpoints[site_name])
        stats: Dict[str, float] = {}
        for uep in endpoint._ueps.values():
            for key, value in uep.stats().items():
                stats[key] = stats.get(key, 0.0) + value
        queue_waits[site_name] = stats.get("compute_queue_wait", 0.0)
    return Fig4Result(
        run=run, durations=durations, outcomes=outcomes,
        queue_waits=queue_waits, world=world,
    )
