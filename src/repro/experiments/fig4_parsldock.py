"""Fig. 4: ParslDock test-suite runtimes across three sites (§6.1).

One workflow, three environment-gated jobs — Chameleon CHI@TACC, TAMU
FASTER, SDSC Expanse — each invoking CORRECT with ``shell_cmd: pytest``
in the site's ``docking`` conda environment. FASTER and Expanse block
outbound internet on compute nodes, so their MEP templates clone on the
login node and run tests on a SLURM pilot; Chameleon runs everything on
the instance itself.

The experiment is declared in ``suites/fig4.yaml`` and executed through
the suite framework (:mod:`repro.suites`); this module is the thin
wrapper that keeps the historical entry points and result shapes. The
suite path replays the legacy world-operation order exactly, so the
virtual-time trace — and therefore every report byte — is unchanged.

The result object carries per-site, per-test durations parsed from the
stdout artifacts — the series plotted in Fig. 4.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Tuple

from repro.core.reporting import parse_pytest_stdout
from repro.suites import SuiteRun, run_suite

FIG4_SITES = ("chameleon", "faster", "expanse")
REPO_SLUG = "parsl/parsl-docking-tutorial"
WORKFLOW_PATH = ".github/workflows/correct.yml"
SUITE = "fig4"


@dataclass
class Fig4Result:
    """Per-site test durations plus run bookkeeping."""

    run: object
    durations: Dict[str, Dict[str, float]]  # site -> test -> seconds
    outcomes: Dict[str, Dict[str, str]]  # site -> test -> PASSED/...
    queue_waits: Dict[str, float] = field(default_factory=dict)
    # the world that produced the run, for telemetry export (trace CLI)
    world: object = None

    def tests(self) -> List[str]:
        any_site = next(iter(self.durations.values()))
        return list(any_site)

    def fastest_site_per_test(self) -> Dict[str, str]:
        out: Dict[str, str] = {}
        for test in self.tests():
            out[test] = min(
                self.durations, key=lambda site: self.durations[site][test]
            )
        return out

    def all_passed(self) -> bool:
        return all(
            outcome == "PASSED"
            for site_outcomes in self.outcomes.values()
            for outcome in site_outcomes.values()
        )


def fig4_result_from(suite_run: SuiteRun) -> Fig4Result:
    """Assemble the historical Fig. 4 result shape from a suite run."""
    durations: Dict[str, Dict[str, float]] = {}
    outcomes: Dict[str, Dict[str, str]] = {}
    queue_waits: Dict[str, float] = {}
    world = suite_run.world
    for result in suite_run.results:
        if result.status != "ok":
            continue
        site_name = str(result.instance.variables["site"])
        parsed = result.parsed or {}
        durations[site_name] = {name: d for name, (_, d) in parsed.items()}
        outcomes[site_name] = {name: o for name, (o, _) in parsed.items()}
        endpoint = world.faas.endpoint(suite_run.endpoints[site_name])
        stats: Dict[str, float] = {}
        for uep in endpoint._ueps.values():
            for key, value in uep.stats().items():
                stats[key] = stats.get(key, 0.0) + value
        queue_waits[site_name] = stats.get("compute_queue_wait", 0.0)
    return Fig4Result(
        run=suite_run.run, durations=durations, outcomes=outcomes,
        queue_waits=queue_waits, world=world,
    )


@dataclass
class Fig4OverlapResult:
    """§6.1 with the deferred task lifecycle: overlap across sites.

    ``per_site_serialized`` holds each site's run duration when its job
    executes alone (the seed's blocking behaviour); ``makespan`` is the
    wall-clock of the three-site run with concurrent jobs. Overlap means
    ``makespan < serialized_total`` strictly: FASTER's pilot queue wait
    now coexists with Expanse's test execution in virtual time.
    """

    per_site_serialized: Dict[str, float]
    makespan: float
    concurrent_run: object
    durations: Dict[str, Dict[str, float]]  # site -> test -> seconds
    # the world of the concurrent run, for telemetry export
    world: object = None

    @property
    def serialized_total(self) -> float:
        return sum(self.per_site_serialized.values())

    @property
    def speedup(self) -> float:
        return self.serialized_total / self.makespan if self.makespan else 0.0


def _run_gate_free(
    sites: Tuple[str, ...], concurrent_jobs: bool, telemetry: bool = True
) -> SuiteRun:
    """One ParslDock suite run with repo-level secrets (no gates).

    The returned run's ``makespan`` covers trigger to completion — the
    part the task lifecycle changes; site provisioning beforehand is
    excluded from the comparison.
    """
    return run_suite(
        SUITE,
        overrides={"site": list(sites)},
        telemetry=telemetry,
        concurrent_jobs=concurrent_jobs,
        gated=False,
        name_override="ParslDock multi-site CI (ungated)",
        strict=True,
    )


def run_fig4_overlap(
    sites: Tuple[str, ...] = FIG4_SITES, telemetry: bool = True
) -> Fig4OverlapResult:
    """Demonstrate cross-site overlap from the deferred task lifecycle.

    Each site's job is first run alone (serialized baseline), then all
    sites run in one world with ``concurrent_jobs`` enabled. Per-test
    durations come from the simulated pytest stdout, so the Fig. 4
    series are identical in both modes — only the *makespan* shrinks.
    """
    per_site: Dict[str, float] = {}
    for site_name in sites:
        solo = _run_gate_free(
            (site_name,), concurrent_jobs=False, telemetry=telemetry
        )
        per_site[site_name] = solo.makespan

    concurrent = _run_gate_free(
        sites, concurrent_jobs=True, telemetry=telemetry
    )
    durations: Dict[str, Dict[str, float]] = {}
    for result in concurrent.results:
        site_name = str(result.instance.variables["site"])
        parsed = result.parsed or {}
        durations[site_name] = {name: d for name, (_, d) in parsed.items()}
    return Fig4OverlapResult(
        per_site_serialized=per_site,
        makespan=concurrent.makespan,
        concurrent_run=concurrent.run,
        durations=durations,
        world=concurrent.world,
    )


def run_fig4(
    sites: Tuple[str, ...] = FIG4_SITES,
    telemetry: bool = True,
    span_sampler=None,
    world_setup=None,
    suite=SUITE,
) -> Fig4Result:
    """Execute the full §6.1 experiment; returns the Fig. 4 series.

    ``world_setup(world)``, if given, runs right after construction
    (e.g. to attach the observability plane before any event flows).
    ``suite`` may name any compatible suite file — the experiment is
    just ``suites/fig4.yaml`` run with gates on.
    """
    suite_run = run_suite(
        suite,
        overrides={"site": list(sites)},
        telemetry=telemetry,
        span_sampler=span_sampler,
        world_setup=world_setup,
        strict=True,
    )
    return fig4_result_from(suite_run)
