"""Globus-Auth-like authentication and authorization.

Models the pieces CORRECT's security story depends on (§5.1–§5.2):

* identity providers and identities,
* confidential clients (client id + secret) owned by a single user,
* scoped bearer tokens with expiry,
* site-local identity mapping (Globus identity → local account),
* high-assurance policies (required identity provider, session enforcement).
"""

from repro.auth.identity import Identity, IdentityProvider, IdentityMap
from repro.auth.oauth import AuthService, Client, Token
from repro.auth.policies import HighAssurancePolicy

__all__ = [
    "Identity",
    "IdentityProvider",
    "IdentityMap",
    "AuthService",
    "Client",
    "Token",
    "HighAssurancePolicy",
]
