"""Confidential clients, scoped bearer tokens, and the auth service."""

from __future__ import annotations

import hashlib
from dataclasses import dataclass
from typing import Dict, FrozenSet, Iterable, List, Optional

from repro.auth.identity import Identity
from repro.errors import InsufficientScope, InvalidCredentials, TokenExpired
from repro.util.clock import SimClock
from repro.util.ids import IdFactory

# Default bearer-token lifetime (Globus tokens live ~48h).
DEFAULT_TOKEN_LIFETIME = 48 * 3600.0

# Scope names used by the FaaS platform.
SCOPE_COMPUTE = "compute.all"
SCOPE_TRANSFER = "transfer.all"


@dataclass
class Client:
    """A confidential OAuth client owned by exactly one identity.

    In the paper, Globus Compute client credentials are stored as GitHub
    environment secrets; the *single owner* property is what lets a sole
    environment reviewer vouch for every run using the secret (§5.2).
    """

    client_id: str
    secret_hash: str
    owner: Identity
    name: str = ""

    def check_secret(self, secret: str) -> bool:
        return _hash_secret(secret) == self.secret_hash


@dataclass(frozen=True)
class Token:
    """A scoped bearer token."""

    value: str
    identity: Identity
    scopes: FrozenSet[str]
    issued_at: float
    expires_at: float

    def is_expired(self, now: float) -> bool:
        return now >= self.expires_at


def _hash_secret(secret: str) -> str:
    return hashlib.sha256(secret.encode("utf-8")).hexdigest()


class AuthService:
    """Issues client credentials and validates bearer tokens."""

    def __init__(self, clock: SimClock) -> None:
        self._clock = clock
        self._clients: Dict[str, Client] = {}
        self._tokens: Dict[str, Token] = {}
        self._client_ids = IdFactory("client")
        self._token_ids = IdFactory("token")
        self._revoked: set = set()

    # -- client management ----------------------------------------------------
    def create_client(self, owner: Identity, name: str = "") -> tuple:
        """Register a confidential client; returns (client_id, client_secret).

        The plaintext secret is returned exactly once, like real OAuth
        dashboards; only its hash is stored.
        """
        client_id = self._client_ids.uuid()
        secret = f"secret-{self._client_ids.count:06d}-{client_id[:8]}"
        self._clients[client_id] = Client(
            client_id=client_id,
            secret_hash=_hash_secret(secret),
            owner=owner,
            name=name,
        )
        return client_id, secret

    def client_owner(self, client_id: str) -> Identity:
        client = self._clients.get(client_id)
        if client is None:
            raise InvalidCredentials(f"unknown client {client_id}")
        return client.owner

    # -- token lifecycle --------------------------------------------------------
    def client_credentials_grant(
        self,
        client_id: str,
        client_secret: str,
        scopes: Iterable[str] = (SCOPE_COMPUTE,),
        lifetime: float = DEFAULT_TOKEN_LIFETIME,
    ) -> Token:
        """OAuth2 client-credentials flow: secret in, bearer token out."""
        client = self._clients.get(client_id)
        if client is None or not client.check_secret(client_secret):
            raise InvalidCredentials("client id/secret mismatch")
        now = self._clock.now
        token = Token(
            value=self._token_ids.uuid(),
            identity=client.owner,
            scopes=frozenset(scopes),
            issued_at=now,
            expires_at=now + lifetime,
        )
        self._tokens[token.value] = token
        return token

    def introspect(self, token_value: str, required_scope: Optional[str] = None) -> Token:
        """Validate a bearer token; returns it or raises."""
        token = self._tokens.get(token_value)
        if token is None or token_value in self._revoked:
            raise InvalidCredentials("unknown or revoked token")
        if token.is_expired(self._clock.now):
            raise TokenExpired(
                f"token expired at t={token.expires_at:.0f}, now {self._clock.now:.0f}"
            )
        if required_scope is not None and required_scope not in token.scopes:
            raise InsufficientScope(
                f"token lacks scope {required_scope!r} (has {sorted(token.scopes)})"
            )
        return token

    def revoke(self, token_value: str) -> None:
        self._revoked.add(token_value)

    def tokens_for(self, identity: Identity) -> List[Token]:
        return [t for t in self._tokens.values() if t.identity == identity]
