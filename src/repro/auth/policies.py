"""High-assurance policies for multi-user endpoints.

The paper (§5.1) notes MEPs can require specific identity providers,
enforce session recency, and restrict executable functions. The function
allow-list lives on the endpoint itself (:mod:`repro.faas.endpoint`); this
module models the identity-level policies.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import FrozenSet, Optional

from repro.auth.identity import Identity
from repro.auth.oauth import Token
from repro.errors import PolicyViolation


@dataclass
class HighAssurancePolicy:
    """Identity policy evaluated before a MEP forks a user endpoint.

    Attributes
    ----------
    required_providers:
        If non-empty, the authenticated identity's provider domain must be
        one of these.
    max_session_age:
        If set, the token must have been issued within this many seconds —
        modeling Globus session enforcement.
    """

    required_providers: FrozenSet[str] = frozenset()
    max_session_age: Optional[float] = None

    def check(self, token: Token, now: float) -> None:
        """Raise :class:`PolicyViolation` if the token fails the policy."""
        identity = token.identity
        if self.required_providers and identity.provider not in self.required_providers:
            raise PolicyViolation(
                f"identity provider {identity.provider!r} not in "
                f"{sorted(self.required_providers)}"
            )
        if self.max_session_age is not None:
            age = now - token.issued_at
            if age > self.max_session_age:
                raise PolicyViolation(
                    f"session age {age:.0f}s exceeds policy maximum "
                    f"{self.max_session_age:.0f}s"
                )

    @classmethod
    def permissive(cls) -> "HighAssurancePolicy":
        """A policy that accepts everything (the default for test sites)."""
        return cls()
