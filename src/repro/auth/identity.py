"""Identities, identity providers, and site-local identity mapping."""

from __future__ import annotations

import functools
from dataclasses import dataclass
from typing import Dict, List, Optional

from repro.errors import IdentityMappingError
from repro.util.ids import deterministic_uuid


@dataclass(frozen=True)
class Identity:
    """A federated identity: ``user@provider`` with a stable UUID.

    ``urn`` and ``uuid`` are cached: identity resolution sits on the
    per-task dispatch path (MEP identity mapping, audit records), and the
    values are pure functions of the frozen fields.
    """

    username: str
    provider: str

    @functools.cached_property
    def urn(self) -> str:
        return f"{self.username}@{self.provider}"

    @functools.cached_property
    def uuid(self) -> str:
        return deterministic_uuid("identity", self.urn)


class IdentityProvider:
    """An institutional identity provider (e.g. a university IdP)."""

    def __init__(self, domain: str) -> None:
        self.domain = domain
        self._users: Dict[str, Identity] = {}

    def register(self, username: str) -> Identity:
        identity = Identity(username, self.domain)
        self._users[username] = identity
        return identity

    def lookup(self, username: str) -> Optional[Identity]:
        return self._users.get(username)

    def identities(self) -> List[Identity]:
        return list(self._users.values())


class IdentityMap:
    """Site-local mapping from federated identities to local accounts.

    This is the mechanism multi-user endpoints use to decide which local
    account a user endpoint runs as — the paper's security requirement (i):
    "identity used to run the code matches the user who intended to launch
    it" (§4.4.1, §5.1).
    """

    def __init__(self, site_name: str) -> None:
        self.site_name = site_name
        self._map: Dict[str, str] = {}

    def add(self, identity: Identity, local_account: str) -> None:
        self._map[identity.uuid] = local_account

    def remove(self, identity: Identity) -> None:
        self._map.pop(identity.uuid, None)

    def resolve(self, identity: Identity) -> str:
        """Local account for ``identity``; raises if unmapped."""
        try:
            return self._map[identity.uuid]
        except KeyError:
            raise IdentityMappingError(
                f"{identity.urn} has no local account at {self.site_name}"
            ) from None

    def is_mapped(self, identity: Identity) -> bool:
        return identity.uuid in self._map

    def accounts(self) -> List[str]:
        return sorted(set(self._map.values()))
