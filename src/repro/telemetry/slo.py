"""Declarative SLOs and multi-window burn-rate alerting.

An :class:`Objective` names a measurement over a rolling window — "p95
dispatch queue wait" or "failed attempts / total attempts" — and the
threshold that counts as meeting it. An :class:`AlertRule` pairs one
objective with two windows (the SRE fast/slow burn-rate pattern): the
*fast* window makes the alert react within minutes of virtual time, the
*slow* window keeps one noisy bucket from paging. The rule fires only
when the burn ratio (measured / threshold) exceeds the rule's
``burn_threshold`` in **both** windows, and resolves when either drops
back under.

The :class:`SLOEngine` is a :class:`~repro.telemetry.timeseries.
TimeSeriesStore` observer: it evaluates every rule exactly at bucket
boundaries (virtual times that depend only on the event stream, never
on wall clock), and state transitions are emitted as ordinary
``alert.fired`` / ``alert.resolved`` events from source ``slo`` — so
alerts land in the journal, in provenance crates, and in Chrome traces
with zero extra plumbing. Same seed → same event stream → identical
alert timeline.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Tuple

from repro.telemetry.timeseries import TimeSeriesStore
from repro.util.events import EventLog


@dataclass(frozen=True)
class Objective:
    """One service-level objective over a rolling window.

    ``kind="latency"`` measures ``percentile`` of the quantile series
    ``series`` and is met while the value stays **under** ``threshold``
    (virtual seconds). ``kind="ratio"`` measures the counter sum of
    ``numerator`` over the counter sum of ``denominator`` (an error
    rate in [0, 1]) and is met while it stays under ``threshold``.
    """

    name: str
    kind: str  # "latency" | "ratio"
    threshold: float
    series: str = ""
    percentile: float = 95.0
    numerator: str = ""
    denominator: str = ""
    labels: Tuple[Tuple[str, str], ...] = ()

    def __post_init__(self) -> None:
        if self.kind not in ("latency", "ratio"):
            raise ValueError(f"unknown objective kind: {self.kind!r}")
        if self.threshold <= 0:
            raise ValueError("objective threshold must be positive")
        if self.kind == "latency" and not self.series:
            raise ValueError("latency objective needs a series name")
        if self.kind == "ratio" and not (self.numerator and self.denominator):
            raise ValueError("ratio objective needs numerator + denominator")

    def measure(
        self, store: TimeSeriesStore, until: float, window: float
    ) -> Optional[float]:
        """The measured value over ``[until-window, until)``.

        None means "no signal" (no series yet, or an empty window) —
        distinct from 0.0, so silence never fires or resolves an alert
        by itself.
        """
        labels = dict(self.labels)
        if self.kind == "latency":
            series = store.get(self.series, **labels)
            if series is None:
                return None
            merged = series.merged_over(until, window)
            if not merged.count:
                return None
            return merged.percentile(self.percentile)
        num = store.get(self.numerator, **labels)
        den = store.get(self.denominator, **labels)
        if den is None:
            return None
        total = den.sum_over(until, window)
        if total <= 0:
            return None
        bad = num.sum_over(until, window) if num is not None else 0.0
        return bad / total

    def burn(
        self, store: TimeSeriesStore, until: float, window: float
    ) -> Optional[float]:
        """Measured value as a fraction of the threshold (1.0 = at SLO)."""
        value = self.measure(store, until, window)
        if value is None:
            return None
        return value / self.threshold


@dataclass(frozen=True)
class AlertRule:
    """Fast+slow burn-rate rule over one objective.

    Fires when ``burn >= burn_threshold`` in *both* windows; resolves
    when either window's burn drops below (or loses signal). Windows
    are virtual seconds and are evaluated only at bucket boundaries,
    so they should be multiples of the store's bucket width.
    """

    name: str
    objective: Objective
    fast_window: float
    slow_window: float
    burn_threshold: float = 1.0

    def __post_init__(self) -> None:
        if self.fast_window <= 0 or self.slow_window < self.fast_window:
            raise ValueError(
                "alert rule needs 0 < fast_window <= slow_window"
            )


@dataclass
class AlertState:
    """Mutable firing state for one rule."""

    rule: AlertRule
    firing: bool = False
    fired_at: Optional[float] = None
    fire_count: int = 0
    last_burn_fast: Optional[float] = None
    last_burn_slow: Optional[float] = None


@dataclass
class SLOEngine:
    """Evaluates alert rules at bucket boundaries; emits alert events.

    Attach with :meth:`install` — the engine registers itself as a
    store observer so the metrics bridge's ``advance_to`` drives it.
    Call :meth:`finish` once at end of run to evaluate the final
    (possibly partial) window and record closing state.
    """

    store: TimeSeriesStore
    events: EventLog
    rules: List[AlertRule]
    states: Dict[str, AlertState] = field(default_factory=dict)
    timeline: List[Dict[str, Any]] = field(default_factory=list)

    def __post_init__(self) -> None:
        names = [rule.name for rule in self.rules]
        if len(set(names)) != len(names):
            raise ValueError(f"duplicate alert rule names: {names}")
        for rule in self.rules:
            self.states[rule.name] = AlertState(rule)

    def install(self) -> "SLOEngine":
        self.store.add_observer(self.evaluate)
        return self

    # -- evaluation ----------------------------------------------------------
    def evaluate(self, boundary: float) -> None:
        """Evaluate every rule with windows ending at ``boundary``."""
        for rule in self.rules:
            state = self.states[rule.name]
            burn_fast = rule.objective.burn(
                self.store, boundary, rule.fast_window
            )
            burn_slow = rule.objective.burn(
                self.store, boundary, rule.slow_window
            )
            state.last_burn_fast = burn_fast
            state.last_burn_slow = burn_slow
            breaching = (
                burn_fast is not None
                and burn_slow is not None
                and burn_fast >= rule.burn_threshold
                and burn_slow >= rule.burn_threshold
            )
            if breaching and not state.firing:
                state.firing = True
                state.fired_at = boundary
                state.fire_count += 1
                self._transition(
                    "alert.fired", boundary, state, burn_fast, burn_slow
                )
            elif state.firing and not breaching:
                state.firing = False
                self._transition(
                    "alert.resolved", boundary, state, burn_fast, burn_slow
                )

    def _transition(
        self,
        kind: str,
        boundary: float,
        state: AlertState,
        burn_fast: Optional[float],
        burn_slow: Optional[float],
    ) -> None:
        rule = state.rule
        record = {
            "time": boundary,
            "kind": kind,
            "alert": rule.name,
            "objective": rule.objective.name,
            "burn_fast": burn_fast,
            "burn_slow": burn_slow,
        }
        self.timeline.append(record)
        self.events.emit(
            boundary,
            "slo",
            kind,
            alert=rule.name,
            objective=rule.objective.name,
            burn_fast=round(burn_fast, 6) if burn_fast is not None else None,
            burn_slow=round(burn_slow, 6) if burn_slow is not None else None,
            fast_window=rule.fast_window,
            slow_window=rule.slow_window,
        )

    def finish(self, time: float) -> None:
        """Final evaluation at end of run (the last bucket never closes
        by itself — no later event arrives to push the boundary)."""
        self.evaluate(time)

    # -- reporting -----------------------------------------------------------
    @property
    def firing(self) -> List[str]:
        return sorted(
            name for name, state in self.states.items() if state.firing
        )

    @property
    def alerts_fired(self) -> int:
        return sum(state.fire_count for state in self.states.values())

    def report(self) -> str:
        """Plain-text alert timeline + closing rule states."""
        lines = ["alert timeline:"]
        if not self.timeline:
            lines.append("  (no alerts)")
        for entry in self.timeline:
            fast = entry["burn_fast"]
            slow = entry["burn_slow"]
            lines.append(
                f"  t={entry['time']:>10.1f}s  {entry['kind']:<14} "
                f"{entry['alert']}  "
                f"burn fast={fast if fast is not None else '-'} "
                f"slow={slow if slow is not None else '-'}"
            )
        lines.append("rule states:")
        for name in sorted(self.states):
            state = self.states[name]
            status = "FIRING" if state.firing else "ok"
            lines.append(
                f"  {name:<28} {status:<7} fired {state.fire_count}x"
            )
        return "\n".join(lines)


def default_slo_pack(
    window: float = 60.0,
    latency_threshold: float = 5400.0,
    error_rate_threshold: float = 0.05,
) -> List[AlertRule]:
    """The default SLO pack used by ``repro obs`` and CI smoke runs.

    Two rules, both calibrated so a fault-free default-policy Fig. 4
    run never fires (zero failed attempts; p95 queue wait under the
    latency budget) while the seeded ``flaky-endpoint`` chaos profile
    deterministically does:

    * ``error-rate-burn`` — failed attempts (retries, timeouts,
      give-ups, failed completions) over total dispatch attempts must
      stay under ``error_rate_threshold``. A fault-free run has a
      numerator of exactly zero, so this alert is impossible without
      injected faults.
    * ``dispatch-p95-latency`` — p95 task queue wait (submit →
      dispatch) across all endpoints must stay under
      ``latency_threshold`` virtual seconds.
    """
    fast = max(window, 5 * window)
    slow = max(fast, 15 * window)
    error_rate = Objective(
        name="error-rate",
        kind="ratio",
        numerator="faas.attempt.failures",
        denominator="faas.attempts",
        threshold=error_rate_threshold,
    )
    dispatch_p95 = Objective(
        name="dispatch-p95",
        kind="latency",
        series="faas.task.queue_wait",
        percentile=95.0,
        threshold=latency_threshold,
    )
    return [
        AlertRule(
            name="error-rate-burn",
            objective=error_rate,
            fast_window=fast,
            slow_window=slow,
        ),
        AlertRule(
            name="dispatch-p95-latency",
            objective=dispatch_p95,
            fast_window=fast,
            slow_window=slow,
        ),
    ]


def overload_slo_pack(
    window: float = 60.0,
    shed_rate_threshold: float = 0.05,
    queue_p95_threshold: float = 900.0,
    retry_rate_threshold: float = 0.9,
) -> List[AlertRule]:
    """The SLO pack for overload-protection runs (``repro overload``).

    Three rules over the series the overload plane and metrics bridge
    emit, calibrated so a fair-share fault-free run stays silent while
    a hot tenant under the ``overload`` chaos profile fires:

    * ``shed-burn`` — shed submissions over dispatch attempts must stay
      under ``shed_rate_threshold``; a fault-free fair-share run sheds
      exactly zero, so this alert is impossible without overload.
    * ``overload-queue-p95`` — p95 task queue wait must stay under
      ``queue_p95_threshold`` virtual seconds (tighter than the default
      pack's figure budget: overload shows up as queueing first).
    * ``retry-storm-burn`` — failed attempts over total attempts must
      stay under ``retry_rate_threshold``; the retry budget exists to
      keep this ratio bounded even under injected fault bursts. Tight
      per-task deadlines make some windowed failure ratio normal even
      at fair share, so the threshold is deliberately high: only a
      genuine storm — most of a window's attempts dying — crosses it.
    """
    fast = max(window, 5 * window)
    slow = max(fast, 15 * window)
    shed_rate = Objective(
        name="shed-rate",
        kind="ratio",
        numerator="overload.shed",
        denominator="faas.attempts",
        threshold=shed_rate_threshold,
    )
    queue_p95 = Objective(
        name="overload-queue-p95",
        kind="latency",
        series="faas.task.queue_wait",
        percentile=95.0,
        threshold=queue_p95_threshold,
    )
    retry_rate = Objective(
        name="retry-rate",
        kind="ratio",
        numerator="faas.attempt.failures",
        denominator="faas.attempts",
        threshold=retry_rate_threshold,
    )
    return [
        AlertRule(
            name="shed-burn",
            objective=shed_rate,
            fast_window=fast,
            slow_window=slow,
        ),
        AlertRule(
            name="overload-queue-p95",
            objective=queue_p95,
            fast_window=fast,
            slow_window=slow,
        ),
        AlertRule(
            name="retry-storm-burn",
            objective=retry_rate,
            fast_window=fast,
            slow_window=slow,
        ),
    ]
