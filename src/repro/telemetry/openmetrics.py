"""OpenMetrics text exposition + JSON dashboard snapshot.

``openmetrics_text`` renders a :class:`~repro.telemetry.metrics.
MetricsRegistry` (and, optionally, windowed-series totals) in the
OpenMetrics text format — ``# TYPE`` family declarations, ``_total``
counter samples, label escaping, terminating ``# EOF`` — so any
Prometheus-compatible scraper or ``promtool check metrics`` can consume
a run's telemetry. ``validate_openmetrics`` is the matching
self-contained parser used by tests and the CI ``obs-smoke`` job (no
external tooling in the loop). ``dashboard_snapshot`` bundles series,
summaries, health, and the alert timeline into one JSON-ready dict —
the "dashboard" a browser UI or notebook would render.

Everything is deterministic: families and samples are emitted in
sorted order, and values use ``repr``-stable formatting.
"""

from __future__ import annotations

import re
from typing import Any, Dict, List, Optional, Tuple

from repro.telemetry.metrics import (
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
)

_NAME_RE = re.compile(r"[a-zA-Z_:][a-zA-Z0-9_:]*$")
_SAMPLE_RE = re.compile(
    r"^(?P<name>[a-zA-Z_:][a-zA-Z0-9_:]*)"
    r"(?:\{(?P<labels>[^}]*)\})?"
    r" (?P<value>[^ ]+)$"
)

_QUANTILES = (("0.5", 50.0), ("0.95", 95.0))


def metric_name(name: str) -> str:
    """Registry name → OpenMetrics name (dots and dashes become ``_``)."""
    cleaned = re.sub(r"[^a-zA-Z0-9_:]", "_", name)
    if not _NAME_RE.match(cleaned):
        cleaned = f"_{cleaned}"
    return cleaned


def _escape(value: str) -> str:
    return (
        value.replace("\\", r"\\").replace('"', r"\"").replace("\n", r"\n")
    )


def _labels_text(labels: Dict[str, str]) -> str:
    if not labels:
        return ""
    inner = ",".join(
        f'{metric_name(key)}="{_escape(str(val))}"'
        for key, val in sorted(labels.items())
    )
    return f"{{{inner}}}"


def _format(value: float) -> str:
    if value == int(value) and abs(value) < 1e15:
        return str(int(value))
    return repr(value)


def openmetrics_text(
    registry: MetricsRegistry,
    series: Optional[Any] = None,
) -> str:
    """The registry (and optional series totals) as OpenMetrics text."""
    # Group instruments into families first: one # TYPE line per name.
    families: Dict[str, Tuple[str, List[Tuple[Dict[str, str], Any]]]] = {}
    for name, labels, instrument in registry.collect():
        if isinstance(instrument, Counter):
            family_type = "counter"
        elif isinstance(instrument, Gauge):
            family_type = "gauge"
        elif isinstance(instrument, Histogram):
            family_type = "summary"
        else:  # pragma: no cover - no other instrument types exist
            continue
        family = families.setdefault(metric_name(name), (family_type, []))
        if family[0] != family_type:
            raise ValueError(
                f"metric family {name!r} mixes instrument types"
            )
        family[1].append((labels, instrument))

    lines: List[str] = []
    for fam_name in sorted(families):
        family_type, members = families[fam_name]
        lines.append(f"# TYPE {fam_name} {family_type}")
        for labels, instrument in members:
            label_text = _labels_text(labels)
            if family_type == "counter":
                lines.append(
                    f"{fam_name}_total{label_text} "
                    f"{_format(instrument.value)}"
                )
            elif family_type == "gauge":
                lines.append(
                    f"{fam_name}{label_text} {_format(instrument.value)}"
                )
            else:
                count = instrument.count
                for quantile_label, percentile in _QUANTILES:
                    merged = dict(labels)
                    merged["quantile"] = quantile_label
                    value = (
                        instrument.percentile(percentile) if count else 0.0
                    )
                    lines.append(
                        f"{fam_name}{_labels_text(merged)} {_format(value)}"
                    )
                lines.append(f"{fam_name}_count{label_text} {count}")
                lines.append(
                    f"{fam_name}_sum{label_text} {_format(instrument.total)}"
                )
    if series is not None:
        lines.append("# TYPE repro_series_observations gauge")
        for name, labels, one_series in series.collect():
            merged = dict(labels)
            merged["series"] = name
            merged["series_kind"] = one_series.kind
            if one_series.kind == "counter":
                value = one_series.total
            elif one_series.kind == "gauge":
                value = one_series.value
            else:
                value = float(one_series.count)
            lines.append(
                f"repro_series_observations{_labels_text(merged)} "
                f"{_format(value)}"
            )
    lines.append("# EOF")
    return "\n".join(lines) + "\n"


def validate_openmetrics(text: str) -> Dict[str, int]:
    """Parse OpenMetrics text; raise ValueError on any shape violation.

    Checks: terminating ``# EOF``; every sample parses and belongs to a
    declared family; counter samples use the ``_total`` suffix; family
    names are valid and declared exactly once; values are finite
    floats. Returns ``{"families": N, "samples": M}``.
    """
    lines = text.splitlines()
    if not lines or lines[-1] != "# EOF":
        raise ValueError("OpenMetrics text must end with '# EOF'")
    declared: Dict[str, str] = {}
    samples = 0
    for line_number, line in enumerate(lines[:-1], start=1):
        if not line:
            raise ValueError(f"line {line_number}: blank line")
        if line.startswith("# TYPE "):
            parts = line.split(" ")
            if len(parts) != 4:
                raise ValueError(f"line {line_number}: malformed TYPE line")
            _, _, fam_name, family_type = parts
            if not _NAME_RE.match(fam_name):
                raise ValueError(
                    f"line {line_number}: bad family name {fam_name!r}"
                )
            if family_type not in ("counter", "gauge", "summary",
                                   "histogram", "unknown"):
                raise ValueError(
                    f"line {line_number}: bad family type {family_type!r}"
                )
            if fam_name in declared:
                raise ValueError(
                    f"line {line_number}: family {fam_name!r} "
                    "declared twice"
                )
            declared[fam_name] = family_type
            continue
        if line.startswith("#"):
            continue  # HELP/UNIT lines are legal; we don't emit them
        match = _SAMPLE_RE.match(line)
        if not match:
            raise ValueError(f"line {line_number}: unparseable sample")
        sample_name = match.group("name")
        family = None
        for suffix in ("_total", "_count", "_sum", ""):
            if suffix and sample_name.endswith(suffix):
                candidate = sample_name[: -len(suffix)]
            elif not suffix:
                candidate = sample_name
            else:
                continue
            if candidate in declared:
                family = candidate
                break
        if family is None:
            raise ValueError(
                f"line {line_number}: sample {sample_name!r} has no "
                "declared family"
            )
        if declared[family] == "counter" and not sample_name.endswith(
            ("_total", "_created")
        ):
            raise ValueError(
                f"line {line_number}: counter sample {sample_name!r} "
                "must end with _total"
            )
        try:
            value = float(match.group("value"))
        except ValueError as exc:
            raise ValueError(
                f"line {line_number}: bad sample value"
            ) from exc
        if value != value or value in (float("inf"), float("-inf")):
            raise ValueError(f"line {line_number}: non-finite value")
        samples += 1
    return {"families": len(declared), "samples": samples}


def dashboard_snapshot(
    registry: MetricsRegistry,
    series: Any,
    health: Optional[Any] = None,
    engine: Optional[Any] = None,
    now: float = 0.0,
) -> Dict[str, Any]:
    """One JSON-ready document bundling every observability surface."""
    doc: Dict[str, Any] = {
        "schema": "repro-obs/1",
        "virtual_time": now,
        "window": series.window,
        "metrics": registry.summaries(),
        "series": series.snapshot(),
    }
    if health is not None:
        doc["health"] = health.snapshot(now)
    if engine is not None:
        doc["alerts"] = {
            "fired": engine.alerts_fired,
            "firing": engine.firing,
            "timeline": engine.timeline,
        }
    return doc
