"""Exporters: Chrome trace-event JSON and a plain-text run report.

:func:`chrome_trace` renders a tracer's spans as the Chrome trace-event
format (the ``traceEvents`` array of ``"X"`` complete events plus
``"M"`` metadata), loadable in Perfetto / ``chrome://tracing``. Virtual
seconds map to microseconds. Spans are laid out on display lanes by
layer — CI jobs, endpoints, Slurm schedulers, nodes — so partially
overlapping lifetimes (a pilot job outliving the task that provisioned
it) never corrupt the nesting of a lane.

:func:`text_report` renders the span trees and metric summaries as
indented plain text for terminals and provenance bundles.
"""

from __future__ import annotations

import json
from typing import Any, Dict, List, Optional

from repro.telemetry.metrics import MetricsRegistry
from repro.telemetry.span import Span
from repro.telemetry.tracer import Tracer

_US = 1_000_000  # virtual seconds → trace microseconds


def _lane_of(span: Span, by_id: Dict[str, Span],
             cache: Dict[str, str]) -> str:
    """Display lane for a span: its layer, not its tree position."""
    cached = cache.get(span.span_id)
    if cached is not None:
        return cached
    attrs = span.attributes
    if span.kind == "workflow":
        lane = "ci workflow"
    elif span.kind == "job":
        lane = f"ci {span.name}"
    elif span.kind in ("task", "execute"):
        lane = f"endpoint {str(attrs.get('endpoint', '?'))[:8]}"
    elif span.kind == "slurm":
        lane = f"slurm {attrs.get('scheduler', '?')}"
    elif span.kind == "node":
        lane = f"node {attrs.get('node', '?')}"
    else:
        parent = by_id.get(span.parent_id)
        lane = _lane_of(parent, by_id, cache) if parent else "misc"
    cache[span.span_id] = lane
    return lane


def chrome_trace(
    tracer: Tracer,
    metrics: Optional[MetricsRegistry] = None,
    include_orphans: bool = False,
) -> Dict[str, Any]:
    """Export spans as a Chrome trace-event document.

    By default only traces rooted in a ``workflow`` span are exported —
    the CI runs — keeping synthetic background-load traces out of the
    picture; ``include_orphans=True`` exports everything. Open spans are
    clamped to the latest timestamp seen and flagged ``open`` in their
    args. Metric summaries ride along under ``otherData``.
    """
    spans = list(tracer.spans)
    if not include_orphans:
        ci_traces = {
            s.trace_id for s in spans
            if not s.parent_id and s.kind == "workflow"
        }
        spans = [s for s in spans if s.trace_id in ci_traces]

    by_id = {s.span_id: s for s in spans}
    horizon = 0.0
    for span in spans:
        horizon = max(horizon, span.start, span.end or span.start)

    # deterministic pid per trace, tid per (trace, lane), in span order
    pids: Dict[str, int] = {}
    tids: Dict[tuple, int] = {}
    events: List[Dict[str, Any]] = []
    lane_cache: Dict[str, str] = {}
    for span in spans:
        pid = pids.setdefault(span.trace_id, len(pids) + 1)
        lane = _lane_of(span, by_id, lane_cache)
        tid_key = (span.trace_id, lane)
        tid = tids.get(tid_key)
        if tid is None:
            tid = tids[tid_key] = len(tids) + 1
            events.append({
                "name": "thread_name", "ph": "M", "pid": pid, "tid": tid,
                "args": {"name": lane},
            })
        end = span.end if span.end is not None else horizon
        args: Dict[str, Any] = dict(span.attributes)
        args["status"] = span.status
        args["span_id"] = span.span_id
        if span.parent_id:
            args["parent_id"] = span.parent_id
        if span.error:
            args["error"] = span.error
        if span.is_open:
            args["open"] = True
        events.append({
            "name": span.name,
            "cat": span.kind or "span",
            "ph": "X",
            "ts": round(span.start * _US, 3),
            "dur": round((end - span.start) * _US, 3),
            "pid": pid,
            "tid": tid,
            "args": args,
        })
    # name each trace's process after its root span
    events.extend(
        {
            "name": "process_name", "ph": "M",
            "pid": pids[span.trace_id], "tid": 0,
            "args": {"name": f"{span.trace_id} {span.name}"},
        }
        for span in spans
        if not span.parent_id
    )

    doc: Dict[str, Any] = {
        "traceEvents": events,
        "displayTimeUnit": "ms",
        "otherData": {
            "generator": "repro-telemetry",
            "clock": "virtual-seconds",
            "spans": len(spans),
            "traces": len(pids),
        },
    }
    if metrics is not None:
        doc["otherData"]["metrics"] = metrics.summaries()
    return doc


def validate_chrome_trace(doc: Any) -> None:
    """Raise :class:`ValueError` unless ``doc`` is a loadable trace.

    Checks the shape Perfetto's legacy JSON importer requires: a
    ``traceEvents`` list whose entries carry ``name``/``ph``/``pid``/
    ``tid``, with numeric non-negative ``ts``/``dur`` on complete
    (``"X"``) events. When the document embeds metric summaries
    (``otherData.metrics``), a non-zero ``telemetry.subscriber_errors``
    count also fails validation: a trace produced while a telemetry
    subscriber was throwing is not a trustworthy record of the run.
    """
    if not isinstance(doc, dict):
        raise ValueError("trace document must be a JSON object")
    events = doc.get("traceEvents")
    if not isinstance(events, list) or not events:
        raise ValueError("traceEvents must be a non-empty list")
    for i, event in enumerate(events):
        if not isinstance(event, dict):
            raise ValueError(f"traceEvents[{i}] is not an object")
        for key in ("name", "ph", "pid", "tid"):
            if key not in event:
                raise ValueError(f"traceEvents[{i}] missing {key!r}")
        if event["ph"] == "X":
            for key in ("ts", "dur"):
                value = event.get(key)
                if not isinstance(value, (int, float)) or value < 0:
                    raise ValueError(
                        f"traceEvents[{i}].{key} must be a non-negative "
                        f"number, got {value!r}"
                    )
        if "args" in event and not isinstance(event["args"], dict):
            raise ValueError(f"traceEvents[{i}].args must be an object")
    metrics = doc.get("otherData", {}).get("metrics")
    if isinstance(metrics, dict):
        errors = metrics.get("telemetry.subscriber_errors", {}).get("value", 0)
        if errors:
            raise ValueError(
                f"telemetry recorded {int(errors)} subscriber error(s); "
                "the trace is incomplete"
            )


def dumps_chrome_trace(
    tracer: Tracer,
    metrics: Optional[MetricsRegistry] = None,
    include_orphans: bool = False,
) -> str:
    """Validated JSON text of :func:`chrome_trace`."""
    doc = chrome_trace(tracer, metrics=metrics, include_orphans=include_orphans)
    validate_chrome_trace(doc)
    return json.dumps(doc, indent=2, sort_keys=True)


def _render_span(span: Span, tracer: Tracer, lines: List[str],
                 depth: int) -> None:
    if span.end is None:
        timing = f"[{span.start:10.1f}s …     open ]"
    else:
        timing = f"[{span.start:10.1f}s +{span.end - span.start:9.1f}s]"
    status = "" if span.ok else f"  !{span.status}"
    lines.append(f"{timing} {'  ' * depth}{span.name}{status}")
    for child in tracer.children(span.span_id):
        _render_span(child, tracer, lines, depth + 1)


def text_report(
    tracer: Tracer,
    metrics: Optional[MetricsRegistry] = None,
    title: str = "telemetry report",
    include_orphans: bool = False,
) -> str:
    """Human-readable run report: span trees, then metric summaries."""
    lines = [f"== {title} ==", ""]
    roots = tracer.roots()
    if not include_orphans:
        roots = [r for r in roots if r.kind == "workflow"]
    if not roots:
        lines.append("(no traces recorded)")
    for root in roots:
        lines.append(f"-- trace {root.trace_id} --")
        _render_span(root, tracer, lines, 0)
        lines.append("")
    if metrics is not None and len(metrics):
        lines.append("== metrics ==")
        lines.append(metrics.report())
    return "\n".join(lines) + "\n"
