"""Metrics: counters, gauges, histograms, and the event→metric bridge.

A :class:`MetricsRegistry` is a passive store of named, labelled
instruments. Nothing in the hot path calls it directly: the
:class:`EventMetricsBridge` subscribes to the existing
:class:`~repro.util.events.EventLog` and derives every metric from the
events subsystems already emit. Disabling telemetry is therefore just
"don't subscribe" — the simulation's behaviour and timing are identical
either way.
"""

from __future__ import annotations

import math
from typing import Any, Callable, Dict, Iterator, List, Optional, Tuple

from repro.util.events import Event, EventLog

LabelKey = Tuple[Tuple[str, str], ...]


def percentile(values: List[float], p: float) -> float:
    """Nearest-rank percentile of ``values`` (p in [0, 100])."""
    if not values:
        raise ValueError("percentile of no values")
    ordered = sorted(values)
    rank = max(1, math.ceil(p / 100.0 * len(ordered)))
    return ordered[rank - 1]


class Counter:
    """A monotonically increasing count."""

    def __init__(self) -> None:
        self.value = 0.0

    def inc(self, amount: float = 1.0) -> None:
        if amount < 0:
            raise ValueError("counters only go up")
        self.value += amount

    def summary(self) -> Dict[str, float]:
        return {"value": self.value}


class Gauge:
    """A value that goes up and down; remembers its high-water mark."""

    def __init__(self) -> None:
        self.value = 0.0
        self.max_value = 0.0

    def set(self, value: float) -> None:
        self.value = value
        self.max_value = max(self.max_value, value)

    def inc(self, amount: float = 1.0) -> None:
        self.set(self.value + amount)

    def dec(self, amount: float = 1.0) -> None:
        self.value -= amount

    def summary(self) -> Dict[str, float]:
        return {"value": self.value, "max": self.max_value}


class Histogram:
    """A distribution with count/mean/p50/p95/max summaries."""

    def __init__(self) -> None:
        self._values: List[float] = []

    def observe(self, value: float) -> None:
        self._values.append(value)

    @property
    def count(self) -> int:
        return len(self._values)

    @property
    def total(self) -> float:
        return sum(self._values)

    @property
    def mean(self) -> float:
        return self.total / self.count if self._values else 0.0

    def percentile(self, p: float) -> float:
        return percentile(self._values, p)

    def values(self) -> List[float]:
        return list(self._values)

    def summary(self) -> Dict[str, float]:
        if not self._values:
            return {"count": 0}
        return {
            "count": self.count,
            "mean": self.mean,
            "p50": self.percentile(50),
            "p95": self.percentile(95),
            "max": max(self._values),
        }


class MetricsRegistry:
    """Named, labelled instruments, created on first use.

    ``registry.histogram("faas.task.latency", endpoint=eid)`` returns the
    one histogram for that (name, labels) pair; re-registering a name
    with a different instrument type is an error.
    """

    def __init__(self) -> None:
        self._instruments: Dict[Tuple[str, LabelKey], Any] = {}

    def _get(self, factory: Callable[[], Any], name: str,
             labels: Dict[str, Any]) -> Any:
        key = (name, tuple(sorted((k, str(v)) for k, v in labels.items())))
        instrument = self._instruments.get(key)
        if instrument is None:
            instrument = factory()
            self._instruments[key] = instrument
        elif not isinstance(instrument, factory):
            raise TypeError(
                f"metric {name!r} already registered as "
                f"{type(instrument).__name__}"
            )
        return instrument

    def counter(self, name: str, **labels: Any) -> Counter:
        return self._get(Counter, name, labels)

    def gauge(self, name: str, **labels: Any) -> Gauge:
        return self._get(Gauge, name, labels)

    def histogram(self, name: str, **labels: Any) -> Histogram:
        return self._get(Histogram, name, labels)

    def __len__(self) -> int:
        return len(self._instruments)

    def collect(self) -> Iterator[Tuple[str, Dict[str, str], Any]]:
        """(name, labels, instrument) triples in sorted order."""
        for (name, label_key) in sorted(self._instruments):
            yield name, dict(label_key), self._instruments[(name, label_key)]

    def summaries(self) -> Dict[str, Dict[str, float]]:
        """JSON-ready snapshot: ``name{k=v,...}`` → summary dict."""
        out: Dict[str, Dict[str, float]] = {}
        for name, labels, instrument in self.collect():
            suffix = ",".join(f"{k}={v}" for k, v in sorted(labels.items()))
            out[f"{name}{{{suffix}}}" if suffix else name] = (
                instrument.summary()
            )
        return out

    def report(self) -> str:
        """Plain-text table of every instrument's summary."""
        lines = []
        for key, summary in self.summaries().items():
            rendered = "  ".join(
                f"{k}={v:.3f}" if isinstance(v, float) else f"{k}={v}"
                for k, v in summary.items()
            )
            lines.append(f"{key:<64} {rendered}")
        return "\n".join(lines)


class EventMetricsBridge:
    """Derives the standard metric set from the event log, by subscription.

    Event → metric mapping (see DESIGN.md §8 for the full table):

    * ``task.submitted``   → ``faas.tasks.submitted{endpoint}`` counter,
      ``faas.dispatch.depth{endpoint}`` gauge (+1)
    * ``task.dispatched``  → ``faas.task.queue_wait{endpoint}`` histogram,
      dispatch-depth gauge (−1)
    * ``task.completed``   → ``faas.task.latency{endpoint}`` histogram,
      ``faas.tasks.completed{endpoint,state}`` counter,
      ``faas.tasks.failed{endpoint}`` counter on failure
    * ``job.submitted``    → ``slurm.jobs.submitted{scheduler}`` counter
    * ``job.started``      → ``slurm.queue_wait{scheduler}`` histogram
    * ``job.ended``        → ``slurm.jobs.ended{scheduler,state}`` counter
    * ``run.created``      → ``ci.runs`` counter
    * ``job.finished``     → ``ci.jobs{status}`` counter (actions source)
    * ``task.retry``       → ``faas.task.retries{endpoint}`` counter,
      ``faas.retry.backoff{endpoint}`` histogram of backoff delays
    * ``task.failover``    → ``faas.task.failovers{from,to}`` counter
    * ``task.timeout``     → ``faas.task.timeouts{endpoint}`` counter
    * ``task.gave_up``     → ``faas.task.give_ups{endpoint}`` counter
    * ``breaker.*``        → ``faas.breaker.transitions{endpoint,state}``
      counter (state = open/close/half_open)
    * ``task.replayed``    → ``durability.tasks.replayed{endpoint}`` counter
    * ``step.replayed``    → ``durability.steps.replayed`` counter
    * ``run.resumed``      → ``durability.runs.resumed`` counter
    * ``lease.*``          → ``durability.lease.events{transition}`` counter
    * any ``fault`` event  → ``faults.injected{kind}`` counter
    * ``subscriber_error`` → ``telemetry.subscriber_errors`` counter

    The bridge holds a tiny join table (task id → submit time/endpoint)
    so latencies need no second pass over the log.
    """

    def __init__(self, registry: MetricsRegistry, events: EventLog) -> None:
        self.registry = registry
        self._submits: Dict[str, Tuple[float, str]] = {}
        # Per-endpoint instrument caches for the three task-lifecycle
        # kinds that dominate event volume: resolving an instrument
        # through the registry rebuilds its sorted label key every time,
        # which is measurable at a million tasks. Instruments are still
        # created lazily at exactly the same point as before, so the
        # registry's contents (and report output) are unchanged.
        self._c_submitted: Dict[str, Counter] = {}
        self._g_depth: Dict[str, Gauge] = {}
        self._h_queue_wait: Dict[str, Histogram] = {}
        self._h_latency: Dict[str, Histogram] = {}
        self._c_completed: Dict[Tuple[str, str], Counter] = {}
        self._unsubscribe: Optional[Callable[[], None]] = events.subscribe(
            self.on_event
        )

    def close(self) -> None:
        if self._unsubscribe is not None:
            self._unsubscribe()
            self._unsubscribe = None

    # -- the one subscriber --------------------------------------------------
    def on_event(self, event: Event) -> None:
        kind, data = event.kind, event.data
        reg = self.registry
        if kind == "task.submitted":
            endpoint = data.get("endpoint", "?")
            self._submits[data.get("task_id", "")] = (event.time, endpoint)
            counter = self._c_submitted.get(endpoint)
            if counter is None:
                counter = self._c_submitted[endpoint] = reg.counter(
                    "faas.tasks.submitted", endpoint=endpoint
                )
            counter.inc()
            gauge = self._g_depth.get(endpoint)
            if gauge is None:
                gauge = self._g_depth[endpoint] = reg.gauge(
                    "faas.dispatch.depth", endpoint=endpoint
                )
            gauge.inc()
        elif kind == "task.dispatched":
            submitted = self._submits.get(data.get("task_id", ""))
            endpoint = data.get("endpoint", "?")
            gauge = self._g_depth.get(endpoint)
            if gauge is None:
                gauge = self._g_depth[endpoint] = reg.gauge(
                    "faas.dispatch.depth", endpoint=endpoint
                )
            gauge.dec()
            if submitted is not None:
                hist = self._h_queue_wait.get(endpoint)
                if hist is None:
                    hist = self._h_queue_wait[endpoint] = reg.histogram(
                        "faas.task.queue_wait", endpoint=endpoint
                    )
                hist.observe(event.time - submitted[0])
        elif kind == "task.completed":
            submitted = self._submits.pop(data.get("task_id", ""), None)
            state = data.get("state", "?")
            if submitted is not None:
                submit_time, endpoint = submitted
                hist = self._h_latency.get(endpoint)
                if hist is None:
                    hist = self._h_latency[endpoint] = reg.histogram(
                        "faas.task.latency", endpoint=endpoint
                    )
                hist.observe(event.time - submit_time)
                counter = self._c_completed.get((endpoint, state))
                if counter is None:
                    counter = self._c_completed[(endpoint, state)] = reg.counter(
                        "faas.tasks.completed", endpoint=endpoint, state=state
                    )
                counter.inc()
                if str(state).upper() != "SUCCESS":
                    reg.counter("faas.tasks.failed", endpoint=endpoint).inc()
        elif kind == "job.submitted" and "job_id" in data:
            reg.counter("slurm.jobs.submitted", scheduler=event.source).inc()
        elif kind == "job.started" and "queue_wait" in data:
            reg.histogram(
                "slurm.queue_wait", scheduler=event.source
            ).observe(float(data["queue_wait"] or 0.0))
        elif kind == "job.ended" and "state" in data:
            reg.counter(
                "slurm.jobs.ended",
                scheduler=event.source, state=data["state"],
            ).inc()
        elif kind == "task.retry":
            endpoint = data.get("endpoint", "?")
            reg.counter("faas.task.retries", endpoint=endpoint).inc()
            reg.histogram("faas.retry.backoff", endpoint=endpoint).observe(
                float(data.get("delay", 0.0))
            )
        elif kind == "task.failover":
            reg.counter(
                "faas.task.failovers",
                from_endpoint=data.get("from_endpoint", "?"),
                to_endpoint=data.get("to_endpoint", "?"),
            ).inc()
        elif kind == "task.timeout":
            reg.counter(
                "faas.task.timeouts", endpoint=data.get("endpoint", "?")
            ).inc()
        elif kind == "task.gave_up":
            reg.counter(
                "faas.task.give_ups", endpoint=data.get("endpoint", "?")
            ).inc()
        elif kind.startswith("breaker."):
            reg.counter(
                "faas.breaker.transitions",
                endpoint=data.get("endpoint", "?"),
                state=kind.split(".", 1)[1],
            ).inc()
        elif kind == "task.replayed":
            reg.counter(
                "durability.tasks.replayed", endpoint=data.get("endpoint", "?")
            ).inc()
        elif kind == "step.replayed":
            reg.counter("durability.steps.replayed").inc()
        elif kind == "run.resumed":
            reg.counter("durability.runs.resumed").inc()
        elif kind.startswith("lease."):
            reg.counter(
                "durability.lease.events",
                transition=kind.split(".", 1)[1],
            ).inc()
        elif event.source == "fault":
            reg.counter("faults.injected", kind=kind).inc()
        elif kind == "run.created":
            reg.counter("ci.runs").inc()
        elif kind == "job.finished" and event.source == "actions":
            reg.counter("ci.jobs", status=data.get("status", "?")).inc()
        elif kind == "subscriber_error":
            reg.counter("telemetry.subscriber_errors").inc()
