"""Metrics: counters, gauges, histograms, and the event→metric bridge.

A :class:`MetricsRegistry` is a passive store of named, labelled
instruments. Nothing in the hot path calls it directly: the
:class:`EventMetricsBridge` subscribes to the existing
:class:`~repro.util.events.EventLog` and derives every metric from the
events subsystems already emit. Disabling telemetry is therefore just
"don't subscribe" — the simulation's behaviour and timing are identical
either way.
"""

from __future__ import annotations

import math
from bisect import bisect_left
from typing import Any, Callable, Dict, Iterator, List, Optional, Tuple

from repro.util.events import Event, EventLog

LabelKey = Tuple[Tuple[str, str], ...]

# Default fixed bucket bounds for streaming histograms, in virtual
# seconds: exponential coverage from control-plane latencies (sub-second)
# out to multi-hour queue waits. Shared with the windowed time-series
# layer so window merges and registry summaries agree.
DEFAULT_BOUNDS: Tuple[float, ...] = (
    0.01, 0.025, 0.05, 0.1, 0.25, 0.5,
    1.0, 2.5, 5.0, 10.0, 25.0, 50.0,
    100.0, 250.0, 500.0, 1000.0, 2500.0, 5000.0, 10000.0,
)


def percentile(values: List[float], p: float) -> float:
    """Nearest-rank percentile of ``values`` (p in [0, 100])."""
    if not values:
        raise ValueError("percentile of no values")
    ordered = sorted(values)
    rank = max(1, math.ceil(p / 100.0 * len(ordered)))
    return ordered[rank - 1]


class BucketHistogram:
    """A fixed-bound streaming histogram: O(len(bounds)) memory, always.

    The bounded-memory sibling of :class:`Histogram`'s exact mode:
    observations increment the count of the first bound containing them,
    and percentiles come back as the matching *upper bound* (clamped to
    the maximum observed value) — a deterministic over-estimate that
    never retains individual observations. Mergeable, so the windowed
    time-series layer can combine per-bucket histograms into a rolling
    window.
    """

    __slots__ = ("bounds", "counts", "count", "total", "max")

    def __init__(self, bounds: Tuple[float, ...] = DEFAULT_BOUNDS) -> None:
        self.bounds = bounds
        self.counts = [0] * (len(bounds) + 1)  # +1 = overflow bucket
        self.count = 0
        self.total = 0.0
        self.max = 0.0

    def observe(self, value: float) -> None:
        # leftmost bound >= value == first bucket containing it; past
        # the last bound lands in the overflow bucket at len(bounds)
        self.counts[bisect_left(self.bounds, value)] += 1
        self.count += 1
        self.total += value
        if value > self.max:
            self.max = value

    def merge(self, other: "BucketHistogram") -> None:
        if other.bounds != self.bounds:
            raise ValueError("cannot merge histograms with different bounds")
        for i, count in enumerate(other.counts):
            self.counts[i] += count
        self.count += other.count
        self.total += other.total
        if other.max > self.max:
            self.max = other.max

    def percentile(self, p: float) -> float:
        """Nearest-rank percentile estimated from the bucket bounds."""
        if not self.count:
            raise ValueError("percentile of no values")
        rank = max(1, math.ceil(p / 100.0 * self.count))
        seen = 0
        for i, count in enumerate(self.counts):
            seen += count
            if seen >= rank:
                if i < len(self.bounds):
                    return min(self.bounds[i], self.max)
                return self.max
        return self.max  # pragma: no cover - defensive

    @property
    def mean(self) -> float:
        return self.total / self.count if self.count else 0.0

    def summary(self) -> Dict[str, float]:
        if not self.count:
            return {"count": 0}
        return {
            "count": self.count,
            "mean": self.mean,
            "p50": self.percentile(50),
            "p95": self.percentile(95),
            "max": self.max,
        }


class Counter:
    """A monotonically increasing count."""

    def __init__(self) -> None:
        self.value = 0.0

    def inc(self, amount: float = 1.0) -> None:
        if amount < 0:
            raise ValueError("counters only go up")
        self.value += amount

    def summary(self) -> Dict[str, float]:
        return {"value": self.value}


class Gauge:
    """A value that goes up and down; remembers its high-water mark."""

    def __init__(self) -> None:
        self.value = 0.0
        self.max_value = 0.0

    def set(self, value: float) -> None:
        self.value = value
        self.max_value = max(self.max_value, value)

    def inc(self, amount: float = 1.0) -> None:
        self.set(self.value + amount)

    def dec(self, amount: float = 1.0) -> None:
        self.value -= amount

    def summary(self) -> Dict[str, float]:
        return {"value": self.value, "max": self.max_value}


class Histogram:
    """A distribution with count/mean/p50/p95/max summaries.

    Two modes. **Exact** (the default) retains every observation, so
    percentiles are exact — this is what every figure output is built
    on, and it stays byte-identical. **Streaming** (``bounds=...``)
    delegates to a :class:`BucketHistogram`: fixed memory no matter how
    many observations arrive, percentiles estimated from the bounds.
    Bench scenarios run the registry in streaming mode so a million-task
    run does not retain a million latencies per instrument.
    """

    def __init__(self, bounds: Optional[Tuple[float, ...]] = None) -> None:
        self._values: Optional[List[float]] = None if bounds else []
        self._stream: Optional[BucketHistogram] = (
            BucketHistogram(bounds) if bounds else None
        )

    @property
    def streaming(self) -> bool:
        return self._stream is not None

    def observe(self, value: float) -> None:
        if self._values is not None:
            self._values.append(value)
        else:
            self._stream.observe(value)

    @property
    def count(self) -> int:
        if self._values is not None:
            return len(self._values)
        return self._stream.count

    @property
    def total(self) -> float:
        if self._values is not None:
            return sum(self._values)
        return self._stream.total

    @property
    def mean(self) -> float:
        return self.total / self.count if self.count else 0.0

    def percentile(self, p: float) -> float:
        if self._values is not None:
            return percentile(self._values, p)
        return self._stream.percentile(p)

    def values(self) -> List[float]:
        if self._values is None:
            raise TypeError(
                "a streaming histogram does not retain observations; "
                "use summary() or percentile()"
            )
        return list(self._values)

    def summary(self) -> Dict[str, float]:
        if self._values is None:
            return self._stream.summary()
        if not self._values:
            return {"count": 0}
        return {
            "count": self.count,
            "mean": self.mean,
            "p50": self.percentile(50),
            "p95": self.percentile(95),
            "max": max(self._values),
        }


class MetricsRegistry:
    """Named, labelled instruments, created on first use.

    ``registry.histogram("faas.task.latency", endpoint=eid)`` returns the
    one histogram for that (name, labels) pair; re-registering a name
    with a different instrument type is an error.

    ``histogram_bounds`` switches every histogram the registry creates
    into fixed-bucket streaming mode (see :class:`Histogram`); the
    default ``None`` keeps the exact mode every figure output depends
    on.
    """

    def __init__(
        self, histogram_bounds: Optional[Tuple[float, ...]] = None
    ) -> None:
        self._instruments: Dict[Tuple[str, LabelKey], Any] = {}
        self.histogram_bounds = histogram_bounds

    def _get(self, cls: type, name: str, labels: Dict[str, Any],
             builder: Optional[Callable[[], Any]] = None) -> Any:
        key = (name, tuple(sorted((k, str(v)) for k, v in labels.items())))
        instrument = self._instruments.get(key)
        if instrument is None:
            instrument = cls() if builder is None else builder()
            self._instruments[key] = instrument
        elif not isinstance(instrument, cls):
            raise TypeError(
                f"metric {name!r} already registered as "
                f"{type(instrument).__name__}"
            )
        return instrument

    def counter(self, name: str, **labels: Any) -> Counter:
        return self._get(Counter, name, labels)

    def gauge(self, name: str, **labels: Any) -> Gauge:
        return self._get(Gauge, name, labels)

    def histogram(self, name: str, **labels: Any) -> Histogram:
        bounds = self.histogram_bounds
        if bounds is None:
            return self._get(Histogram, name, labels)
        return self._get(
            Histogram, name, labels, builder=lambda: Histogram(bounds)
        )

    def __len__(self) -> int:
        return len(self._instruments)

    def collect(self) -> Iterator[Tuple[str, Dict[str, str], Any]]:
        """(name, labels, instrument) triples in sorted order."""
        for (name, label_key) in sorted(self._instruments):
            yield name, dict(label_key), self._instruments[(name, label_key)]

    def summaries(self) -> Dict[str, Dict[str, float]]:
        """JSON-ready snapshot: ``name{k=v,...}`` → summary dict."""
        out: Dict[str, Dict[str, float]] = {}
        for name, labels, instrument in self.collect():
            suffix = ",".join(f"{k}={v}" for k, v in sorted(labels.items()))
            out[f"{name}{{{suffix}}}" if suffix else name] = (
                instrument.summary()
            )
        return out

    def report(self) -> str:
        """Plain-text table of every instrument's summary."""
        lines = []
        for key, summary in self.summaries().items():
            rendered = "  ".join(
                f"{k}={v:.3f}" if isinstance(v, float) else f"{k}={v}"
                for k, v in summary.items()
            )
            lines.append(f"{key:<64} {rendered}")
        return "\n".join(lines)


class EventMetricsBridge:
    """Derives the standard metric set from the event log, by subscription.

    Event → metric mapping (see DESIGN.md §8 for the full table):

    * ``task.submitted``   → ``faas.tasks.submitted{endpoint}`` counter,
      ``faas.dispatch.depth{endpoint}`` gauge (+1)
    * ``task.dispatched``  → ``faas.task.queue_wait{endpoint}`` histogram,
      dispatch-depth gauge (−1)
    * ``task.completed``   → ``faas.task.latency{endpoint}`` histogram,
      ``faas.tasks.completed{endpoint,state}`` counter,
      ``faas.tasks.failed{endpoint}`` counter on failure
    * ``job.submitted``    → ``slurm.jobs.submitted{scheduler}`` counter
    * ``job.started``      → ``slurm.queue_wait{scheduler}`` histogram
    * ``job.ended``        → ``slurm.jobs.ended{scheduler,state}`` counter
    * ``run.created``      → ``ci.runs`` counter
    * ``job.finished``     → ``ci.jobs{status}`` counter (actions source)
    * ``task.retry``       → ``faas.task.retries{endpoint}`` counter,
      ``faas.retry.backoff{endpoint}`` histogram of backoff delays
    * ``task.failover``    → ``faas.task.failovers{from,to}`` counter
    * ``task.timeout``     → ``faas.task.timeouts{endpoint}`` counter
    * ``task.gave_up``     → ``faas.task.give_ups{endpoint}`` counter
    * ``task.rejected``    → ``faas.tasks.rejected{reason}`` counter,
      dispatch-depth gauge (−1: the task never dispatches)
    * ``task.cancelled``   → ``faas.tasks.cancelled{endpoint}`` counter
      (join-table entry retired — a cancelled task never completes)
    * ``hedge.*``          → ``faas.hedges{outcome}`` counter
      (outcome = launched/won/cancelled/lost)
    * ``straggler.*``      → ``faas.stragglers{transition,endpoint}``
      counter (transition = flagged/cleared)
    * ``overload.*``       → backoff/retry-denied/brownout counters plus
      windowed ``overload.*`` series for the overload SLO pack
    * ``breaker.*``        → ``faas.breaker.transitions{endpoint,state}``
      counter (state = open/close/half_open), and on close a
      ``faas.breaker.open_seconds{endpoint}`` gauge accumulating how
      long the breaker was open
    * ``task.replayed``    → ``durability.tasks.replayed{endpoint}`` counter
    * ``step.replayed``    → ``durability.steps.replayed`` counter
    * ``run.resumed``      → ``durability.runs.resumed`` counter
    * ``lease.*``          → ``durability.lease.events{transition}`` counter
    * any ``fault`` event  → ``faults.injected{kind}`` counter
    * ``subscriber_error`` → ``telemetry.subscriber_errors`` counter

    The bridge holds a tiny join table (task id → submit time/endpoint)
    so latencies need no second pass over the log.

    With ``series`` set (a
    :class:`~repro.telemetry.timeseries.TimeSeriesStore`), the bridge
    additionally records windowed series for the observability plane —
    per-endpoint/per-pool queue waits, queue-depth gauges,
    success/failure counters, breaker state — and advances the store's
    bucket clock after every event so SLO evaluation fires at
    deterministic virtual times. ``series=None`` (the default) skips all
    of it.
    """

    def __init__(
        self,
        registry: MetricsRegistry,
        events: EventLog,
        series: Optional[Any] = None,
    ) -> None:
        self.registry = registry
        self.series = series
        self._submits: Dict[str, Tuple[float, str]] = {}
        # endpoint → virtual time its breaker opened, for the
        # faas.breaker.open_seconds duration gauge recorded at close
        self._breaker_opened: Dict[str, float] = {}
        # Subscriber errors are pre-registered so every summary shows
        # the count — a clean run provably reports 0.0 rather than
        # omitting the row (see validate_chrome_trace).
        registry.counter("telemetry.subscriber_errors")
        # Per-endpoint instrument caches for the three task-lifecycle
        # kinds that dominate event volume: resolving an instrument
        # through the registry rebuilds its sorted label key every time,
        # which is measurable at a million tasks. Instruments are still
        # created lazily at exactly the same point as before, so the
        # registry's contents (and report output) are unchanged.
        self._c_submitted: Dict[str, Counter] = {}
        self._g_depth: Dict[str, Gauge] = {}
        self._h_queue_wait: Dict[str, Histogram] = {}
        self._h_latency: Dict[str, Histogram] = {}
        self._c_completed: Dict[Tuple[str, str], Counter] = {}
        # Windowed-series caches, same trick (populated only when a
        # store is attached).
        self._s_submitted: Dict[str, Any] = {}
        self._s_depth: Dict[str, Any] = {}
        self._s_wait: Dict[str, Any] = {}
        self._s_pool_wait: Dict[str, Any] = {}
        self._s_ok: Dict[str, Any] = {}
        self._s_fail: Dict[str, Any] = {}
        if series is not None:
            self.attach_series(series)
        self._unsubscribe: Optional[Callable[[], None]] = events.subscribe(
            self.on_event
        )

    def attach_series(self, series: Any) -> None:
        """Start recording windowed series (call before the workload runs:
        events emitted earlier are not backfilled)."""
        self.series = series
        self._s_attempts = series.counter("faas.attempts")
        self._s_failures = series.counter("faas.attempt.failures")
        self._s_wait_all = series.quantile("faas.task.queue_wait")

    def _s(self, cache: Dict[str, Any], kind: str, name: str,
           value: str, label: str = "endpoint") -> Any:
        series = cache.get(value)
        if series is None:
            series = cache[value] = getattr(self.series, kind)(
                name, **{label: value}
            )
        return series

    def _s_failure(self, time: float, endpoint: str) -> None:
        """One failed attempt: the SLO ratio numerator + health input."""
        self._s_failures.inc(time)
        self._s(self._s_fail, "counter", "faas.tasks.err", endpoint).inc(time)

    def close(self) -> None:
        if self._unsubscribe is not None:
            self._unsubscribe()
            self._unsubscribe = None

    # -- the one subscriber --------------------------------------------------
    def on_event(self, event: Event) -> None:
        kind, data = event.kind, event.data
        reg = self.registry
        store = self.series
        if kind == "task.submitted":
            endpoint = data.get("endpoint", "?")
            self._submits[data.get("task_id", "")] = (event.time, endpoint)
            counter = self._c_submitted.get(endpoint)
            if counter is None:
                counter = self._c_submitted[endpoint] = reg.counter(
                    "faas.tasks.submitted", endpoint=endpoint
                )
            counter.inc()
            gauge = self._g_depth.get(endpoint)
            if gauge is None:
                gauge = self._g_depth[endpoint] = reg.gauge(
                    "faas.dispatch.depth", endpoint=endpoint
                )
            gauge.inc()
            if store is not None:
                # hot path: _s() inlined for the three lifecycle kinds
                s = self._s_submitted.get(endpoint)
                if s is None:
                    s = self._s_submitted[endpoint] = store.counter(
                        "faas.tasks.submitted", endpoint=endpoint
                    )
                s.inc(event.time)
                g = self._s_depth.get(endpoint)
                if g is None:
                    g = self._s_depth[endpoint] = store.gauge(
                        "faas.queue.depth", endpoint=endpoint
                    )
                g.inc(event.time)
        elif kind == "task.dispatched":
            submitted = self._submits.get(data.get("task_id", ""))
            endpoint = data.get("endpoint", "?")
            gauge = self._g_depth.get(endpoint)
            if gauge is None:
                gauge = self._g_depth[endpoint] = reg.gauge(
                    "faas.dispatch.depth", endpoint=endpoint
                )
            gauge.dec()
            if submitted is not None:
                hist = self._h_queue_wait.get(endpoint)
                if hist is None:
                    hist = self._h_queue_wait[endpoint] = reg.histogram(
                        "faas.task.queue_wait", endpoint=endpoint
                    )
                hist.observe(event.time - submitted[0])
            if store is not None:
                g = self._s_depth.get(endpoint)
                if g is None:
                    g = self._s_depth[endpoint] = store.gauge(
                        "faas.queue.depth", endpoint=endpoint
                    )
                g.dec(event.time)
                self._s_attempts.inc(event.time)
                if submitted is not None:
                    wait = event.time - submitted[0]
                    self._s_wait_all.observe(event.time, wait)
                    q = self._s_wait.get(endpoint)
                    if q is None:
                        q = self._s_wait[endpoint] = store.quantile(
                            "faas.task.queue_wait", endpoint=endpoint
                        )
                    q.observe(event.time, wait)
                    pool = data.get("pool")
                    if pool:
                        self._s(
                            self._s_pool_wait, "quantile",
                            "faas.task.queue_wait", pool, label="pool",
                        ).observe(event.time, wait)
        elif kind == "task.completed":
            submitted = self._submits.pop(data.get("task_id", ""), None)
            state = data.get("state", "?")
            if submitted is not None:
                submit_time, endpoint = submitted
                hist = self._h_latency.get(endpoint)
                if hist is None:
                    hist = self._h_latency[endpoint] = reg.histogram(
                        "faas.task.latency", endpoint=endpoint
                    )
                hist.observe(event.time - submit_time)
                counter = self._c_completed.get((endpoint, state))
                if counter is None:
                    counter = self._c_completed[(endpoint, state)] = reg.counter(
                        "faas.tasks.completed", endpoint=endpoint, state=state
                    )
                counter.inc()
                succeeded = str(state).upper() == "SUCCESS"
                if not succeeded:
                    reg.counter("faas.tasks.failed", endpoint=endpoint).inc()
                if store is not None:
                    if succeeded:
                        s = self._s_ok.get(endpoint)
                        if s is None:
                            s = self._s_ok[endpoint] = store.counter(
                                "faas.tasks.ok", endpoint=endpoint
                            )
                        s.inc(event.time)
                    else:
                        self._s_failure(event.time, endpoint)
        elif kind == "job.submitted" and "job_id" in data:
            reg.counter("slurm.jobs.submitted", scheduler=event.source).inc()
        elif kind == "job.started" and "queue_wait" in data:
            reg.histogram(
                "slurm.queue_wait", scheduler=event.source
            ).observe(float(data["queue_wait"] or 0.0))
        elif kind == "job.ended" and "state" in data:
            reg.counter(
                "slurm.jobs.ended",
                scheduler=event.source, state=data["state"],
            ).inc()
        elif kind == "task.retry":
            endpoint = data.get("endpoint", "?")
            reg.counter("faas.task.retries", endpoint=endpoint).inc()
            reg.histogram("faas.retry.backoff", endpoint=endpoint).observe(
                float(data.get("delay", 0.0))
            )
            if store is not None:
                self._s_failure(event.time, endpoint)
        elif kind == "task.failover":
            reg.counter(
                "faas.task.failovers",
                from_endpoint=data.get("from_endpoint", "?"),
                to_endpoint=data.get("to_endpoint", "?"),
            ).inc()
        elif kind == "task.timeout":
            endpoint = data.get("endpoint", "?")
            reg.counter("faas.task.timeouts", endpoint=endpoint).inc()
            if store is not None:
                self._s_failure(event.time, endpoint)
        elif kind == "task.gave_up":
            endpoint = data.get("endpoint", "?")
            reg.counter("faas.task.give_ups", endpoint=endpoint).inc()
            if store is not None:
                self._s_failure(event.time, endpoint)
        elif kind == "task.cancelled":
            endpoint = data.get("endpoint", "?")
            reg.counter("faas.tasks.cancelled", endpoint=endpoint).inc()
            # a cancelled task never emits task.completed: retire its
            # join-table entry and depth increment like a rejection
            self._submits.pop(data.get("task_id", ""), None)
            gauge = self._g_depth.get(endpoint)
            if gauge is not None:
                gauge.dec()
            if store is not None:
                g = self._s_depth.get(endpoint)
                if g is not None:
                    g.dec(event.time)
        elif kind.startswith("hedge."):
            outcome = kind.split(".", 1)[1]
            reg.counter("faas.hedges", outcome=outcome).inc()
            if store is not None:
                store.counter("faas.hedges", outcome=outcome).inc(event.time)
        elif kind.startswith("straggler."):
            transition = kind.split(".", 1)[1]
            reg.counter(
                "faas.stragglers",
                transition=transition, endpoint=data.get("endpoint", "?"),
            ).inc()
        elif kind == "task.rejected":
            endpoint = data.get("endpoint", "?")
            reason = data.get("reason", "?")
            reg.counter("faas.tasks.rejected", reason=reason).inc()
            # a rejected task never dispatches: retire its submit-time
            # depth increment and join-table entry so completion math
            # stays exact (its task.completed is intentionally skipped)
            self._submits.pop(data.get("task_id", ""), None)
            gauge = self._g_depth.get(endpoint)
            if gauge is not None:
                gauge.dec()
            if store is not None:
                g = self._s_depth.get(endpoint)
                if g is not None:
                    g.dec(event.time)
                store.counter("overload.rejected", reason=reason).inc(event.time)
                if reason == "shed":
                    store.counter("overload.shed").inc(event.time)
        elif kind == "overload.backoff":
            pool = data.get("pool", "?")
            reg.counter("faas.overload.backoffs", pool=pool).inc()
            if store is not None:
                store.counter("overload.backoffs").inc(event.time)
                store.gauge("overload.limit", pool=pool).set(
                    event.time, float(data.get("limit", 0.0))
                )
        elif kind == "overload.retry_denied":
            reg.counter(
                "faas.overload.retry_denied", scope=data.get("scope", "?")
            ).inc()
            if store is not None:
                store.counter("overload.retry_denied").inc(event.time)
        elif kind == "overload.brownout":
            state = data.get("state", "?")
            reg.counter("faas.overload.brownout", state=state).inc()
            if store is not None:
                store.gauge("overload.brownout").set(
                    event.time, 1.0 if state == "enter" else 0.0
                )
        elif kind.startswith("breaker."):
            endpoint = data.get("endpoint", "?")
            state = kind.split(".", 1)[1]
            reg.counter(
                "faas.breaker.transitions",
                endpoint=endpoint, state=state,
            ).inc()
            # open-duration accounting: dashboards and shedding decisions
            # need how long capacity was dark, not just the trip count
            if state == "open":
                self._breaker_opened[endpoint] = event.time
            elif state == "close":
                opened = self._breaker_opened.pop(endpoint, None)
                if opened is not None:
                    reg.gauge(
                        "faas.breaker.open_seconds", endpoint=endpoint
                    ).inc(event.time - opened)
                    if store is not None:
                        store.gauge(
                            "faas.breaker.open_seconds", endpoint=endpoint
                        ).inc(event.time, event.time - opened)
            if store is not None:
                store.gauge("faas.breaker.state", endpoint=endpoint).set(
                    event.time, _BREAKER_LEVELS.get(state, 0.0)
                )
        elif kind == "task.replayed":
            reg.counter(
                "durability.tasks.replayed", endpoint=data.get("endpoint", "?")
            ).inc()
        elif kind == "step.replayed":
            reg.counter("durability.steps.replayed").inc()
        elif kind == "run.resumed":
            reg.counter("durability.runs.resumed").inc()
        elif kind.startswith("lease."):
            reg.counter(
                "durability.lease.events",
                transition=kind.split(".", 1)[1],
            ).inc()
        elif event.source == "fault":
            reg.counter("faults.injected", kind=kind).inc()
        elif kind == "run.created":
            reg.counter("ci.runs").inc()
        elif kind == "job.finished" and event.source == "actions":
            reg.counter("ci.jobs", status=data.get("status", "?")).inc()
        elif kind == "subscriber_error":
            reg.counter("telemetry.subscriber_errors").inc()
            if store is not None:
                store.counter("telemetry.subscriber_errors").inc(event.time)
        if store is not None and (
            int(event.time // store.window) != store._last_bucket
        ):
            # guard inlined: most events land in the already-open bucket,
            # so the common case skips the method call entirely
            store.advance_to(event.time)


# Breaker state rendered as a gauge level for the health scorer:
# closed is healthy (0), half-open is probing (0.5), open is down (1).
_BREAKER_LEVELS: Dict[str, float] = {
    "open": 1.0,
    "half_open": 0.5,
    "close": 0.0,
}
