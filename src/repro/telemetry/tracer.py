"""The tracer: span production and ambient context propagation.

One :class:`Tracer` exists per simulated world. It owns every span of
every trace, issues deterministic ids (so identical runs yield identical
span trees), and maintains an *activation stack* of span contexts: code
that starts a span without an explicit parent is parented under whatever
context is currently active.

Context crosses async boundaries explicitly: a producer captures
``tracer.current()`` at submit time and re-enters it with
``tracer.activate(ctx)`` inside the completion callback. This is how a
Slurm pilot job submitted three layers below a CI step still hangs off
that step in the trace tree.

The tracer registers itself on the shared :class:`SimClock`
(``clock.tracer``) so deeply nested components — pilot executors,
schedulers — reach the ambient tracer through the one object they all
already hold, via :func:`tracer_of`. A clock without a tracer resolves
to the process-wide :data:`NULL_TRACER`, which swallows everything.
"""

from __future__ import annotations

import contextlib
from typing import Any, Dict, Iterator, List, Optional, Union

from repro.telemetry.sampling import ALWAYS_SAMPLER
from repro.telemetry.span import (
    DROPPED_CONTEXT,
    STATUS_ERROR,
    STATUS_OK,
    Span,
    SpanContext,
    _NullSpan,
)
from repro.util.clock import SimClock
from repro.util.ids import IdFactory

ParentLike = Union[None, str, Span, SpanContext]

# sentinel: "parent under whatever context is active right now"
CURRENT = "current"


class _Activation:
    """Slotted context manager for :meth:`Tracer.activate`.

    Activation brackets every task dispatch and every span body; the
    generator-based ``@contextmanager`` protocol costs three extra calls
    per entry, which is real money at a million tasks.
    """

    __slots__ = ("_stack", "_context")

    def __init__(
        self, stack: List[Optional[SpanContext]], context: Optional[SpanContext]
    ) -> None:
        self._stack = stack
        self._context = context

    def __enter__(self) -> None:
        self._stack.append(self._context)

    def __exit__(self, exc_type, exc, tb) -> None:
        self._stack.pop()


class Tracer:
    """Produces hierarchical spans stamped with virtual time.

    ``sampler`` decides, once per trace *root*, whether the whole trace
    materializes (see :mod:`repro.telemetry.sampling`). A sampled-out
    root — and every descendant started under its context — resolves to
    one shared inert span: attach-but-sample-out costs no allocations.
    """

    enabled = True

    def __init__(
        self,
        clock: SimClock,
        register: bool = True,
        sampler=None,
    ) -> None:
        self.clock = clock
        self.sampler = sampler if sampler is not None else ALWAYS_SAMPLER
        self.spans: List[Span] = []
        self._by_id: Dict[str, Span] = {}
        self._stack: List[Optional[SpanContext]] = []
        self._trace_ids = IdFactory("trace")
        self._span_ids = IdFactory("span")
        self._dropped = _NullSpan()
        self._dropped.context = DROPPED_CONTEXT
        if register:
            clock.tracer = self

    # -- span lifecycle -----------------------------------------------------
    def start_span(
        self,
        name: str,
        parent: ParentLike = CURRENT,
        kind: str = "",
        **attributes: Any,
    ) -> Span:
        """Open a span starting now.

        ``parent`` is the active context by default; pass ``None`` to
        force a new trace root, or an explicit :class:`SpanContext` /
        :class:`Span` to parent across an async boundary.
        """
        if isinstance(parent, str):  # the CURRENT sentinel
            parent_ctx = self._stack[-1] if self._stack else None
        elif isinstance(parent, Span):
            parent_ctx = parent.context
        else:
            parent_ctx = parent  # SpanContext or None
        if parent_ctx is None:
            if not self.sampler.sample(name):
                return self._dropped
            trace_id = self._trace_ids.next_id()
            parent_id = ""
        else:
            if parent_ctx == DROPPED_CONTEXT:
                return self._dropped
            trace_id = parent_ctx.trace_id
            parent_id = parent_ctx.span_id
        span = Span(
            trace_id=trace_id,
            span_id=self._span_ids.next_id(),
            parent_id=parent_id,
            name=name,
            kind=kind,
            start=self.clock.now,
            attributes=attributes,
        )
        self.spans.append(span)
        self._by_id[span.span_id] = span
        return span

    def end_span(
        self,
        span: Span,
        status: str = STATUS_OK,
        error: str = "",
        at: Optional[float] = None,
    ) -> None:
        """Seal a span at ``at`` (default: now). Idempotent."""
        if isinstance(span, _NullSpan) or not span.is_open:
            return
        span.end = self.clock.now if at is None else at
        span.status = status
        span.error = error

    @contextlib.contextmanager
    def span(
        self,
        name: str,
        parent: ParentLike = CURRENT,
        kind: str = "",
        **attributes: Any,
    ) -> Iterator[Span]:
        """Open a span, activate it for the body, seal it on exit.

        An escaping exception marks the span ``error`` and re-raises.
        """
        opened = self.start_span(name, parent=parent, kind=kind, **attributes)
        try:
            with self.activate(opened.context):
                yield opened
        except BaseException as exc:
            self.end_span(
                opened, status=STATUS_ERROR,
                error=f"{type(exc).__name__}: {exc}",
            )
            raise
        else:
            self.end_span(opened)

    # -- context propagation ------------------------------------------------
    def current(self) -> Optional[SpanContext]:
        """The active context, or ``None`` outside any activation."""
        return self._stack[-1] if self._stack else None

    def activate(self, context: Optional[SpanContext]) -> _Activation:
        """Make ``context`` the active parent for the dynamic extent.

        ``activate(None)`` deliberately detaches: spans started inside
        become new trace roots (used to keep synthetic background work
        out of CI traces).
        """
        return _Activation(self._stack, context)

    def annotate(self, **attributes: Any) -> None:
        """Merge attributes into the currently active span, if any."""
        ctx = self.current()
        if ctx is None:
            return
        span = self._by_id.get(ctx.span_id)
        if span is not None:
            span.attributes.update(attributes)

    # -- queries ------------------------------------------------------------
    def get(self, span_id: str) -> Optional[Span]:
        return self._by_id.get(span_id)

    def trace(self, trace_id: str) -> List[Span]:
        """All spans of one trace, in creation order."""
        return [s for s in self.spans if s.trace_id == trace_id]

    def roots(self) -> List[Span]:
        """Spans with no parent — one per trace."""
        return [s for s in self.spans if not s.parent_id]

    def children(self, span_id: str) -> List[Span]:
        return [s for s in self.spans if s.parent_id == span_id]

    def find(self, kind: Optional[str] = None,
             name_prefix: str = "") -> List[Span]:
        return [
            s for s in self.spans
            if (kind is None or s.kind == kind)
            and s.name.startswith(name_prefix)
        ]

    def subtree(self, span_id: str) -> List[Span]:
        """A span and all its descendants, depth-first."""
        root = self._by_id.get(span_id)
        if root is None:
            return []
        out: List[Span] = []
        stack = [root]
        while stack:
            span = stack.pop()
            out.append(span)
            stack.extend(reversed(self.children(span.span_id)))
        return out

    def span_tree(self, trace_id: str) -> List[Dict[str, Any]]:
        """The trace as nested dicts — a comparable, deterministic shape.

        Children appear in creation order; ids are omitted so two
        identical runs of different worlds compare equal.
        """
        by_parent: Dict[str, List[Span]] = {}
        for span in self.trace(trace_id):
            by_parent.setdefault(span.parent_id, []).append(span)

        def node(span: Span) -> Dict[str, Any]:
            return {
                "name": span.name,
                "kind": span.kind,
                "status": span.status,
                "start": span.start,
                "end": span.end,
                "children": [
                    node(c) for c in by_parent.get(span.span_id, [])
                ],
            }

        return [node(s) for s in by_parent.get("", [])]


class _NoopActivation:
    """Reusable do-nothing activation handed out by :class:`NullTracer`."""

    __slots__ = ()

    def __enter__(self) -> None:
        return None

    def __exit__(self, exc_type, exc, tb) -> None:
        return None


_NOOP_ACTIVATION = _NoopActivation()


class NullTracer:
    """API-compatible tracer that records nothing.

    Used when telemetry is disabled; every call is a no-op, so
    instrumented code needs no enabled/disabled branches.
    """

    enabled = False

    def __init__(self) -> None:
        self.spans: List[Span] = []
        self._null = _NullSpan()

    def start_span(self, name: str, parent: ParentLike = CURRENT,
                   kind: str = "", **attributes: Any) -> _NullSpan:
        return self._null

    def end_span(self, span: Any, status: str = STATUS_OK,
                 error: str = "", at: Optional[float] = None) -> None:
        pass

    @contextlib.contextmanager
    def span(self, name: str, parent: ParentLike = CURRENT,
             kind: str = "", **attributes: Any) -> Iterator[_NullSpan]:
        yield self._null

    def current(self) -> None:
        return None

    def activate(self, context: Optional[SpanContext]) -> "_NoopActivation":
        return _NOOP_ACTIVATION

    def annotate(self, **attributes: Any) -> None:
        pass

    def get(self, span_id: str) -> None:
        return None

    def trace(self, trace_id: str) -> List[Span]:
        return []

    def roots(self) -> List[Span]:
        return []

    def children(self, span_id: str) -> List[Span]:
        return []

    def find(self, kind: Optional[str] = None,
             name_prefix: str = "") -> List[Span]:
        return []

    def subtree(self, span_id: str) -> List[Span]:
        return []

    def span_tree(self, trace_id: str) -> List[Dict[str, Any]]:
        return []


NULL_TRACER = NullTracer()


def tracer_of(clock: SimClock) -> Union[Tracer, NullTracer]:
    """The tracer ambient to this clock's simulation (never ``None``)."""
    return getattr(clock, "tracer", None) or NULL_TRACER
