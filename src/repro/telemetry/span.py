"""Hierarchical spans: the unit of the telemetry timeline.

A :class:`Span` is one named interval of *virtual* time with a position
in a trace tree (``trace_id``/``span_id``/``parent_id``), free-form
attributes, and an ok/error status. Spans are produced by
:class:`~repro.telemetry.tracer.Tracer` and never advance the clock —
telemetry observes the simulation, it must not perturb it.

This is distinct from :class:`repro.util.clock.MeasuredRegion` (the
object ``SimClock.measure`` yields), which is a cost-accounting device
with no name, tree position, or status.
"""

from __future__ import annotations

from typing import Any, Dict, NamedTuple, Optional

STATUS_OK = "ok"
STATUS_ERROR = "error"


class SpanContext(NamedTuple):
    """The portable identity of a span: enough to parent children on it."""

    trace_id: str
    span_id: str


# The context a sampled-out trace root hands to its would-be children:
# any span started under it is dropped too, so an unsampled trace costs
# zero span allocations end to end. Distinct from ``None`` (= "no parent,
# start a fresh root"), which triggers a *new* sampling decision.
DROPPED_CONTEXT = SpanContext("", "")


class Span:
    """One named interval in a trace tree.

    ``end`` is ``None`` while the span is open; :meth:`Tracer.end_span`
    seals it. ``kind`` is a coarse layer label (``"workflow"``, ``"job"``,
    ``"step"``, ``"action"``, ``"task"``, ``"execute"``, ``"slurm"``,
    ``"node"``) that exporters use to assign display lanes.
    """

    __slots__ = (
        "trace_id", "span_id", "parent_id", "name", "kind",
        "start", "end", "_attributes", "status", "error",
    )

    def __init__(
        self,
        trace_id: str,
        span_id: str,
        parent_id: str,
        name: str,
        kind: str,
        start: float,
        attributes: Optional[Dict[str, Any]] = None,
    ) -> None:
        self.trace_id = trace_id
        self.span_id = span_id
        self.parent_id = parent_id
        self.name = name
        self.kind = kind
        self.start = start
        self.end: Optional[float] = None
        # Lazily materialized: the tracer hands over a fresh kwargs dict
        # (adopted, not copied), and attribute-less spans never allocate
        # one at all until someone actually reads or writes attributes.
        self._attributes: Optional[Dict[str, Any]] = attributes or None
        self.status = STATUS_OK
        self.error = ""

    @property
    def attributes(self) -> Dict[str, Any]:
        attrs = self._attributes
        if attrs is None:
            attrs = self._attributes = {}
        return attrs

    @property
    def context(self) -> SpanContext:
        return SpanContext(self.trace_id, self.span_id)

    @property
    def is_open(self) -> bool:
        return self.end is None

    @property
    def duration(self) -> Optional[float]:
        return None if self.end is None else self.end - self.start

    @property
    def ok(self) -> bool:
        return self.status == STATUS_OK

    def to_dict(self) -> Dict[str, Any]:
        """JSON-ready form (used by provenance timelines and exporters)."""
        return {
            "trace_id": self.trace_id,
            "span_id": self.span_id,
            "parent_id": self.parent_id,
            "name": self.name,
            "kind": self.kind,
            "start": self.start,
            "end": self.end,
            "status": self.status,
            "error": self.error,
            "attributes": dict(self._attributes or {}),
        }

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        end = "open" if self.end is None else f"{self.end:.3f}"
        return (
            f"Span({self.name!r}, {self.span_id}, "
            f"[{self.start:.3f}, {end}], {self.status})"
        )


class _NullSpan:
    """The inert span a :class:`NullTracer` hands out.

    Accepts attribute updates and exposes ``context=None`` so call sites
    can pass ``span.context`` around without branching on telemetry
    being enabled.
    """

    context = None
    trace_id = ""
    span_id = ""
    parent_id = ""
    name = ""
    kind = ""
    start = 0.0
    end: Optional[float] = 0.0
    status = STATUS_OK
    error = ""
    is_open = False
    duration = 0.0
    ok = True

    def __init__(self) -> None:
        self.attributes: Dict[str, Any] = {}

    def to_dict(self) -> Dict[str, Any]:
        return {}

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return "NullSpan()"
