"""End-to-end telemetry for the simulated CI→HPC stack.

Three pieces, deliberately decoupled from the hot path:

* :class:`Tracer` — hierarchical spans (workflow run → job → step →
  CORRECT action → FaaS task → Slurm job → node execution) with context
  propagation across the async task lifecycle, stamped with virtual
  time, never advancing it.
* :class:`MetricsRegistry` + :class:`EventMetricsBridge` — counters,
  gauges, and histograms derived entirely from :class:`EventLog`
  subscriptions.
* Exporters — Chrome trace-event JSON (Perfetto-loadable) and a
  plain-text report, attachable to provenance records and research
  crates.

``python -m repro trace fig4`` exercises the whole layer.
"""

from repro.telemetry.export import (
    chrome_trace,
    dumps_chrome_trace,
    text_report,
    validate_chrome_trace,
)
from repro.telemetry.metrics import (
    Counter,
    EventMetricsBridge,
    Gauge,
    Histogram,
    MetricsRegistry,
    percentile,
)
from repro.telemetry.sampling import (
    ALWAYS_SAMPLER,
    NEVER_SAMPLER,
    AlwaysSampler,
    NeverSampler,
    RatioSampler,
)
from repro.telemetry.span import DROPPED_CONTEXT, Span, SpanContext
from repro.telemetry.tracer import NULL_TRACER, NullTracer, Tracer, tracer_of

__all__ = [
    "ALWAYS_SAMPLER",
    "AlwaysSampler",
    "Counter",
    "DROPPED_CONTEXT",
    "EventMetricsBridge",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "NEVER_SAMPLER",
    "NeverSampler",
    "NULL_TRACER",
    "NullTracer",
    "RatioSampler",
    "Span",
    "SpanContext",
    "Tracer",
    "chrome_trace",
    "dumps_chrome_trace",
    "percentile",
    "text_report",
    "tracer_of",
    "validate_chrome_trace",
]
