"""End-to-end telemetry for the simulated CI→HPC stack.

Three pieces, deliberately decoupled from the hot path:

* :class:`Tracer` — hierarchical spans (workflow run → job → step →
  CORRECT action → FaaS task → Slurm job → node execution) with context
  propagation across the async task lifecycle, stamped with virtual
  time, never advancing it.
* :class:`MetricsRegistry` + :class:`EventMetricsBridge` — counters,
  gauges, and histograms derived entirely from :class:`EventLog`
  subscriptions.
* Exporters — Chrome trace-event JSON (Perfetto-loadable) and a
  plain-text report, attachable to provenance records and research
  crates.

The continuous-observability plane builds on the same spine:

* :class:`TimeSeriesStore` — windowed, ring-buffered counter / gauge /
  quantile series fed by the bridge (bounded memory at a million tasks);
* :class:`SLOEngine` — declarative objectives + multi-window burn-rate
  alert rules, emitting ``alert.fired``/``alert.resolved`` events;
* :class:`HealthScorer` — per-endpoint/per-pool health from rolling
  success rate, queue trend, and breaker state;
* OpenMetrics text + JSON dashboard exporters.

``python -m repro trace fig4`` exercises the base layer and
``python -m repro obs fig4`` the observability plane.
"""

from repro.telemetry.export import (
    chrome_trace,
    dumps_chrome_trace,
    text_report,
    validate_chrome_trace,
)
from repro.telemetry.health import (
    DEGRADED,
    HEALTHY,
    UNHEALTHY,
    HealthScorer,
)
from repro.telemetry.metrics import (
    DEFAULT_BOUNDS,
    BucketHistogram,
    Counter,
    EventMetricsBridge,
    Gauge,
    Histogram,
    MetricsRegistry,
    percentile,
)
from repro.telemetry.openmetrics import (
    dashboard_snapshot,
    openmetrics_text,
    validate_openmetrics,
)
from repro.telemetry.slo import (
    AlertRule,
    Objective,
    SLOEngine,
    default_slo_pack,
    overload_slo_pack,
)
from repro.telemetry.timeseries import (
    DEFAULT_WINDOW,
    CounterSeries,
    GaugeSeries,
    QuantileSeries,
    TimeSeriesStore,
)
from repro.telemetry.sampling import (
    ALWAYS_SAMPLER,
    NEVER_SAMPLER,
    AlwaysSampler,
    NeverSampler,
    RatioSampler,
)
from repro.telemetry.span import DROPPED_CONTEXT, Span, SpanContext
from repro.telemetry.tracer import NULL_TRACER, NullTracer, Tracer, tracer_of

__all__ = [
    "ALWAYS_SAMPLER",
    "AlertRule",
    "AlwaysSampler",
    "BucketHistogram",
    "Counter",
    "CounterSeries",
    "DEFAULT_BOUNDS",
    "DEFAULT_WINDOW",
    "DEGRADED",
    "DROPPED_CONTEXT",
    "EventMetricsBridge",
    "Gauge",
    "GaugeSeries",
    "HEALTHY",
    "HealthScorer",
    "Histogram",
    "MetricsRegistry",
    "NEVER_SAMPLER",
    "NeverSampler",
    "NULL_TRACER",
    "NullTracer",
    "Objective",
    "QuantileSeries",
    "RatioSampler",
    "SLOEngine",
    "Span",
    "SpanContext",
    "TimeSeriesStore",
    "Tracer",
    "UNHEALTHY",
    "chrome_trace",
    "dashboard_snapshot",
    "default_slo_pack",
    "dumps_chrome_trace",
    "openmetrics_text",
    "overload_slo_pack",
    "percentile",
    "text_report",
    "tracer_of",
    "validate_chrome_trace",
    "validate_openmetrics",
]
