"""Per-endpoint / per-pool health scoring from windowed series.

The :class:`HealthScorer` reads the windowed series the metrics bridge
records — rolling success rate, queue-depth trend, breaker state — and
folds them into one score in [0, 1], classified as ``healthy`` /
``degraded`` / ``unhealthy``. It is a pure *reader*: scoring never
creates series, never advances the bucket clock, and asking about an
endpoint nobody has observed returns a perfect score (no evidence of
trouble).

The score is intentionally simple and fully deterministic:

* base = rolling success rate (completed-ok vs failed attempts) over
  the scoring window; 1.0 when there is no signal;
* scaled by ``1 - breaker_level`` (closed = 1.0 → unchanged,
  half-open = 0.5 → halved, open = 1.0 → zero: an open breaker is
  *unhealthy* no matter how good history looks);
* minus a fixed penalty when the endpoint's queue depth trended *up*
  across the window (backlog building faster than it drains);
* scaled by ``1 - gray_score`` when a straggler detector is attached
  (``gray_of``): a fail-slow endpoint succeeds at everything, so
  success rate and breaker level never catch it — the gray score is
  the only health signal a slow-but-alive member produces.

The ``least-loaded`` router can consume scores as an optional
tie-breaker (prefer the healthier endpoint among equally-loaded ones);
with no scorer attached routing is byte-identical to before.
"""

from __future__ import annotations

from typing import Dict, Iterable, List

from repro.telemetry.timeseries import TimeSeriesStore

HEALTHY = "healthy"
DEGRADED = "degraded"
UNHEALTHY = "unhealthy"

DEFAULT_HEALTH_WINDOW = 300.0
TREND_PENALTY = 0.1
HEALTHY_FLOOR = 0.9
DEGRADED_FLOOR = 0.5


class HealthScorer:
    """Scores endpoints from the time-series store, on demand."""

    def __init__(
        self,
        store: TimeSeriesStore,
        window: float = DEFAULT_HEALTH_WINDOW,
    ) -> None:
        if window <= 0:
            raise ValueError(f"health window must be positive, got {window}")
        self.store = store
        self.window = window
        # optional (endpoint, now) -> [0, 1] gray-failure score from a
        # straggler detector; None keeps scoring byte-identical to a
        # world without the hedging plane
        self.gray_of = None

    # -- scoring -------------------------------------------------------------
    def success_rate(self, endpoint: str, now: float) -> float:
        """ok / (ok + failed attempts) over the window; 1.0 on silence."""
        ok_series = self.store.get("faas.tasks.ok", endpoint=endpoint)
        err_series = self.store.get("faas.tasks.err", endpoint=endpoint)
        ok = ok_series.sum_over(now, self.window) if ok_series else 0.0
        err = err_series.sum_over(now, self.window) if err_series else 0.0
        total = ok + err
        if total <= 0:
            return 1.0
        return ok / total

    def breaker_level(self, endpoint: str, now: float) -> float:
        """Current breaker gauge: 0 closed, 0.5 half-open, 1 open."""
        gauge = self.store.get("faas.breaker.state", endpoint=endpoint)
        return gauge.value if gauge is not None else 0.0

    def queue_trend(self, endpoint: str, now: float) -> float:
        """Queue-depth change across the window (positive = backing up)."""
        gauge = self.store.get("faas.queue.depth", endpoint=endpoint)
        return gauge.trend_over(now, self.window) if gauge is not None else 0.0

    def score(self, endpoint: str, now: float) -> float:
        base = self.success_rate(endpoint, now)
        base *= 1.0 - self.breaker_level(endpoint, now)
        if self.queue_trend(endpoint, now) > 0:
            base -= TREND_PENALTY
        if self.gray_of is not None:
            base *= 1.0 - min(1.0, max(0.0, self.gray_of(endpoint, now)))
        return min(1.0, max(0.0, base))

    def state(self, endpoint: str, now: float) -> str:
        score = self.score(endpoint, now)
        if score >= HEALTHY_FLOOR:
            return HEALTHY
        if score >= DEGRADED_FLOOR:
            return DEGRADED
        return UNHEALTHY

    def pool_score(self, members: Iterable[str], now: float) -> float:
        """Mean member score; 1.0 for an empty pool (nothing to fault)."""
        scores = [self.score(endpoint, now) for endpoint in members]
        if not scores:
            return 1.0
        return sum(scores) / len(scores)

    # -- reporting -----------------------------------------------------------
    def known_endpoints(self) -> List[str]:
        """Endpoints any health-relevant series has been observed for."""
        seen = set()
        for name in (
            "faas.tasks.submitted", "faas.tasks.ok", "faas.tasks.err",
            "faas.queue.depth", "faas.breaker.state",
        ):
            for labels in self.store.labels_for(name):
                endpoint = labels.get("endpoint")
                if endpoint:
                    seen.add(endpoint)
        return sorted(seen)

    def snapshot(self, now: float) -> Dict[str, Dict[str, float]]:
        """JSON-ready per-endpoint health breakdown."""
        out: Dict[str, Dict[str, float]] = {}
        for endpoint in self.known_endpoints():
            out[endpoint] = {
                "score": round(self.score(endpoint, now), 6),
                "state": self.state(endpoint, now),
                "success_rate": round(self.success_rate(endpoint, now), 6),
                "breaker_level": self.breaker_level(endpoint, now),
                "queue_trend": self.queue_trend(endpoint, now),
            }
        return out

    def report(self, now: float) -> str:
        """Plain-text health table at virtual time ``now``."""
        lines = [f"endpoint health at t={now:.1f}s (window {self.window:.0f}s):"]
        snapshot = self.snapshot(now)
        if not snapshot:
            lines.append("  (no endpoints observed)")
        for endpoint, row in snapshot.items():
            lines.append(
                f"  {endpoint:<28} {row['state']:<10} "
                f"score={row['score']:.3f} "
                f"ok={row['success_rate']:.3f} "
                f"breaker={row['breaker_level']:.1f} "
                f"trend={row['queue_trend']:+.1f}"
            )
        return "\n".join(lines)
