"""Windowed time-series: virtual-time-bucketed counters, gauges, quantiles.

:class:`MetricsRegistry` answers "how did the run go?" with one summary
per instrument. This module answers "*when* did it go wrong?": every
observation lands in a virtual-time bucket of fixed width, and each
series keeps a bounded ring of recent buckets — memory stays flat at a
million tasks no matter how long the run is.

Three series types mirror the registry's instruments:

* :class:`CounterSeries` — per-bucket increments plus a cumulative
  total (``rate_over`` turns a window of buckets into events/second);
* :class:`GaugeSeries` — last value per bucket with a high-water mark,
  plus a ``trend_over`` slope sign used by the health scorer;
* :class:`QuantileSeries` — one fixed-bound streaming histogram per
  bucket; windows merge bucket histograms, so a p95-over-the-last-five-
  minutes costs O(buckets × bounds), never O(observations).

The store is fed exclusively by the
:class:`~repro.telemetry.metrics.EventMetricsBridge` subscriber (nothing
in the hot path calls it directly) and notifies registered observers —
the SLO engine — whenever an event's time closes a bucket. Everything is
deterministic: the same event stream produces byte-identical buckets.
"""

from __future__ import annotations

from bisect import bisect_left
from collections import deque
from typing import Any, Callable, Deque, Dict, Iterator, List, Optional, Tuple

from repro.telemetry.metrics import DEFAULT_BOUNDS, BucketHistogram, LabelKey

DEFAULT_WINDOW = 60.0
DEFAULT_MAX_BUCKETS = 256


def bucket_index(time: float, window: float) -> int:
    """The bucket an observation at ``time`` belongs to."""
    return int(time // window)


class _Series:
    """Common ring bookkeeping: a deque of ``(index, payload)`` pairs.

    Buckets appear only when an observation lands in them (sparse), in
    strictly increasing index order, and the ring drops its oldest
    bucket once ``max_buckets`` is exceeded — the bounded-memory
    guarantee.
    """

    __slots__ = ("window", "max_buckets", "_ring")

    kind = "series"

    def __init__(self, window: float, max_buckets: int) -> None:
        self.window = window
        self.max_buckets = max_buckets
        self._ring: Deque[List[Any]] = deque(maxlen=max_buckets)

    def _bucket(self, time: float) -> List[Any]:
        """The (created-on-demand) bucket payload pair for ``time``."""
        index = int(time // self.window)  # inlined bucket_index (hot path)
        ring = self._ring
        if ring and ring[-1][0] == index:
            return ring[-1]
        entry = [index, self._new_payload()]
        ring.append(entry)  # deque(maxlen=...) drops the oldest bucket
        return entry

    def _new_payload(self) -> Any:  # pragma: no cover - overridden
        raise NotImplementedError

    def _in_window(self, until: float, window: float) -> List[List[Any]]:
        """Ring entries covering ``[until-window, until)``, oldest first.

        When ``until`` sits exactly on a bucket boundary (the SLO
        engine's evaluation points), the bucket *starting* there is
        excluded — it belongs to the next window. A mid-bucket ``until``
        (health queries at ``clock.now``) includes the partial bucket.

        Scans from the newest end and stops at the first bucket older
        than the window: SLO windows cover the ring's tail, so each
        query touches O(window) entries, not O(max_buckets).
        """
        first = bucket_index(until - window, self.window)
        last = bucket_index(until, self.window)
        if last * self.window >= until:
            last -= 1
        out: List[List[Any]] = []
        for entry in reversed(self._ring):
            index = entry[0]
            if index > last:
                continue
            if index < first:
                break
            out.append(entry)
        out.reverse()
        return out

    def buckets(self) -> List[Tuple[float, Any]]:
        """``(bucket_start_time, payload_snapshot)`` pairs, oldest first."""
        return [
            (entry[0] * self.window, self._snapshot(entry[1]))
            for entry in self._ring
        ]

    def _snapshot(self, payload: Any) -> Any:
        return payload

    def __len__(self) -> int:
        return len(self._ring)


class CounterSeries(_Series):
    """Per-bucket increments plus the cumulative total."""

    __slots__ = ("total",)

    kind = "counter"

    def __init__(self, window: float, max_buckets: int) -> None:
        super().__init__(window, max_buckets)
        self.total = 0.0

    def _new_payload(self) -> float:
        return 0.0

    def inc(self, time: float, amount: float = 1.0) -> None:
        if amount < 0:
            raise ValueError("counter series only go up")
        # _bucket() inlined: this runs for every task-lifecycle event
        index = int(time // self.window)
        ring = self._ring
        if ring and ring[-1][0] == index:
            ring[-1][1] += amount
        else:
            ring.append([index, amount])
        self.total += amount

    def sum_over(self, until: float, window: float) -> float:
        """Total increments in the closed buckets of ``[until-window, until)``."""
        return sum(entry[1] for entry in self._in_window(until, window))

    def rate_over(self, until: float, window: float) -> float:
        """Increments per second over the window."""
        return self.sum_over(until, window) / window if window > 0 else 0.0


class GaugeSeries(_Series):
    """Last value per bucket; remembers the all-time high-water mark."""

    __slots__ = ("value", "max_value")

    kind = "gauge"

    def __init__(self, window: float, max_buckets: int) -> None:
        super().__init__(window, max_buckets)
        self.value = 0.0
        self.max_value = 0.0

    def _new_payload(self) -> float:
        return 0.0

    def set(self, time: float, value: float) -> None:
        # _bucket() inlined: queue-depth gauges move on every submit
        # and dispatch, so this is as hot as CounterSeries.inc
        index = int(time // self.window)
        ring = self._ring
        if ring and ring[-1][0] == index:
            ring[-1][1] = value
        else:
            ring.append([index, value])
        self.value = value
        if value > self.max_value:
            self.max_value = value

    def inc(self, time: float, amount: float = 1.0) -> None:
        self.set(time, self.value + amount)

    def dec(self, time: float, amount: float = 1.0) -> None:
        value = self.value - amount
        index = int(time // self.window)
        ring = self._ring
        if ring and ring[-1][0] == index:
            ring[-1][1] = value
        else:
            ring.append([index, value])
        self.value = value

    def trend_over(self, until: float, window: float) -> float:
        """Last-minus-first bucket value across the window (slope sign).

        Positive means the gauge is rising (e.g. a queue backing up);
        zero when fewer than two buckets fall inside the window.
        """
        values = [entry[1] for entry in self._in_window(until, window)]
        if len(values) < 2:
            return 0.0
        return values[-1] - values[0]


class QuantileSeries(_Series):
    """One fixed-bound histogram per bucket; windows merge buckets."""

    __slots__ = ("bounds", "count", "total")

    kind = "quantile"

    def __init__(
        self,
        window: float,
        max_buckets: int,
        bounds: Tuple[float, ...] = DEFAULT_BOUNDS,
    ) -> None:
        super().__init__(window, max_buckets)
        self.bounds = bounds
        self.count = 0
        self.total = 0.0

    def _new_payload(self) -> BucketHistogram:
        return BucketHistogram(self.bounds)

    def observe(self, time: float, value: float) -> None:
        # _bucket() and BucketHistogram.observe() inlined: two of these
        # run per dispatch (all-endpoints + per-endpoint series)
        index = int(time // self.window)
        ring = self._ring
        if ring and ring[-1][0] == index:
            hist = ring[-1][1]
        else:
            hist = BucketHistogram(self.bounds)
            ring.append([index, hist])
        hist.counts[bisect_left(hist.bounds, value)] += 1
        hist.count += 1
        hist.total += value
        if value > hist.max:
            hist.max = value
        self.count += 1
        self.total += value

    def merged_over(self, until: float, window: float) -> BucketHistogram:
        merged = BucketHistogram(self.bounds)
        for entry in self._in_window(until, window):
            merged.merge(entry[1])
        return merged

    def quantile_over(self, p: float, until: float, window: float) -> float:
        """Percentile over the window; 0.0 when the window is empty."""
        merged = self.merged_over(until, window)
        return merged.percentile(p) if merged.count else 0.0

    def _snapshot(self, payload: BucketHistogram) -> Dict[str, float]:
        return payload.summary()


class TimeSeriesStore:
    """Named, labelled windowed series, created on first use.

    The windowed twin of :class:`~repro.telemetry.metrics.MetricsRegistry`
    — same ``name + labels`` addressing, same create-on-first-use
    discipline, same sorted :meth:`collect` — plus bucket-close
    notification for observers (the SLO engine).
    """

    def __init__(
        self,
        window: float = DEFAULT_WINDOW,
        max_buckets: int = DEFAULT_MAX_BUCKETS,
        bounds: Tuple[float, ...] = DEFAULT_BOUNDS,
    ) -> None:
        if window <= 0:
            raise ValueError(f"window must be positive, got {window}")
        self.window = float(window)
        self.max_buckets = max_buckets
        self.bounds = bounds
        self._series: Dict[Tuple[str, LabelKey], _Series] = {}
        self._observers: List[Callable[[float], None]] = []
        self._last_bucket: Optional[int] = None

    def _get(self, cls, name: str, labels: Dict[str, Any]) -> Any:
        key = (name, tuple(sorted((k, str(v)) for k, v in labels.items())))
        series = self._series.get(key)
        if series is None:
            if cls is QuantileSeries:
                series = cls(self.window, self.max_buckets, self.bounds)
            else:
                series = cls(self.window, self.max_buckets)
            self._series[key] = series
        elif not isinstance(series, cls):
            raise TypeError(
                f"series {name!r} already registered as {type(series).__name__}"
            )
        return series

    def get(self, name: str, **labels: Any) -> Optional[_Series]:
        """The series for ``name`` + ``labels``, or None — never creates.

        The SLO engine and health scorer read through this so that
        querying a series that no event has touched yet does not
        conjure an empty one into snapshots and exports.
        """
        key = (name, tuple(sorted((k, str(v)) for k, v in labels.items())))
        return self._series.get(key)

    def counter(self, name: str, **labels: Any) -> CounterSeries:
        return self._get(CounterSeries, name, labels)

    def gauge(self, name: str, **labels: Any) -> GaugeSeries:
        return self._get(GaugeSeries, name, labels)

    def quantile(self, name: str, **labels: Any) -> QuantileSeries:
        return self._get(QuantileSeries, name, labels)

    def __len__(self) -> int:
        return len(self._series)

    def collect(self) -> Iterator[Tuple[str, Dict[str, str], _Series]]:
        """(name, labels, series) triples in sorted order."""
        for (name, label_key) in sorted(self._series):
            yield name, dict(label_key), self._series[(name, label_key)]

    def labels_for(self, name: str) -> List[Dict[str, str]]:
        """Every label set a series name has been observed under."""
        return [
            dict(label_key)
            for (series_name, label_key) in sorted(self._series)
            if series_name == name
        ]

    def find(
        self, name: str, **labels: Any
    ) -> List[Tuple[Dict[str, str], _Series]]:
        """Series matching ``name`` whose labels include ``labels``."""
        wanted = {(k, str(v)) for k, v in labels.items()}
        return [
            (dict(label_key), self._series[(series_name, label_key)])
            for (series_name, label_key) in sorted(self._series)
            if series_name == name and wanted.issubset(set(label_key))
        ]

    # -- observers ----------------------------------------------------------
    def add_observer(self, callback: Callable[[float], None]) -> None:
        """``callback(bucket_end_time)`` fires when a bucket closes."""
        self._observers.append(callback)

    def advance_to(self, time: float) -> None:
        """Note the event stream has reached ``time``; close buckets.

        Called by the metrics bridge after every recorded event. When
        ``time`` lands in a later bucket than the last one seen, each
        skipped-or-closed bucket boundary is reported to observers in
        order — so SLO evaluation happens at deterministic virtual
        times regardless of event spacing.
        """
        index = int(time // self.window)  # inlined bucket_index (hot path)
        last = self._last_bucket
        if last is None:
            self._last_bucket = index
            return
        if index <= last:
            return
        self._last_bucket = index
        for closed in range(last + 1, index + 1):
            boundary = closed * self.window
            for callback in self._observers:
                callback(boundary)

    def snapshot(self) -> Dict[str, Any]:
        """JSON-ready dump of every series' ring (deterministic order)."""
        out: Dict[str, Any] = {}
        for name, labels, series in self.collect():
            suffix = ",".join(f"{k}={v}" for k, v in sorted(labels.items()))
            key = f"{name}{{{suffix}}}" if suffix else name
            entry: Dict[str, Any] = {
                "kind": series.kind,
                "window": series.window,
                "buckets": [
                    [start, value] for start, value in series.buckets()
                ],
            }
            if isinstance(series, CounterSeries):
                entry["total"] = series.total
            elif isinstance(series, GaugeSeries):
                entry["value"] = series.value
                entry["max"] = series.max_value
            elif isinstance(series, QuantileSeries):
                entry["count"] = series.count
            out[key] = entry
        return out
