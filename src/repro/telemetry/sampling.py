"""Span sampling: decide per trace root whether spans materialize at all.

The tracer consults a sampling policy once per *root* span; a sampled-out
root returns the inert null span carrying the :data:`DROPPED_CONTEXT`
sentinel, and every descendant started under that context is dropped too
— the whole subtree costs zero allocations. Default is
:class:`AlwaysSampler`, which preserves the historical behaviour (and
byte-identical experiment outputs) exactly.

Sampling decisions are deterministic: :class:`RatioSampler` hashes a
seed, the root span's name, and a per-sampler decision counter, so two
runs of the same world sample the same trace roots — reproducibility
holds even for the observability layer itself.
"""

from __future__ import annotations

import hashlib

# denominator for mapping an 8-byte digest prefix onto [0, 1)
_SCALE = float(1 << 64)


class AlwaysSampler:
    """Sample every trace root (the default; zero behavioral change)."""

    rate = 1.0

    def sample(self, name: str) -> bool:
        return True


class NeverSampler:
    """Drop every trace root: tracer attached, no spans materialized.

    The cheapest way to run "telemetry wired but off" — subscribers and
    metrics still see events; span trees are empty.
    """

    rate = 0.0

    def sample(self, name: str) -> bool:
        return False


class RatioSampler:
    """Keep a deterministic ``rate`` fraction of trace roots.

    The decision for the Nth root named ``name`` is a pure function of
    ``(seed, name, N)``: identical runs keep identical roots.
    """

    def __init__(self, rate: float, seed: int = 0) -> None:
        if not 0.0 <= rate <= 1.0:
            raise ValueError(f"sampling rate must be in [0, 1], got {rate}")
        self.rate = float(rate)
        self.seed = int(seed)
        self._decisions = 0

    def sample(self, name: str) -> bool:
        if self.rate >= 1.0:
            return True
        if self.rate <= 0.0:
            return False
        self._decisions += 1
        material = f"{self.seed}\x1f{name}\x1f{self._decisions}"
        digest = hashlib.sha256(material.encode("utf-8")).digest()
        return int.from_bytes(digest[:8], "big") / _SCALE < self.rate


ALWAYS_SAMPLER = AlwaysSampler()
NEVER_SAMPLER = NeverSampler()
