"""Descriptors and the adapter interface for baseline CI frameworks."""

from __future__ import annotations

import abc
from dataclasses import dataclass
from typing import Dict, List, Tuple


@dataclass(frozen=True)
class CIFrameworkDescriptor:
    """One row of the paper's comparison tables."""

    name: str
    ci_platform: str
    compute_resource: str = ""
    objective: str = ""
    visualization: str = ""
    authentication: str = ""
    site_specific_execution: bool = False
    containerization: Tuple[str, ...] = ()

    def table2_row(self) -> List[str]:
        """Columns of Table 2 (scientific-application CI usage)."""
        return [
            self.name,
            self.ci_platform,
            self.compute_resource,
            self.objective,
            self.visualization,
        ]

    def table4_row(self) -> List[str]:
        """Columns of Table 4 (HPC CI framework features)."""
        return [
            self.name,
            self.ci_platform,
            self.authentication,
            "Yes" if self.site_specific_execution else "No",
            ", ".join(self.containerization) or "None",
        ]


class CIFrameworkAdapter(abc.ABC):
    """An executable stand-in for one baseline framework."""

    descriptor: CIFrameworkDescriptor

    @abc.abstractmethod
    def probe(self, world) -> Dict[str, bool]:
        """Demonstrate the descriptor's claims against the simulation.

        Returns named boolean checks; the Table 4 benchmark asserts they
        all hold and that they agree with the descriptor row.
        """


# Table 2 rows: CI usage in four scientific applications (descriptors
# only — these projects' stacks are surveyed, not re-implemented).
SCIENCE_APP_DESCRIPTORS: List[CIFrameworkDescriptor] = [
    CIFrameworkDescriptor(
        name="GNSS-SDR",
        ci_platform="GitLab",
        compute_resource="Cloud",
        objective="Reproducibility",
        visualization="Stored artifacts",
    ),
    CIFrameworkDescriptor(
        name="ATLAS",
        ci_platform="Jenkins",
        compute_resource="Internal HPC cluster",
        objective="CI",
        visualization="Monitoring dashboard",
    ),
    CIFrameworkDescriptor(
        name="AMBER",
        ci_platform="CruiseControl",
        compute_resource="Workstation",
        objective="CI",
        visualization="GNUPlot performance plots",
    ),
    CIFrameworkDescriptor(
        name="NeuroCI",
        ci_platform="CircleCI",
        compute_resource="Distributed HPC clusters",
        objective="Reproducibility",
        visualization="Scatter/distribution plots",
    ),
]
