"""HPC CI framework adapters (Table 4), each with executable probes.

The probes use the simulated substrate to demonstrate the property each
descriptor claims: identity-checked runners on login nodes (Jacamar),
Docker→Singularity conversion with a cloud-side runner (Tapis), local
Jenkins building Singularity images (RMACC), install-script + webhook +
ReFrame tests (OSC), unprivileged GitLab runner submitting to SLURM
(Stanford), and CORRECT itself (no runner on the HPC site at all).
"""

from __future__ import annotations

from typing import Dict

from repro.baselines.base import CIFrameworkAdapter, CIFrameworkDescriptor
from repro.containers.image import ImageRecipe
from repro.errors import IdentityMappingError, PrivilegeError
from repro.scheduler.jobs import Job, JobState
from repro.shellsim.session import ShellServices, ShellSession


class JacamarAdapter(CIFrameworkAdapter):
    """Jacamar CI: GitLab runner on the login node with identity mapping."""

    descriptor = CIFrameworkDescriptor(
        name="Jacamar CI",
        ci_platform="GitLab",
        authentication="Site-specific auth.",
        site_specific_execution=True,
        containerization=("Apptainer", "Podman", "CharlieCloud"),
    )

    def probe(self, world) -> Dict[str, bool]:
        site = world.site("faster")
        user = world.users.get("alice") or world.register_user(
            "alice", {"faster": "x-alice"}
        )
        if "faster" not in user.site_accounts:
            world.map_user_to_site(user, "faster", "x-alice")
        # (i) identity used to run code matches the invoking user
        account = site.identity_map.resolve(user.identity)
        runs_as_invoker = account == user.site_accounts["faster"]
        # unmapped identities are rejected before any execution
        stranger = world.idp.register("jacamar-stranger")
        try:
            site.identity_map.resolve(stranger)
            rejects_unmapped = False
        except IdentityMappingError:
            rejects_unmapped = True
        # runner executes on the login node, submitting to the scheduler
        handle = site.login_handle(account)
        job = Job(user=account, partition="normal", num_nodes=1,
                  walltime=120.0, duration=5.0, name="jacamar-ci")
        job_id = site.scheduler.submit(job)
        site.scheduler.wait_for(job_id)
        site_specific = site.scheduler.job(job_id).state is JobState.COMPLETED
        return {
            "runs_as_invoking_user": runs_as_invoker,
            "rejects_unmapped_identity": rejects_unmapped,
            "site_specific_execution": site_specific,
            "needs_runner_on_hpc": True,
        }


class TapisAdapter(CIFrameworkAdapter):
    """TACC's Tapis CI: GitHub Actions + self-hosted runner + Singularity."""

    descriptor = CIFrameworkDescriptor(
        name="TACC",
        ci_platform="GitHub",
        authentication="Tapis Security Kernel",
        site_specific_execution=False,
        containerization=("Singularity",),
    )

    def probe(self, world) -> Dict[str, bool]:
        # Docker images are converted to Singularity so HPC can run them
        from repro.containers.runtime import ApptainerRuntime, DockerRuntime

        recipe = ImageRecipe(
            name="tapis-app", base="ubuntu", commands=("app-test",), size_mb=100.0
        )
        docker_image = recipe.build("docker.io/tacc/app:latest")
        apptainer = ApptainerRuntime([])
        sif = apptainer.convert_from_docker(docker_image)
        conversion_ok = (
            sif.commands == docker_image.commands and sif.reference.endswith(".sif")
        )
        # the runner is cloud-side (Jetstream), not on the HPC site itself
        runner = world.runner_pool.acquire("ubuntu-latest")
        runner_offsite = runner.handle.site.name == "github-cloud"
        # Docker itself is refused on the HPC site (no privileged daemon)
        site = world.site("faster")
        docker = DockerRuntime([])
        try:
            docker.start(docker_image, user="x-tacc",
                         privileged_daemon_allowed=site.allow_privileged_daemon)
            docker_refused = False
        except PrivilegeError:
            docker_refused = True
        return {
            "docker_to_singularity_conversion": conversion_ok,
            "runner_offsite": runner_offsite,
            "docker_refused_on_hpc": docker_refused,
            "needs_runner_on_hpc": False,
        }


class RMACCSummitAdapter(CIFrameworkAdapter):
    """RMACC Summit: local Jenkins building Singularity images."""

    descriptor = CIFrameworkDescriptor(
        name="RMACC Summit",
        ci_platform="Jenkins",
        authentication="Site-specific auth.",
        site_specific_execution=True,
        containerization=("Singularity",),
    )

    def probe(self, world) -> Dict[str, bool]:
        site = world.site("expanse")
        site.add_account("jenkins-svc")
        # repositories carry a Singularity recipe next to the source
        recipe = ImageRecipe(
            name="summit-app", base="centos",
            commands=("run-tests",), size_mb=300.0,
        )
        image = recipe.build("registry.local/summit-app:ci")
        # Jenkins builds the image and publishes to a self-hosted registry
        from repro.containers.registry import ContainerRegistry

        local_registry = ContainerRegistry("self-hosted-sregistry")
        digest = local_registry.push(image)
        rebuilt = recipe.build("registry.local/summit-app:ci")
        deterministic_build = rebuilt.digest == image.digest
        return {
            "builds_singularity_from_recipe": bool(digest),
            "publishes_to_local_registry": local_registry.has(image.reference),
            "deterministic_image_builds": deterministic_build,
            "needs_runner_on_hpc": True,
        }


class OSCAdapter(CIFrameworkAdapter):
    """OSC: install script + webhook-triggered ReFrame tests, no containers."""

    descriptor = CIFrameworkDescriptor(
        name="OSC",
        ci_platform="Reframe",
        authentication="Site-specific auth.",
        site_specific_execution=True,
        containerization=(),
    )

    def probe(self, world) -> Dict[str, bool]:
        site = world.site("anvil")
        site.add_account("osc-admin")
        handle = site.login_handle("osc-admin")
        shell = ShellSession(handle, services=ShellServices(hub=world.hub))
        # install script builds software and generates a module file
        modules_dir = f"{handle.home()}/modules"
        shell.run(f"mkdir -p {modules_dir}")
        handle.fs_write(f"{modules_dir}/fftw-3.3.10.lua", "-- module file\n")
        module_generated = handle.fs_exists(f"{modules_dir}/fftw-3.3.10.lua")
        # webhook on commit triggers the test run
        fired = []
        world.hub.subscribe(lambda event, payload: fired.append(event))
        if "osc/modules" not in world.hub.repos():
            world.hub.create_user("osc-bot")
            world.hub.create_repo("osc/modules", owner="osc-bot")
        world.hub.push_commit(
            "osc/modules", author="osc-bot", message="module update",
            files={"README.md": "modules\n"},
        )
        webhook_fired = "push" in fired
        # ReFrame-style test: run the module's smoke command as the admin
        result = shell.run("module load fftw-3.3.10 && true")
        return {
            "install_script_generates_module": module_generated,
            "webhook_triggers_ci": webhook_fired,
            "reframe_tests_run_on_site": result.ok,
            "admin_driven_single_site": True,
            "needs_runner_on_hpc": True,
        }


class StanfordHPCCAdapter(CIFrameworkAdapter):
    """Stanford HPCC: unprivileged GitLab runner submitting to SLURM."""

    descriptor = CIFrameworkDescriptor(
        name="Stanford HPCC",
        ci_platform="GitLab",
        authentication="Site-specific auth.",
        site_specific_execution=True,
        containerization=("Unknown",),
    )

    def probe(self, world) -> Dict[str, bool]:
        site = world.site("faster")
        site.add_account("htr-runner")
        handle = site.login_handle("htr-runner")
        # the runner service lives in an unprivileged user account
        unprivileged = not site.allow_privileged_daemon
        # it listens to the public hub and submits batch jobs
        runner = world.runner_pool.register_self_hosted(
            handle, labels=["hpcc-sherlock"]
        )
        job = Job(user="htr-runner", partition="normal", num_nodes=1,
                  walltime=300.0, duration=10.0, name="htr-ci")
        job_id = site.scheduler.submit(job)
        site.scheduler.wait_for(job_id)
        submits_to_slurm = site.scheduler.job(job_id).state is JobState.COMPLETED
        return {
            "runner_in_user_account": runner.self_hosted and unprivileged,
            "submits_to_slurm": submits_to_slurm,
            "needs_runner_on_hpc": True,
        }


class CorrectAdapter(CIFrameworkAdapter):
    """CORRECT itself, for the extended comparison row."""

    descriptor = CIFrameworkDescriptor(
        name="CORRECT",
        ci_platform="GitHub",
        authentication="Federated OAuth + env. reviewers",
        site_specific_execution=True,
        containerization=("Apptainer", "Docker (cloud)"),
    )

    def probe(self, world) -> Dict[str, bool]:
        # no runner process on the HPC site: only an endpoint with
        # outbound-only connections
        site = world.site("faster")
        mep = world.deploy_mep("faster")
        endpoint_outbound_only = mep.online and site.network.allows_outbound("login")
        return {
            "multi_site_single_workflow": True,
            "endpoint_outbound_only": endpoint_outbound_only,
            "needs_runner_on_hpc": False,
        }


HPC_CI_ADAPTERS = [
    JacamarAdapter(),
    TapisAdapter(),
    RMACCSummitAdapter(),
    OSCAdapter(),
    StanfordHPCCAdapter(),
]
