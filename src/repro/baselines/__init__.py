"""Executable baseline CI frameworks for the survey tables.

Table 2 compares CI usage in four scientific applications (GNSS-SDR,
ATLAS, AMBER, NeuroCI); Table 4 compares five HPC CI frameworks (Jacamar
CI, TACC/Tapis, RMACC Summit, OSC, Stanford HPCC). Each adapter carries
the paper's descriptor row *and* a ``probe(world)`` method that
demonstrates the claimed properties against the simulated substrate, so
the benchmark that regenerates each table is executing real checks, not
printing a hardcoded matrix.
"""

from repro.baselines.base import (
    CIFrameworkDescriptor,
    CIFrameworkAdapter,
    SCIENCE_APP_DESCRIPTORS,
)
from repro.baselines.hpc_ci import (
    JacamarAdapter,
    TapisAdapter,
    RMACCSummitAdapter,
    OSCAdapter,
    StanfordHPCCAdapter,
    CorrectAdapter,
    HPC_CI_ADAPTERS,
)

__all__ = [
    "CIFrameworkDescriptor",
    "CIFrameworkAdapter",
    "SCIENCE_APP_DESCRIPTORS",
    "JacamarAdapter",
    "TapisAdapter",
    "RMACCSummitAdapter",
    "OSCAdapter",
    "StanfordHPCCAdapter",
    "CorrectAdapter",
    "HPC_CI_ADAPTERS",
]
