"""Hosted and self-hosted runners.

GitHub-hosted runners are ephemeral VMs in a cloud the user cannot pick
hardware for (§4.1) — exactly why they are unsuitable for HPC testing and
why CORRECT only uses them as a *control plane*. We model the runner
fleet as a dedicated "github-cloud" site: acquiring a runner creates a
fresh account (clean VM) and boots it (virtual seconds).

A self-hosted runner wraps a login handle on a user-chosen site — used by
the Jacamar/Tapis baseline adapters (Table 4).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional

from repro.envs.index import PackageIndex
from repro.errors import NoRunnerAvailable
from repro.shellsim.session import ShellServices, ShellSession
from repro.sites.hardware import HardwareProfile
from repro.sites.network import NetworkPolicy
from repro.sites.site import NodeHandle, Site
from repro.util.clock import SimClock
from repro.util.ids import IdFactory

# Boot time for a hosted runner VM (observed GitHub queue+boot latency).
RUNNER_BOOT_SECONDS = 12.0

HOSTED_LABELS = {"ubuntu-latest", "ubuntu-22.04", "ubuntu-24.04"}


@dataclass
class Runner:
    """One acquired runner: a node handle plus label metadata."""

    runner_id: str
    labels: frozenset
    handle: NodeHandle
    self_hosted: bool = False

    def shell(
        self,
        services: Optional[ShellServices] = None,
        env: Optional[Dict[str, str]] = None,
    ) -> ShellSession:
        return ShellSession(self.handle, services=services, env=env)


class RunnerPool:
    """Provisions hosted runner VMs (and registers self-hosted ones)."""

    def __init__(
        self,
        clock: SimClock,
        package_index: Optional[PackageIndex] = None,
    ) -> None:
        self.clock = clock
        # The runner cloud: modest VMs, full outbound internet.
        self.cloud = Site(
            name="github-cloud",
            clock=clock,
            profiles={
                "login": HardwareProfile(
                    cpu_speed=0.9,
                    cores_per_node=4,
                    memory_gb=16,
                    launch_overhead=0.4,
                )
            },
            login_count=1,
            network=NetworkPolicy(
                outbound_internet=frozenset({"login"}),
                latency_to_cloud=0.02,
                clone_bandwidth_mbps=80.0,
            ),
            package_index=package_index,
            allow_privileged_daemon=True,
        )
        self._ids = IdFactory("runner")
        self._self_hosted: List[Runner] = []

    def register_self_hosted(
        self, handle: NodeHandle, labels: List[str]
    ) -> Runner:
        runner = Runner(
            runner_id=self._ids.next_id(),
            labels=frozenset(labels) | {"self-hosted"},
            handle=handle,
            self_hosted=True,
        )
        self._self_hosted.append(runner)
        return runner

    def acquire(self, runs_on: str) -> Runner:
        """Provision a runner matching the ``runs-on`` label.

        Hosted labels boot a fresh VM (fresh account on the cloud site);
        anything else must match a registered self-hosted runner.
        """
        if runs_on in HOSTED_LABELS:
            self.clock.advance(RUNNER_BOOT_SECONDS)
            runner_id = self._ids.next_id()
            vm_user = f"vm-{runner_id}"
            self.cloud.add_account(vm_user)
            return Runner(
                runner_id=runner_id,
                labels=frozenset({runs_on}),
                handle=self.cloud.login_handle(vm_user),
            )
        for runner in self._self_hosted:
            if runs_on in runner.labels:
                return runner
        raise NoRunnerAvailable(
            f"no runner matches runs-on: {runs_on!r} "
            f"(hosted labels: {sorted(HOSTED_LABELS)})"
        )
