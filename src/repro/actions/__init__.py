"""A GitHub-Actions-like workflow engine.

Workflows are YAML documents under ``.github/workflows/`` in a hosted
repository; the :class:`~repro.actions.engine.Engine` subscribes to hub
webhooks, matches triggers, provisions hosted runners (ephemeral VMs on a
cloud "site"), evaluates ``${{ }}`` expressions, enforces deployment-
environment protection (reviewer approval gates, wait timers, branch
filters), executes steps — shell commands and marketplace actions such as
CORRECT — and stores artifacts.
"""

from repro.actions.expressions import evaluate, interpolate
from repro.actions.workflow import Workflow, JobDef, StepDef, parse_workflow
from repro.actions.runner import RunnerPool, Runner
from repro.actions.engine import (
    Engine,
    EngineServices,
    WorkflowRun,
    JobRun,
    StepOutcome,
    StepContext,
)

__all__ = [
    "evaluate",
    "interpolate",
    "Workflow",
    "JobDef",
    "StepDef",
    "parse_workflow",
    "RunnerPool",
    "Runner",
    "Engine",
    "EngineServices",
    "WorkflowRun",
    "JobRun",
    "StepOutcome",
    "StepContext",
]
