"""``${{ }}`` expression evaluation.

Implements the subset of GitHub's expression language that workflows in
this repository (and the paper's example, Fig. 3) use:

* dotted context lookups: ``secrets.GLOBUS_ID``, ``steps.tox.outputs.stdout``
* literals: single-quoted strings, numbers, ``true``/``false``/``null``
* operators: ``==``, ``!=``, ``!``, ``&&``, ``||``, parentheses
* status functions: ``always()``, ``success()``, ``failure()``, ``cancelled()``

Unknown context paths evaluate to ``''`` (GitHub's behaviour), but a
missing *top-level* context name is an error — it is almost always a typo.
"""

from __future__ import annotations

import re
from typing import Any, Dict, List, Optional

from repro.errors import ExpressionError

_EXPR_RE = re.compile(r"\$\{\{(.*?)\}\}", re.DOTALL)

_TOKEN_RE = re.compile(
    r"\s*(?:"
    r"(?P<op>==|!=|&&|\|\||[()!])"
    r"|(?P<string>'(?:[^']|'')*')"
    r"|(?P<number>-?\d+(?:\.\d+)?)"
    r"|(?P<path>[A-Za-z_][A-Za-z0-9_.-]*(?:\(\))?)"
    r")"
)


def _tokenize(text: str) -> List[str]:
    tokens: List[str] = []
    pos = 0
    while pos < len(text):
        match = _TOKEN_RE.match(text, pos)
        if match is None:
            if text[pos:].strip() == "":
                break
            raise ExpressionError(f"bad expression near {text[pos:]!r}")
        tokens.append(match.group(0).strip())
        pos = match.end()
    return tokens


class _Parser:
    """Recursive descent: or_expr -> and_expr -> equality -> unary -> atom."""

    def __init__(self, tokens: List[str], context: Dict[str, Any]) -> None:
        self.tokens = tokens
        self.pos = 0
        self.context = context

    def peek(self) -> Optional[str]:
        return self.tokens[self.pos] if self.pos < len(self.tokens) else None

    def take(self) -> str:
        token = self.peek()
        if token is None:
            raise ExpressionError("unexpected end of expression")
        self.pos += 1
        return token

    def parse(self) -> Any:
        value = self.or_expr()
        if self.peek() is not None:
            raise ExpressionError(f"trailing tokens: {self.tokens[self.pos:]}")
        return value

    def or_expr(self) -> Any:
        left = self.and_expr()
        while self.peek() == "||":
            self.take()
            right = self.and_expr()
            left = left if _truthy(left) else right
        return left

    def and_expr(self) -> Any:
        left = self.equality()
        while self.peek() == "&&":
            self.take()
            right = self.equality()
            left = right if _truthy(left) else left
        return left

    def equality(self) -> Any:
        left = self.unary()
        while self.peek() in ("==", "!="):
            op = self.take()
            right = self.unary()
            result = _loose_eq(left, right)
            left = result if op == "==" else not result
        return left

    def unary(self) -> Any:
        if self.peek() == "!":
            self.take()
            return not _truthy(self.unary())
        return self.atom()

    def atom(self) -> Any:
        token = self.take()
        if token == "(":
            value = self.or_expr()
            if self.take() != ")":
                raise ExpressionError("missing closing parenthesis")
            return value
        if token.startswith("'"):
            return token[1:-1].replace("''", "'")
        if re.fullmatch(r"-?\d+", token):
            return int(token)
        if re.fullmatch(r"-?\d+\.\d+", token):
            return float(token)
        if token.endswith("()"):
            return self._call(token[:-2])
        if token in ("true", "false"):
            return token == "true"
        if token == "null":
            return None
        return self._lookup(token)

    def _call(self, name: str) -> Any:
        functions = self.context.get("__functions__", {})
        if name not in functions:
            raise ExpressionError(f"unknown function {name!r}")
        return functions[name]()

    def _lookup(self, path: str) -> Any:
        parts = path.split(".")
        if parts[0] not in self.context:
            raise ExpressionError(f"unknown context {parts[0]!r} in {path!r}")
        value: Any = self.context[parts[0]]
        for part in parts[1:]:
            if isinstance(value, dict):
                value = value.get(part, "")
            else:
                value = getattr(value, part, "")
        return value


def _truthy(value: Any) -> bool:
    return bool(value) and value != ""


def _loose_eq(a: Any, b: Any) -> bool:
    # GitHub coerces when comparing across types; we only need the
    # string/number cases.
    if type(a) is type(b):
        return a == b
    return str(a) == str(b)


def evaluate(expression: str, context: Dict[str, Any]) -> Any:
    """Evaluate one bare expression (no ``${{ }}`` wrapper)."""
    tokens = _tokenize(expression)
    if not tokens:
        return ""
    return _Parser(tokens, context).parse()


def interpolate(text: Any, context: Dict[str, Any]) -> Any:
    """Replace ``${{ expr }}`` in a string (or recursively in containers).

    A string that is exactly one expression returns the evaluated value
    with its type preserved; mixed text coerces to string.
    """
    if isinstance(text, dict):
        return {k: interpolate(v, context) for k, v in text.items()}
    if isinstance(text, list):
        return [interpolate(v, context) for v in text]
    if not isinstance(text, str):
        return text
    full = _EXPR_RE.fullmatch(text.strip())
    if full:
        return evaluate(full.group(1).strip(), context)
    return _EXPR_RE.sub(
        lambda m: _to_str(evaluate(m.group(1).strip(), context)), text
    )


def _to_str(value: Any) -> str:
    if value is None:
        return ""
    if isinstance(value, bool):
        return "true" if value else "false"
    return str(value)
