"""Workflow document model and parser."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, List

from repro.errors import WorkflowParseError
from repro.util import yamlite

WORKFLOW_DIR = ".github/workflows"


@dataclass
class StepDef:
    """One step in a job: either ``run:`` or ``uses:``."""

    name: str = ""
    id: str = ""
    uses: str = ""
    run: str = ""
    with_: Dict[str, Any] = field(default_factory=dict)
    env: Dict[str, str] = field(default_factory=dict)
    if_: str = ""
    continue_on_error: bool = False

    def __post_init__(self) -> None:
        if bool(self.uses) == bool(self.run):
            raise WorkflowParseError(
                f"step {self.name or self.id or '?'!r} must have exactly "
                "one of 'uses' or 'run'"
            )


@dataclass
class JobDef:
    """One job: a runner requirement, optional environment, and steps.

    ``matrix`` (from ``strategy: matrix:``) maps variable names to value
    lists; the engine expands the job into one instance per combination,
    each seeing its values under the ``matrix`` expression context.
    """

    id: str
    runs_on: str = "ubuntu-latest"
    name: str = ""
    environment: str = ""
    needs: List[str] = field(default_factory=list)
    env: Dict[str, str] = field(default_factory=dict)
    steps: List[StepDef] = field(default_factory=list)
    matrix: Dict[str, List[Any]] = field(default_factory=dict)

    def __post_init__(self) -> None:
        if not self.steps:
            raise WorkflowParseError(f"job {self.id!r} has no steps")
        for key, values in self.matrix.items():
            if not isinstance(values, list) or not values:
                raise WorkflowParseError(
                    f"matrix variable {key!r} of job {self.id!r} must be a "
                    "non-empty list"
                )

    def matrix_combinations(self) -> List[Dict[str, Any]]:
        """Cartesian product of the matrix variables ({} if no matrix)."""
        combinations: List[Dict[str, Any]] = [{}]
        for key in sorted(self.matrix):
            combinations = [
                {**combo, key: value}
                for combo in combinations
                for value in self.matrix[key]
            ]
        return combinations


@dataclass
class Workflow:
    """A parsed workflow file."""

    name: str
    on: Dict[str, Any]
    jobs: Dict[str, JobDef]
    path: str = ""

    def job_order(self) -> List[str]:
        """Topological order respecting ``needs:``; stable otherwise."""
        order: List[str] = []
        visiting: Dict[str, int] = {}

        def visit(job_id: str) -> None:
            state = visiting.get(job_id)
            if state == 1:
                return
            if state == 0:
                raise WorkflowParseError(f"needs-cycle involving {job_id!r}")
            if job_id not in self.jobs:
                raise WorkflowParseError(f"job {job_id!r} referenced by needs is undefined")
            visiting[job_id] = 0
            for dep in self.jobs[job_id].needs:
                visit(dep)
            visiting[job_id] = 1
            order.append(job_id)

        for job_id in self.jobs:
            visit(job_id)
        return order

    # -- trigger matching --------------------------------------------------
    def matches(self, event: str, payload: Dict[str, Any]) -> bool:
        """Does this workflow trigger on ``event`` with ``payload``?"""
        if event not in self.on:
            return False
        config = self.on[event]
        if event == "push":
            if isinstance(config, dict) and config.get("branches"):
                return payload.get("branch") in config["branches"]
            return True
        if event == "workflow_dispatch":
            wanted = payload.get("workflow", "")
            if wanted:
                return wanted in (self.path, self.path.rsplit("/", 1)[-1], self.name)
            return True
        if event == "schedule":
            return True
        if event == "pull_request":
            if isinstance(config, dict) and config.get("branches"):
                return payload.get("target_branch") in config["branches"]
            return True
        return True


def parse_workflow(text: str, path: str = "") -> Workflow:
    """Parse a workflow YAML document into a :class:`Workflow`."""
    data = yamlite.loads(text)
    if not isinstance(data, dict):
        raise WorkflowParseError("workflow document must be a mapping")
    # "on:" may parse as the boolean True key under strict YAML; accept both.
    on_raw = data.get("on", data.get(True))
    if on_raw is None:
        raise WorkflowParseError("workflow has no 'on' trigger section")
    on = _normalize_on(on_raw)
    jobs_raw = data.get("jobs")
    if not isinstance(jobs_raw, dict) or not jobs_raw:
        raise WorkflowParseError("workflow has no jobs")
    jobs: Dict[str, JobDef] = {}
    for job_id, job_data in jobs_raw.items():
        jobs[job_id] = _parse_job(job_id, job_data)
    return Workflow(
        name=str(data.get("name", path or "workflow")),
        on=on,
        jobs=jobs,
        path=path,
    )


def _normalize_on(on_raw: Any) -> Dict[str, Any]:
    if isinstance(on_raw, str):
        return {on_raw: {}}
    if isinstance(on_raw, list):
        return {event: {} for event in on_raw}
    if isinstance(on_raw, dict):
        return {k: (v if v is not None else {}) for k, v in on_raw.items()}
    raise WorkflowParseError(f"bad 'on' section: {on_raw!r}")


def _parse_job(job_id: str, data: Any) -> JobDef:
    if not isinstance(data, dict):
        raise WorkflowParseError(f"job {job_id!r} must be a mapping")
    steps_raw = data.get("steps")
    if not isinstance(steps_raw, list):
        raise WorkflowParseError(f"job {job_id!r} has no steps list")
    steps = [_parse_step(job_id, i, s) for i, s in enumerate(steps_raw)]
    needs = data.get("needs", [])
    if isinstance(needs, str):
        needs = [needs]
    matrix: Dict[str, List[Any]] = {}
    strategy = data.get("strategy")
    if isinstance(strategy, dict) and isinstance(strategy.get("matrix"), dict):
        matrix = {str(k): v for k, v in strategy["matrix"].items()}
    return JobDef(
        id=job_id,
        runs_on=str(data.get("runs-on", "ubuntu-latest")),
        name=str(data.get("name", job_id)),
        environment=str(data.get("environment", "") or ""),
        needs=list(needs),
        env={str(k): str(v) for k, v in (data.get("env") or {}).items()},
        steps=steps,
        matrix=matrix,
    )


def _scalar_to_text(value: Any) -> str:
    """YAML scalars in string positions coerce like GitHub's parser:
    ``run: false`` is the command string "false", not an absent key."""
    if value is None or value == "":
        return ""
    if isinstance(value, bool):
        return "true" if value else "false"
    return str(value)


def _parse_step(job_id: str, index: int, data: Any) -> StepDef:
    if not isinstance(data, dict):
        raise WorkflowParseError(f"step {index} of job {job_id!r} must be a mapping")
    return StepDef(
        name=_scalar_to_text(data.get("name")),
        id=_scalar_to_text(data.get("id")),
        uses=_scalar_to_text(data.get("uses")),
        run=_scalar_to_text(data.get("run")),
        with_=dict(data.get("with") or {}),
        env={str(k): str(v) for k, v in (data.get("env") or {}).items()},
        if_=str(data.get("if", "") or ""),
        continue_on_error=bool(data.get("continue-on-error", False)),
    )
