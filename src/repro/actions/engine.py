"""The workflow engine: triggering, approval gates, job/step execution."""

from __future__ import annotations

import traceback
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Optional

from repro.actions.expressions import evaluate, interpolate
from repro.actions.runner import Runner, RunnerPool
from repro.actions.workflow import (
    StepDef,
    Workflow,
    WORKFLOW_DIR,
    parse_workflow,
)
from repro.auth.oauth import AuthService
from repro.errors import (
    ApprovalRejected,
    ApprovalRequired,
    PermissionDenied,
    ReproError,
    WorkflowParseError,
)
from repro.faas.future import Future
from repro.faas.service import FaaSService
from repro.hub.models import HostedRepo
from repro.hub.secrets import resolve_secrets
from repro.hub.service import HubService
from repro.shellsim.session import ShellServices
from repro.telemetry import tracer_of
from repro.util.events import EventLog
from repro.util.ids import IdFactory


@dataclass
class EngineServices:
    """External services steps may use (CORRECT needs the FaaS + auth).

    ``provenance`` is an optional :class:`repro.provenance.ProvenanceStore`
    CORRECT writes execution records into.
    """

    faas: Optional[FaaSService] = None
    auth: Optional[AuthService] = None
    image_commands: Dict[str, Callable] = field(default_factory=dict)
    provenance: Optional[object] = None
    # a PermanentArchive for the archive-results builtin action (§7.4)
    archive: Optional[object] = None


@dataclass
class StepOutcome:
    """Result of one executed (or skipped) step."""

    status: str  # "success" | "failure" | "skipped"
    outputs: Dict[str, str] = field(default_factory=dict)
    log: str = ""
    error: str = ""

    @property
    def ok(self) -> bool:
        return self.status != "failure"


@dataclass
class StepContext:
    """Everything a marketplace action implementation receives."""

    engine: "Engine"
    run: "WorkflowRun"
    job_run: "JobRun"
    step: StepDef
    inputs: Dict[str, Any]
    env: Dict[str, str]
    secrets: Dict[str, str]
    runner: Runner
    services: EngineServices

    def shell_services(self) -> ShellServices:
        return ShellServices(
            hub=self.engine.hub,
            image_commands=dict(self.services.image_commands),
        )


@dataclass
class JobRun:
    """One job *instance*'s execution state within a run.

    A plain job has one instance whose ``job_id`` equals its definition
    id; a matrix job has one instance per combination, with the values in
    ``matrix`` and a ``job_id`` like ``test (site=faster)``.
    """

    job_id: str
    def_id: str = ""
    matrix: Dict[str, Any] = field(default_factory=dict)
    status: str = "queued"  # queued|waiting|running|success|failure|skipped
    approval_state: str = ""  # ""|pending|approved|rejected
    approved_by: str = ""
    resolved_environment: str = ""
    step_outcomes: List[StepOutcome] = field(default_factory=list)

    def __post_init__(self) -> None:
        if not self.def_id:
            self.def_id = self.job_id

    @property
    def finished(self) -> bool:
        return self.status in ("success", "failure", "skipped")


class WorkflowRun:
    """One triggered execution of a workflow."""

    def __init__(
        self,
        run_id: str,
        workflow: Workflow,
        repo_slug: str,
        event: str,
        payload: Dict[str, Any],
        sha: str,
        branch: str,
        actor: str,
    ) -> None:
        self.run_id = run_id
        self.workflow = workflow
        self.repo_slug = repo_slug
        self.event = event
        self.payload = payload
        self.sha = sha
        self.branch = branch
        self.actor = actor
        self.jobs: Dict[str, JobRun] = {}
        for job_id, job_def in workflow.jobs.items():
            combinations = job_def.matrix_combinations()
            for combo in combinations:
                if combo:
                    label = ", ".join(f"{k}={v}" for k, v in sorted(combo.items()))
                    instance_id = f"{job_id} ({label})"
                else:
                    instance_id = job_id
                self.jobs[instance_id] = JobRun(
                    job_id=instance_id, def_id=job_id, matrix=dict(combo)
                )
        self.log: List[str] = []
        # telemetry root span for this run's trace (set by the engine)
        self.span = None

    @property
    def status(self) -> str:
        states = {j.status for j in self.jobs.values()}
        if "waiting" in states:
            return "waiting"
        if "queued" in states or "running" in states:
            return "in_progress"
        if "failure" in states:
            return "failure"
        return "success"

    def append_log(self, line: str) -> None:
        self.log.append(line)

    def job(self, job_id: str) -> JobRun:
        return self.jobs[job_id]

    def pending_approvals(self) -> List[str]:
        return [
            j.job_id
            for j in self.jobs.values()
            if j.approval_state == "pending"
        ]


class Engine:
    """Drives workflows for a hub instance."""

    def __init__(
        self,
        hub: HubService,
        runner_pool: RunnerPool,
        services: Optional[EngineServices] = None,
        events: Optional[EventLog] = None,
        auto_subscribe: bool = True,
        concurrent_jobs: bool = False,
    ) -> None:
        self.hub = hub
        self.pool = runner_pool
        self.services = services or EngineServices()
        self.events = events if events is not None else hub.events
        self.concurrent_jobs = concurrent_jobs
        self.runs: List[WorkflowRun] = []
        self._run_ids = IdFactory("run")
        # recovery: (run_id, job_id, step index) -> journaled outcome of a
        # finished plain `run:` step, loaded by resume_run; None = no resume
        self._step_ledger: Optional[Dict[tuple, Dict[str, Any]]] = None
        self.replayed_steps = 0
        self._register_builtin_actions()
        if auto_subscribe:
            hub.subscribe(self.handle_event)

    @property
    def clock(self):
        return self.hub.clock

    # -- builtin marketplace actions -----------------------------------------
    def _register_builtin_actions(self) -> None:
        from repro.actions import builtin_actions

        for reference, impl in builtin_actions.BUILTIN_ACTIONS.items():
            if reference not in self.hub.marketplace.listings():
                self.hub.marketplace.publish(reference, impl)

    # -- triggering ---------------------------------------------------------------
    def handle_event(self, event: str, payload: Dict[str, Any]) -> List[WorkflowRun]:
        """Webhook entry point: match workflows and execute runs."""
        runs: List[WorkflowRun] = []
        slugs = [payload["slug"]] if "slug" in payload else self.hub.repos()
        for slug in slugs:
            hosted = self.hub.repo(slug)
            if hosted.repository.is_empty():
                continue
            branch = payload.get("branch", hosted.repository.default_branch)
            try:
                sha = payload.get("sha") or hosted.repository.head(branch)
            except ReproError:
                continue
            for workflow in self._load_workflows(hosted, sha):
                if workflow.matches(event, payload):
                    run = self._create_run(
                        hosted, workflow, event, payload, sha, branch
                    )
                    runs.append(run)
                    self.process(run)
        return runs

    def _load_workflows(self, hosted: HostedRepo, ref: str) -> List[Workflow]:
        try:
            files = hosted.repository.files_at(ref)
        except ReproError:
            return []
        workflows: List[Workflow] = []
        for path, content in sorted(files.items()):
            if not path.startswith(WORKFLOW_DIR + "/"):
                continue
            if not path.endswith((".yml", ".yaml")):
                continue
            try:
                workflows.append(parse_workflow(content, path=path))
            except WorkflowParseError as exc:
                self.events.emit(
                    self.clock.now, "actions", "workflow.parse_error",
                    slug=hosted.slug, path=path, error=str(exc),
                )
        return workflows

    def _create_run(
        self,
        hosted: HostedRepo,
        workflow: Workflow,
        event: str,
        payload: Dict[str, Any],
        sha: str,
        branch: str,
    ) -> WorkflowRun:
        run = WorkflowRun(
            run_id=self._run_ids.next_id(),
            workflow=workflow,
            repo_slug=hosted.slug,
            event=event,
            payload=payload,
            sha=sha,
            branch=branch,
            actor=str(payload.get("actor") or payload.get("pusher") or ""),
        )
        self.runs.append(run)
        # each run roots its own trace; everything it causes — jobs,
        # steps, remote tasks, pilot batch jobs — hangs off this span
        run.span = tracer_of(self.clock).start_span(
            f"run:{workflow.name}", parent=None, kind="workflow",
            run_id=run.run_id, repo=hosted.slug, event=event, sha=sha,
        )
        self.events.emit(
            self.clock.now, "actions", "run.created",
            run_id=run.run_id, slug=hosted.slug,
            workflow=workflow.name, event=event,
        )
        return run

    def _seal_run_span(self, run: WorkflowRun) -> None:
        """Close the run's root span once its status is terminal."""
        span = run.span
        if span is None or not getattr(span, "is_open", False):
            return
        status = run.status
        if status in ("success", "failure"):
            tracer_of(self.clock).end_span(
                span, status="ok" if status == "success" else "error",
            )
            span.attributes["run_status"] = status

    # -- approvals ------------------------------------------------------------------
    def approve(self, run: WorkflowRun, job_id: str, reviewer: str) -> None:
        """Approve a waiting job instance; resumes the run.

        Only a user listed in the environment's required reviewers may
        approve — the identity-vouching core of §5.2.
        """
        job_run = run.job(job_id)
        if job_run.approval_state != "pending":
            raise ApprovalRequired(f"job {job_id} is not awaiting approval")
        hosted = self.hub.repo(run.repo_slug)
        env = hosted.environment(job_run.resolved_environment)
        if not env.protection.can_review(reviewer):
            raise PermissionDenied(
                f"{reviewer} is not a required reviewer for "
                f"environment {env.name!r}"
            )
        job_run.approval_state = "approved"
        job_run.approved_by = reviewer
        self.events.emit(
            self.clock.now, "actions", "job.approved",
            run_id=run.run_id, job=job_id, reviewer=reviewer,
        )
        if env.protection.wait_timer > 0:
            self.clock.advance(env.protection.wait_timer)
        self.process(run)

    def reject(self, run: WorkflowRun, job_id: str, reviewer: str) -> None:
        job_run = run.job(job_id)
        if job_run.approval_state != "pending":
            raise ApprovalRequired(f"job {job_id} is not awaiting approval")
        hosted = self.hub.repo(run.repo_slug)
        env = hosted.environment(job_run.resolved_environment)
        if not env.protection.can_review(reviewer):
            raise PermissionDenied(
                f"{reviewer} is not a required reviewer for "
                f"environment {env.name!r}"
            )
        job_run.approval_state = "rejected"
        job_run.status = "failure"
        run.append_log(f"[{job_id}] deployment rejected by {reviewer}")
        self.events.emit(
            self.clock.now, "actions", "job.rejected",
            run_id=run.run_id, job=job_id, reviewer=reviewer,
        )
        self._seal_run_span(run)

    # -- execution ---------------------------------------------------------------
    def _instances(self, run: WorkflowRun, def_id: str) -> List[JobRun]:
        return [jr for jr in run.jobs.values() if jr.def_id == def_id]

    def process(self, run: WorkflowRun) -> WorkflowRun:
        """Execute runnable job instances in order; stop at approval gates.

        Each pass collects a *wave*: the runnable instances, scanning
        jobs in dependency order and stopping at the first unfinished
        dependency or approval gate. With ``concurrent_jobs`` the wave's
        instances interleave step-by-step in virtual time; otherwise the
        wave executes sequentially, which is byte-for-byte the original
        blocking behaviour.
        """
        hosted = self.hub.repo(run.repo_slug)
        while True:
            wave: List[tuple] = []
            gated = False
            for def_id in run.workflow.job_order():
                job_def = run.workflow.jobs[def_id]
                dep_instances = [
                    jr
                    for dep in job_def.needs
                    for jr in self._instances(run, dep)
                ]
                failed_dep = any(
                    jr.status in ("failure", "skipped") for jr in dep_instances
                )
                unfinished_dep = any(not jr.finished for jr in dep_instances)
                if failed_dep:
                    for job_run in self._instances(run, def_id):
                        if not job_run.finished:
                            job_run.status = "skipped"
                            run.append_log(
                                f"[{job_run.job_id}] skipped (dependency failed)"
                            )
                    continue
                if unfinished_dep:
                    break  # an earlier gate or this pass's wave is blocking
                for job_run in self._instances(run, def_id):
                    if job_run.finished:
                        continue
                    # environment protection (name may reference matrix values)
                    if job_def.environment:
                        env_name = job_def.environment
                        if "${{" in env_name:
                            env_name = str(
                                interpolate(
                                    env_name,
                                    {
                                        "matrix": job_run.matrix,
                                        "github": {"ref_name": run.branch},
                                    },
                                )
                            )
                        job_run.resolved_environment = env_name
                        env = hosted.environment(env_name)
                        if not env.protection.branch_allowed(run.branch):
                            job_run.status = "failure"
                            run.append_log(
                                f"[{job_run.job_id}] branch {run.branch!r} not "
                                f"allowed for environment {env.name!r}"
                            )
                            continue
                        if (
                            env.protection.needs_approval
                            and job_run.approval_state != "approved"
                        ):
                            if wave:
                                # run the jobs ahead of the gate first;
                                # the rescan re-encounters the gate alone
                                gated = True
                                break
                            if job_run.approval_state != "pending":
                                job_run.approval_state = "pending"
                                job_run.status = "waiting"
                                self.events.emit(
                                    self.clock.now, "actions",
                                    "job.waiting_approval",
                                    run_id=run.run_id, job=job_run.job_id,
                                    reviewers=list(
                                        env.protection.required_reviewers
                                    ),
                                )
                            return run
                    wave.append((job_run, job_def))
                if gated:
                    break
            if not wave:
                self._seal_run_span(run)
                return run
            if self.concurrent_jobs and len(wave) > 1:
                self._execute_wave(run, wave, hosted)
            else:
                for job_run, job_def in wave:
                    self._execute_job(run, job_run, job_def, hosted)

    def _execute_job(self, run, job_run, job_def, hosted) -> None:
        """Run one job instance to completion, blocking in virtual time."""
        stepper = self._job_stepper(run, job_run, job_def, hosted)
        try:
            pending = next(stepper)
            while True:
                pending = stepper.send(self._step_outcome_of(pending))
        except StopIteration:
            pass

    def _job_stepper(self, run, job_run, job_def, hosted):
        """Generator executing one job instance's steps in order.

        Yields a :class:`Future` for every step whose implementation
        supports deferred execution, and expects the resolved
        :class:`StepOutcome` to be sent back. All bookkeeping — outputs,
        logs, and the §5.3 failure-propagation contract (a failed step
        fails the job but ``if: always()`` steps still run) — lives here,
        identically for sequential and concurrent execution.
        """
        job_run.status = "running"
        runner = self.pool.acquire(job_def.runs_on)
        secrets = resolve_secrets(
            hosted.secret_scopes(job_run.resolved_environment or None)
        )
        run.append_log(
            f"[{job_run.job_id}] started on runner {runner.runner_id}"
        )
        tracer = tracer_of(self.clock)
        job_span = tracer.start_span(
            f"job:{job_run.job_id}",
            parent=run.span.context if run.span is not None else None,
            kind="job", run_id=run.run_id, job=job_run.job_id,
            runner=runner.runner_id,
        )
        job_failed = False
        step_results: Dict[str, Dict[str, Any]] = {}
        for index, step in enumerate(job_def.steps):
            label = step.name or step.id or step.uses or step.run.split("\n")[0]
            self.events.emit(
                self.clock.now, "actions", "step.started",
                run_id=run.run_id, job=job_run.job_id,
                index=index, label=label,
            )
            step_span = tracer.start_span(
                f"step:{label}", parent=job_span.context, kind="step",
                run_id=run.run_id, job=job_run.job_id,
            )
            replayed = self._journaled_step(run, job_run, step, index)
            if replayed is not None:
                # journaled-complete step: the recorded outcome resolves
                # at the journaled finish time; the span still opens and
                # closes so trace shape and id sequences are unchanged
                outcome = yield replayed
            else:
                # activate while the step body runs: any task it submits —
                # synchronously or through the CORRECT future chain —
                # inherits this step as its trace parent
                with tracer.activate(step_span.context):
                    outcome = self._execute_step(
                        run, job_run, job_def, step, runner, secrets,
                        step_results, job_failed,
                    )
                if isinstance(outcome, Future):
                    outcome = yield outcome
            tracer.end_span(
                step_span,
                status="error" if outcome.status == "failure" else "ok",
                error=outcome.error,
            )
            step_span.attributes["step_status"] = outcome.status
            self.events.emit(
                self.clock.now, "actions", "step.finished",
                run_id=run.run_id, job=job_run.job_id,
                index=index, label=label, status=outcome.status,
                outputs=dict(outcome.outputs), log=outcome.log,
                error=outcome.error,
                step_kind="run" if step.run else "uses",
            )
            job_run.step_outcomes.append(outcome)
            if step.id:
                step_results[step.id] = {
                    "outputs": outcome.outputs,
                    "outcome": outcome.status,
                    "conclusion": outcome.status,
                }
            run.append_log(f"[{job_run.job_id}] step {label!r}: {outcome.status}")
            if outcome.log:
                run.append_log(outcome.log)
            if outcome.error:
                run.append_log(f"Error: {outcome.error}")
            if outcome.status == "failure" and not step.continue_on_error:
                job_failed = True
        job_run.status = "failure" if job_failed else "success"
        tracer.end_span(
            job_span, status="error" if job_failed else "ok",
        )
        self.events.emit(
            self.clock.now, "actions", "job.finished",
            run_id=run.run_id, job=job_run.job_id, status=job_run.status,
        )

    # -- durability ----------------------------------------------------------
    def resume_run(self, journal: Any) -> Dict[str, int]:
        """Load finished plain ``run:`` steps from a journal so re-execution
        skips their bodies.

        Only ``run:`` steps are replayed: ``uses:`` steps (notably CORRECT)
        must re-execute live so their task submissions flow through the FaaS
        replay layer, keeping task/span id allocation sequences identical to
        the uninterrupted run.
        """
        ledger: Dict[tuple, Dict[str, Any]] = {}
        for record in journal.replay():
            if record.kind != "step.finished":
                continue
            data = record.data
            if data.get("step_kind") != "run":
                continue
            ledger[(data["run_id"], data["job"], data["index"])] = {
                "status": data["status"],
                "outputs": dict(data.get("outputs", {})),
                "log": data.get("log", ""),
                "error": data.get("error", ""),
                "finished_at": record.time,
            }
        self._step_ledger = ledger
        return {"steps": len(ledger)}

    def _journaled_step(self, run, job_run, step, index) -> Optional[Future]:
        """A future resolving to the journaled outcome of this step, or None
        if the step must execute live (no resume, or not journaled-complete).
        """
        if self._step_ledger is None or not step.run:
            return None
        entry = self._step_ledger.get((run.run_id, job_run.job_id, index))
        if entry is None:
            return None
        outcome = StepOutcome(
            status=entry["status"],
            outputs=dict(entry["outputs"]),
            log=entry["log"],
            error=entry["error"],
        )
        self.replayed_steps += 1
        self.events.emit(
            self.clock.now, "actions", "step.replayed",
            run_id=run.run_id, job=job_run.job_id, index=index,
        )
        future: Future = Future(self.clock)
        # resolve no earlier than the journaled finish time, so wave
        # interleaving and downstream timestamps match the original run
        self.clock.call_at(
            max(self.clock.now, entry["finished_at"]),
            lambda: future.set_result(outcome),
        )
        return future

    def _step_outcome_of(self, future: Future) -> StepOutcome:
        """Resolve a step future, mapping exceptions like _execute_step."""
        try:
            return future.result()
        except ReproError as exc:
            return StepOutcome(
                status="failure", error=f"{type(exc).__name__}: {exc}"
            )
        except Exception:  # noqa: BLE001 - step isolation
            return StepOutcome(status="failure", error=traceback.format_exc())

    def _execute_wave(self, run, wave, hosted) -> None:
        """Interleave several job instances' steps in virtual time.

        Each stepper advances until it yields a step future; the loop
        resumes whichever steppers' futures have resolved, and when every
        live stepper is blocked it fires the next clock event. Pilot
        queue waits and remote task bodies on different endpoints
        therefore occupy overlapping virtual intervals — the run's
        makespan approaches the slowest job rather than the sum.
        """
        live: List[Dict[str, Any]] = []
        for job_run, job_def in wave:
            stepper = self._job_stepper(run, job_run, job_def, hosted)
            try:
                live.append(
                    {"stepper": stepper, "future": next(stepper), "job": job_run}
                )
            except StopIteration:
                pass  # all-sync job finished during spin-up
        while live:
            progressed = False
            for state in list(live):
                while state["future"].done():
                    progressed = True
                    outcome = self._step_outcome_of(state["future"])
                    try:
                        state["future"] = state["stepper"].send(outcome)
                    except StopIteration:
                        live.remove(state)
                        break
            if not live or progressed:
                continue
            nxt = self.clock.next_event_time()
            if nxt is None:
                # deadlock: no event can ever resolve the pending steps
                for state in live:
                    state["job"].status = "failure"
                    run.append_log(
                        f"[{state['job'].job_id}] failed: step future "
                        f"pending with no events scheduled"
                    )
                return
            self.clock.run_until(nxt)

    def _expression_context(
        self,
        run: WorkflowRun,
        job_def,
        step_env: Dict[str, str],
        secrets: Dict[str, str],
        step_results: Dict[str, Dict[str, Any]],
        job_failed: bool,
        matrix: Optional[Dict[str, Any]] = None,
    ) -> Dict[str, Any]:
        return {
            "matrix": dict(matrix or {}),
            "github": {
                "repository": run.repo_slug,
                "sha": run.sha,
                "ref_name": run.branch,
                "event_name": run.event,
                "actor": run.actor,
                "run_id": run.run_id,
            },
            "env": step_env,
            "secrets": secrets,
            "steps": step_results,
            "inputs": dict(run.payload.get("inputs", {})),
            "job": {"status": "failure" if job_failed else "success"},
            "__functions__": {
                "always": lambda: True,
                "success": lambda: not job_failed,
                "failure": lambda: job_failed,
                "cancelled": lambda: False,
            },
        }

    def _execute_step(
        self,
        run: WorkflowRun,
        job_run: JobRun,
        job_def,
        step: StepDef,
        runner: Runner,
        secrets: Dict[str, str],
        step_results: Dict[str, Dict[str, Any]],
        job_failed: bool,
    ) -> StepOutcome:
        env = dict(job_def.env)
        env.update(step.env)
        context = self._expression_context(
            run, job_def, env, secrets, step_results, job_failed,
            matrix=job_run.matrix,
        )
        try:
            env = {k: str(interpolate(v, context)) for k, v in env.items()}
            context["env"] = env
            # `if:` accepts both bare expressions and ${{ }}-wrapped ones
            condition = step.if_ or "success()"
            if "${{" in condition:
                condition_value = interpolate(condition, context)
            else:
                condition_value = evaluate(condition, context)
            if not _truthy(condition_value):
                return StepOutcome(status="skipped")
            if step.run:
                command = str(interpolate(step.run, context))
                services = ShellServices(
                    hub=self.hub,
                    image_commands=dict(self.services.image_commands),
                )
                session = runner.shell(services=services, env=env)
                result = session.run(command)
                return StepOutcome(
                    status="success" if result.ok else "failure",
                    outputs={
                        "stdout": result.stdout,
                        "exit_code": str(result.exit_code),
                    },
                    log=result.combined_output(),
                    error="" if result.ok else (
                        result.stderr or f"exit code {result.exit_code}"
                    ),
                )
            # marketplace action
            impl = self.hub.marketplace.resolve(step.uses)
            inputs = interpolate(dict(step.with_), context)
            step_context = StepContext(
                engine=self,
                run=run,
                job_run=job_run,
                step=step,
                inputs=inputs,
                env=env,
                secrets=secrets,
                runner=runner,
                services=self.services,
            )
            if hasattr(impl, "run_async"):
                # deferred: the stepper awaits the returned future
                return impl.run_async(step_context)
            return impl.run(step_context)
        except ReproError as exc:
            return StepOutcome(status="failure", error=f"{type(exc).__name__}: {exc}")
        except Exception:  # noqa: BLE001 - step isolation
            return StepOutcome(status="failure", error=traceback.format_exc())


def _truthy(value: Any) -> bool:
    return bool(value) and value != ""
