"""Programmatic construction of CORRECT workflow documents.

Experiments generate workflow YAML (Fig. 3's shape) instead of hand-writing
strings; :func:`render_yaml` emits text that round-trips through
:mod:`repro.util.yamlite`.
"""

from __future__ import annotations

from typing import Any, Dict, List, Optional

from repro.core.action import CORRECT_REFERENCE


def _needs_quoting(text: str) -> bool:
    if text == "":
        return True
    if text != text.strip():
        return True
    specials = set(":#{}[],&*!|>'\"%@`")
    if text[0] in "-?" or any(ch in specials for ch in text):
        return True
    lowered = text.lower()
    if lowered in ("true", "false", "null", "~", "yes", "no", "on", "off"):
        return True
    try:
        float(text)
        return True
    except ValueError:
        return False


def _scalar(value: Any) -> str:
    if isinstance(value, bool):
        return "true" if value else "false"
    if value is None:
        return "null"
    if isinstance(value, (int, float)):
        return repr(value)
    text = str(value)
    if "\n" in text:
        raise ValueError("use render_yaml's literal-block path for multiline")
    if _needs_quoting(text):
        return "'" + text.replace("'", "''") + "'"
    return text


def _flow(value: Any) -> str:
    """Flow-style rendering for containers nested inside sequence items."""
    if isinstance(value, dict):
        return "{" + ", ".join(f"{k}: {_flow(v)}" for k, v in value.items()) + "}"
    if isinstance(value, list):
        return "[" + ", ".join(_flow(v) for v in value) + "]"
    return _scalar(value)


def render_yaml(data: Any, indent: int = 0) -> str:
    """Render nested dict/list/scalar data as yamlite-compatible YAML."""
    pad = " " * indent
    lines: List[str] = []
    if isinstance(data, dict):
        if not data:
            return pad + "{}"
        for key, value in data.items():
            if isinstance(value, (dict, list)) and value:
                lines.append(f"{pad}{key}:")
                lines.append(render_yaml(value, indent + 2))
            elif isinstance(value, str) and "\n" in value:
                lines.append(f"{pad}{key}: |")
                lines.extend(
                    f"{pad}  {body_line}" for body_line in value.splitlines()
                )
            else:
                if isinstance(value, (dict, list)):
                    value = "{}" if isinstance(value, dict) else "[]"
                    lines.append(f"{pad}{key}: {value}")
                else:
                    lines.append(f"{pad}{key}: {_scalar(value)}")
        return "\n".join(lines)
    if isinstance(data, list):
        if not data:
            return pad + "[]"
        for item in data:
            if isinstance(item, dict) and item:
                first = True
                for key, value in item.items():
                    prefix = f"{pad}- " if first else f"{pad}  "
                    if isinstance(value, (dict, list)) and value:
                        lines.append(f"{prefix}{key}:")
                        lines.append(render_yaml(value, indent + 4))
                    elif isinstance(value, str) and "\n" in value:
                        lines.append(f"{prefix}{key}: |")
                        lines.extend(
                            f"{pad}    {body_line}"
                            for body_line in value.splitlines()
                        )
                    else:
                        if isinstance(value, (dict, list)):
                            lines.append(f"{prefix}{key}: {_flow(value)}")
                        else:
                            lines.append(f"{prefix}{key}: {_scalar(value)}")
                    first = False
            elif isinstance(item, (dict, list)):
                lines.append(f"{pad}- {_flow(item)}")
            else:
                lines.append(f"{pad}- {_scalar(item)}")
        return "\n".join(lines)
    return pad + _scalar(data)


class WorkflowBuilder:
    """Fluent builder for workflows whose jobs call CORRECT."""

    def __init__(self, name: str) -> None:
        self.name = name
        self._on: Dict[str, Any] = {}
        self._jobs: List[Dict[str, Any]] = []

    # -- triggers ---------------------------------------------------------------
    def on_push(self, branches: Optional[List[str]] = None) -> "WorkflowBuilder":
        self._on["push"] = {"branches": branches} if branches else {}
        return self

    def on_dispatch(self) -> "WorkflowBuilder":
        self._on["workflow_dispatch"] = {}
        return self

    def on_schedule(self, cron: str = "0 0 * * *") -> "WorkflowBuilder":
        self._on["schedule"] = [{"cron": cron}]
        return self

    # -- jobs -------------------------------------------------------------------
    def add_job(
        self,
        job_id: str,
        steps: List[Dict[str, Any]],
        environment: str = "",
        runs_on: str = "ubuntu-latest",
        env: Optional[Dict[str, str]] = None,
        needs: Optional[List[str]] = None,
    ) -> "WorkflowBuilder":
        job: Dict[str, Any] = {"runs-on": runs_on}
        if environment:
            job["environment"] = environment
        if env:
            job["env"] = dict(env)
        if needs:
            job["needs"] = list(needs)
        job["steps"] = steps
        self._jobs.append({job_id: job})
        return self

    @staticmethod
    def correct_step(
        name: str,
        shell_cmd: str = "",
        function_uuid: str = "",
        step_id: str = "",
        endpoint_expr: str = "${{ env.ENDPOINT_UUID }}",
        client_id_expr: str = "${{ secrets.GLOBUS_ID }}",
        client_secret_expr: str = "${{ secrets.GLOBUS_SECRET }}",
        **extra_inputs: Any,
    ) -> Dict[str, Any]:
        """One CORRECT invocation step (the Fig. 3 shape)."""
        with_block: Dict[str, Any] = {
            "client_id": client_id_expr,
            "client_secret": client_secret_expr,
            "endpoint_uuid": endpoint_expr,
        }
        if shell_cmd:
            with_block["shell_cmd"] = shell_cmd
        if function_uuid:
            with_block["function_uuid"] = function_uuid
        with_block.update(extra_inputs)
        step: Dict[str, Any] = {"name": name}
        if step_id:
            step["id"] = step_id
        step["uses"] = CORRECT_REFERENCE
        step["with"] = with_block
        return step

    @staticmethod
    def upload_artifact_step(
        name: str, artifact_name: str, path: str, always: bool = True
    ) -> Dict[str, Any]:
        step: Dict[str, Any] = {"name": name}
        if always:
            step["if"] = "${{ always() }}"
        step["uses"] = "actions/upload-artifact@v4"
        step["with"] = {"name": artifact_name, "path": path}
        return step

    def render(self) -> str:
        if not self._on:
            raise ValueError("workflow has no triggers; call on_push/on_dispatch")
        if not self._jobs:
            raise ValueError("workflow has no jobs")
        jobs: Dict[str, Any] = {}
        for job in self._jobs:
            jobs.update(job)
        return render_yaml({"name": self.name, "on": self._on, "jobs": jobs}) + "\n"
