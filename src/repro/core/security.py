"""CORRECT's security helpers (paper §5.2).

Three mechanisms combine:

1. **Environment secrets with a sole reviewer** — the person who owns the
   FaaS client identity approves every run that uses it, so the approver
   maps to a real account at the execution site.
2. **Function allow-lists** — endpoint templates restricted to CORRECT's
   pre-registered helper functions reject anything else before execution.
3. **Identity mapping + policies** — enforced by the MEP itself
   (:mod:`repro.faas.endpoint`); audited here.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Set

from repro.core.remote import REMOTE_FUNCTIONS
from repro.faas.endpoint import EndpointTemplate
from repro.hub.environments import ProtectionRules
from repro.hub.models import HostedRepo
from repro.util.ids import deterministic_uuid


def sole_reviewer_rules(
    reviewer: str,
    allowed_branches: Optional[List[str]] = None,
    wait_timer: float = 0.0,
) -> ProtectionRules:
    """Protection rules per the paper's recommendation: one reviewer.

    "it is strongly suggested that there is only one reviewer per
    environment, to block other reviewers from approving flows that
    execute on sites not mapped to their identity" (§5.2).
    """
    return ProtectionRules(
        required_reviewers=[reviewer],
        wait_timer=wait_timer,
        allowed_branches=list(allowed_branches or []),
    )


def correct_function_ids(owner_urn: str) -> Dict[str, str]:
    """Deterministic ids of CORRECT's helper functions for one owner.

    Matches :meth:`FunctionRegistry.register`'s id derivation, so
    administrators can allow-list the functions before they are ever
    registered.
    """
    return {
        name: deterministic_uuid("function", owner_urn, name)
        for name in REMOTE_FUNCTIONS
    }


def restrict_template_to_correct(
    template: EndpointTemplate,
    owner_urns: List[str],
    extra_function_ids: Optional[Set[str]] = None,
) -> EndpointTemplate:
    """Apply a function allow-list admitting only CORRECT helpers.

    ``extra_function_ids`` admits site-approved, pre-registered user
    functions (the ``function_uuid`` path in the action).
    """
    allowed: Set[str] = set(extra_function_ids or set())
    for urn in owner_urns:
        allowed.update(correct_function_ids(urn).values())
    template.allowed_functions = allowed
    return template


def audit_environment(hosted: HostedRepo, env_name: str) -> List[str]:
    """Return warnings about an environment's protection configuration.

    Empty list = configuration matches the paper's recommendations.
    """
    warnings: List[str] = []
    env = hosted.environment(env_name)
    reviewers = env.protection.required_reviewers
    if not reviewers:
        warnings.append(
            f"environment {env_name!r} has no required reviewers: any push "
            "can execute remotely with its secrets"
        )
    elif len(reviewers) > 1:
        warnings.append(
            f"environment {env_name!r} has {len(reviewers)} reviewers; the "
            "paper recommends exactly one so approval implies site-account "
            "ownership"
        )
    if not env.secrets.names():
        warnings.append(f"environment {env_name!r} holds no secrets")
    for name in env.secrets.names():
        secret = env.secrets.get(name)
        if reviewers and secret.set_by and secret.set_by not in reviewers:
            warnings.append(
                f"secret {name} was set by {secret.set_by!r}, who is not a "
                "required reviewer — credentials and approval authority "
                "should belong to the same person"
            )
    if not env.protection.allowed_branches:
        warnings.append(
            f"environment {env_name!r} is usable from any branch; consider "
            "restricting to reviewed branches"
        )
    return warnings
