"""Parsing and summarizing CORRECT execution results."""

from __future__ import annotations

import re
from typing import Any, Dict, Tuple

from repro.core.remote import FN_READ_FILE
from repro.errors import TaskFailed
from repro.shellsim.suites import TestReport

# "suite::test_name PASSED [12.34s]" lines from the simulated pytest
_PYTEST_LINE = re.compile(
    r"^(?P<suite>[\w./-]+)::(?P<name>[\w\[\]-]+) "
    r"(?P<outcome>PASSED|FAILED|ERROR|SKIPPED) \[(?P<duration>[\d.]+)s\]$"
)


def parse_pytest_stdout(stdout: str) -> Dict[str, Tuple[str, float]]:
    """Extract {test_name: (outcome, duration_seconds)} from pytest output.

    This is exactly what the paper did for Fig. 4: "record the duration of
    each test case using pytest".
    """
    out: Dict[str, Tuple[str, float]] = {}
    for line in stdout.splitlines():
        match = _PYTEST_LINE.match(line.strip())
        if match:
            out[match.group("name")] = (
                match.group("outcome"),
                float(match.group("duration")),
            )
    return out


def fetch_remote_report(client, endpoint_uuid: str, report_path: str,
                        template: str = "default") -> TestReport:
    """Fetch a ``.report.json`` file from the endpoint and parse it.

    Uses CORRECT's pre-registered ``read_file`` helper; raises
    :class:`TaskFailed` if the file does not exist remotely.
    """
    from repro.util.ids import deterministic_uuid

    function_id = deterministic_uuid("function", client.identity_urn, FN_READ_FILE)
    task_id = client.run(endpoint_uuid, function_id, report_path, template=template)
    return TestReport.from_json(client.get_result(task_id))


def summarize_result(result: Dict[str, Any]) -> str:
    """One-line human summary of a run_shell_command result."""
    exit_code = int(result.get("exit_code", -1))
    tests = parse_pytest_stdout(str(result.get("stdout", "")))
    if tests:
        passed = sum(1 for o, _ in tests.values() if o == "PASSED")
        failed = len(tests) - passed
        status = "OK" if exit_code == 0 else "FAIL"
        return (
            f"{status}: {passed} passed, {failed} failed "
            f"({result.get('duration', 0.0):.1f}s remote)"
        )
    return (
        f"{'OK' if exit_code == 0 else 'FAIL'}: exit {exit_code} "
        f"({result.get('duration', 0.0):.1f}s remote)"
    )
