"""Repeatability evaluation: fork, swap endpoint, re-run, compare.

Implements the paper's §5.3 recipe for non-contributors:

1. fork the repository,
2. instantiate their own endpoint,
3. save their FaaS secrets in a GitHub environment,
4. swap the endpoint UUID in the workflow,
5. trigger the workflow.

:func:`evaluate_repeatability` automates all five steps in a
:class:`~repro.world.World` and compares per-test outcomes between the
original run and the fork's run on different infrastructure.
"""

from __future__ import annotations

import re
from dataclasses import dataclass, field
from typing import Dict, Tuple

from repro.actions.engine import WorkflowRun
from repro.core.reporting import parse_pytest_stdout
from repro.core.security import sole_reviewer_rules
from repro.errors import CorrectError


@dataclass
class RepeatabilityEvaluation:
    """Outcome of one fork-and-rerun evaluation."""

    original_slug: str
    fork_slug: str
    original_run: WorkflowRun
    fork_run: WorkflowRun
    original_tests: Dict[str, Tuple[str, float]] = field(default_factory=dict)
    fork_tests: Dict[str, Tuple[str, float]] = field(default_factory=dict)

    @property
    def same_tests_ran(self) -> bool:
        return set(self.original_tests) == set(self.fork_tests) and bool(
            self.original_tests
        )

    @property
    def outcomes_match(self) -> bool:
        """Identical pass/fail per test — the repeatability criterion.

        Durations are expected to differ across infrastructure; outcomes
        are not (§3.1.1: validate claims, not identical numbers).
        """
        if not self.same_tests_ran:
            return False
        return all(
            self.original_tests[name][0] == self.fork_tests[name][0]
            for name in self.original_tests
        )

    def duration_ratios(self) -> Dict[str, float]:
        """fork duration / original duration per common test."""
        out: Dict[str, float] = {}
        for name in set(self.original_tests) & set(self.fork_tests):
            original = self.original_tests[name][1]
            forked = self.fork_tests[name][1]
            if original > 0:
                out[name] = forked / original
        return out


def _swap_endpoint_uuid(workflow_text: str, new_uuid: str) -> str:
    """Replace the ENDPOINT_UUID env value in a workflow document."""
    pattern = re.compile(r"(ENDPOINT_UUID:\s*)('[^']*'|\S+)")
    if not pattern.search(workflow_text):
        raise CorrectError(
            "workflow has no ENDPOINT_UUID env entry to swap"
        )
    return pattern.sub(lambda m: f"{m.group(1)}{new_uuid}", workflow_text)


def evaluate_repeatability(
    world,
    slug: str,
    original_run: WorkflowRun,
    evaluator,
    endpoint_uuid: str,
    workflow_path: str = ".github/workflows/correct.yml",
    environment_name: str = "hpc",
    artifact_name: str = "correct-stdout",
) -> RepeatabilityEvaluation:
    """Run the §5.3 fork-and-swap recipe; returns the comparison.

    ``evaluator`` is a :class:`~repro.world.WorldUser` who owns
    ``endpoint_uuid``; ``original_run`` is the baseline run whose stdout
    artifact holds the reference test outcomes.
    """
    hub = world.hub
    source = hub.repo(slug)

    # 1. fork
    fork = hub.fork(slug, evaluator.login)

    # 2-3. environment with the evaluator as sole reviewer + their secrets
    env = fork.create_environment(
        evaluator.login, environment_name,
        protection=sole_reviewer_rules(evaluator.login),
    )
    env.secrets.set("GLOBUS_ID", evaluator.client_id, set_by=evaluator.login)
    env.secrets.set("GLOBUS_SECRET", evaluator.client_secret, set_by=evaluator.login)

    # 4. swap the endpoint UUID in the workflow file
    workflow_text = fork.repository.read_file(
        fork.repository.default_branch, workflow_path
    )
    swapped = _swap_endpoint_uuid(workflow_text, endpoint_uuid)

    # 5. trigger by pushing the swapped workflow
    runs_before = len(world.engine.runs)
    hub.push_commit(
        fork.slug,
        author=evaluator.login,
        message="Swap endpoint for repeatability evaluation",
        patch={workflow_path: swapped},
    )
    new_runs = world.engine.runs[runs_before:]
    fork_runs = [r for r in new_runs if r.repo_slug == fork.slug]
    if not fork_runs:
        raise CorrectError(
            f"pushing to {fork.slug} triggered no workflow run"
        )
    fork_run = fork_runs[-1]

    # the evaluator approves their own environment-gated job(s)
    while fork_run.status == "waiting":
        for job_id in fork_run.pending_approvals():
            world.engine.approve(fork_run, job_id, evaluator.login)

    original_tests = _tests_from_artifact(world, original_run, artifact_name)
    fork_tests = _tests_from_artifact(world, fork_run, artifact_name)
    return RepeatabilityEvaluation(
        original_slug=slug,
        fork_slug=fork.slug,
        original_run=original_run,
        fork_run=fork_run,
        original_tests=original_tests,
        fork_tests=fork_tests,
    )


def _tests_from_artifact(
    world, run: WorkflowRun, artifact_name: str
) -> Dict[str, Tuple[str, float]]:
    artifact = world.hub.artifacts.download(run.run_id, artifact_name)
    return parse_pytest_stdout(artifact.content)
