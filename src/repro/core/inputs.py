"""CORRECT action inputs and validation."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, List

from repro.errors import InputValidationError


@dataclass
class CorrectInputs:
    """Validated inputs of one CORRECT step (the ``with:`` block).

    Exactly one of ``shell_cmd`` / ``function_uuid`` must be given —
    mirroring the published action's contract. ``template`` selects a MEP
    template; ``conda_env`` is activated before ``shell_cmd`` runs;
    ``clone`` may be disabled for endpoint-approved pre-registered
    functions that do not need the repository.
    """

    client_id: str
    client_secret: str
    endpoint_uuid: str
    shell_cmd: str = ""
    function_uuid: str = ""
    function_args: List[Any] = field(default_factory=list)
    repository: str = ""  # defaults to the triggering repo
    branch: str = ""  # defaults to the triggering branch
    clone: bool = True
    cwd: str = ""  # defaults to the cloned repository root
    conda_env: str = ""
    template: str = "default"
    store_artifacts: bool = True
    artifact_prefix: str = "correct"
    # §7.4 extension: run the shell command inside a published container
    container_image: str = ""
    container_runtime: str = "apptainer"
    # §7.4 extension: also capture an environment snapshot artifact
    capture_environment: bool = False
    # scheduler requirement from declarative suites: a per-test deadline
    # in virtual seconds, enforced by the FaaS layer across all retry
    # attempts (0 = no deadline, the legacy behaviour)
    timeout: float = 0.0

    @classmethod
    def from_step_inputs(cls, inputs: Dict[str, Any]) -> "CorrectInputs":
        """Build from a workflow step's interpolated ``with:`` mapping."""
        known = {
            "client_id", "client_secret", "endpoint_uuid", "shell_cmd",
            "function_uuid", "function_args", "repository", "branch",
            "clone", "cwd", "conda_env", "template", "store_artifacts",
            "artifact_prefix", "container_image", "container_runtime",
            "capture_environment", "timeout",
        }
        unknown = set(inputs) - known
        if unknown:
            raise InputValidationError(
                f"unknown CORRECT inputs: {sorted(unknown)}"
            )
        kwargs: Dict[str, Any] = {}
        for key, value in inputs.items():
            if key in ("clone", "store_artifacts", "capture_environment"):
                kwargs[key] = _to_bool(value, key)
            elif key == "function_args":
                if not isinstance(value, list):
                    raise InputValidationError("function_args must be a list")
                kwargs[key] = value
            elif key == "timeout":
                try:
                    kwargs[key] = float(value)
                except (TypeError, ValueError):
                    raise InputValidationError(
                        f"input 'timeout' must be a number, got {value!r}"
                    ) from None
            else:
                kwargs[key] = str(value)
        try:
            instance = cls(**kwargs)
        except TypeError as exc:
            raise InputValidationError(f"missing required input: {exc}") from None
        instance.validate()
        return instance

    def validate(self) -> None:
        missing = [
            name
            for name in ("client_id", "client_secret", "endpoint_uuid")
            if not getattr(self, name)
        ]
        if missing:
            raise InputValidationError(
                f"missing required CORRECT inputs: {missing}"
            )
        if bool(self.shell_cmd) == bool(self.function_uuid):
            raise InputValidationError(
                "exactly one of shell_cmd / function_uuid must be provided"
            )
        if self.function_uuid and self.conda_env:
            raise InputValidationError(
                "conda_env only applies to shell_cmd execution"
            )
        if self.container_image and not self.shell_cmd:
            raise InputValidationError(
                "container_image only applies to shell_cmd execution"
            )
        if self.container_runtime not in ("apptainer", "singularity", "docker"):
            raise InputValidationError(
                f"unknown container_runtime {self.container_runtime!r}"
            )
        if self.timeout < 0:
            raise InputValidationError(
                f"timeout must be non-negative, got {self.timeout}"
            )


def _to_bool(value: Any, name: str) -> bool:
    if isinstance(value, bool):
        return value
    if isinstance(value, str):
        lowered = value.strip().lower()
        if lowered in ("true", "1", "yes"):
            return True
        if lowered in ("false", "0", "no"):
            return False
    raise InputValidationError(f"input {name!r} must be a boolean, got {value!r}")
