"""Multi-site reproducibility evaluations as a one-call service.

The paper's thesis: "with sufficient accounting (previous execution runs
and their results, system provenance, source code) and automated periodic
reexecution demonstrating result validity, it is possible to evaluate
reproducibility without direct access to the infrastructure" (§5).

:func:`evaluate_across_sites` operationalizes that: given a repository and
a set of endpoints, it builds the CORRECT workflow, drives the run through
every gate, collects per-site test reports, provenance records, and
artifacts, packages everything into a research crate, and renders a
reviewer-facing markdown report with a badge-level recommendation.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Optional, Tuple

from repro.badges.levels import BadgeLevel
from repro.core.reporting import parse_pytest_stdout
from repro.core.workflow_builder import WorkflowBuilder
from repro.errors import CorrectError
from repro.provenance.crate import ResearchCrate
from repro.provenance.record import ExecutionRecord


@dataclass
class SiteEvaluation:
    """One site's slice of the evaluation."""

    site: str
    endpoint_id: str
    tests: Dict[str, Tuple[str, float]] = field(default_factory=dict)
    record: Optional[ExecutionRecord] = None

    @property
    def passed(self) -> int:
        return sum(1 for o, _ in self.tests.values() if o == "PASSED")

    @property
    def failed(self) -> int:
        return len(self.tests) - self.passed

    @property
    def ok(self) -> bool:
        return bool(self.tests) and self.failed == 0


@dataclass
class MultiSiteEvaluation:
    """The complete evaluation: per-site results + the evidence crate."""

    slug: str
    sha: str
    run_id: str
    sites: Dict[str, SiteEvaluation]
    crate: ResearchCrate

    @property
    def consistent(self) -> bool:
        """Same tests, same outcomes, at every site."""
        outcome_maps = [
            {name: o for name, (o, _) in s.tests.items()}
            for s in self.sites.values()
        ]
        return bool(outcome_maps) and all(m == outcome_maps[0] for m in outcome_maps)

    def recommended_badge(self) -> BadgeLevel:
        """The badge level this evidence supports (§3.1.1 semantics).

        * code reference + executions → Artifacts Available;
        * at least one site ran the suite with full provenance →
          Artifacts Evaluated;
        * consistent passing results on ≥2 sites → evidence supporting
          Results Reproduced.
        """
        report = self.crate.completeness_report()
        if not (report["has_code_reference"] and report["has_executions"]):
            return BadgeLevel.NONE
        if not report["all_have_environment"]:
            return BadgeLevel.ARTIFACTS_AVAILABLE
        if (
            report["multi_site"]
            and self.consistent
            and all(s.ok for s in self.sites.values())
        ):
            return BadgeLevel.RESULTS_REPRODUCED
        return BadgeLevel.ARTIFACTS_EVALUATED

    def render_markdown(self) -> str:
        """The reviewer-facing report."""
        lines = [
            f"# Reproducibility evaluation: {self.slug}",
            "",
            f"* commit: `{self.sha}`",
            f"* workflow run: `{self.run_id}`",
            f"* sites evaluated: {', '.join(sorted(self.sites))}",
            f"* outcomes consistent across sites: **{self.consistent}**",
            f"* recommended badge: **{self.recommended_badge().display_name}**",
            "",
            "## Per-site results",
            "",
            "| site | passed | failed | node | conda packages |",
            "|---|---|---|---|---|",
        ]
        for name in sorted(self.sites):
            s = self.sites[name]
            node = s.record.environment.node_name if s.record and s.record.environment else "?"
            pkgs = (
                len(s.record.environment.packages)
                if s.record and s.record.environment
                else 0
            )
            lines.append(
                f"| {name} | {s.passed} | {s.failed} | {node} | {pkgs} recorded |"
            )
        lines += ["", "## Per-test outcomes", ""]
        all_tests = sorted(
            {t for s in self.sites.values() for t in s.tests}
        )
        header = "| test | " + " | ".join(sorted(self.sites)) + " |"
        lines.append(header)
        lines.append("|" + "---|" * (len(self.sites) + 1))
        for test in all_tests:
            cells = []
            for site in sorted(self.sites):
                outcome = self.sites[site].tests.get(test)
                cells.append(
                    f"{outcome[0]} ({outcome[1]:.1f}s)" if outcome else "—"
                )
            lines.append(f"| {test} | " + " | ".join(cells) + " |")
        checklist = self.crate.completeness_report()
        lines += ["", "## Evidence completeness", ""]
        lines.extend(
            f"- [{'x' if ok else ' '}] {check.replace('_', ' ')}"
            for check, ok in checklist.items()
        )
        return "\n".join(lines) + "\n"


def evaluate_across_sites(
    world,
    user,
    slug: str,
    endpoints: Dict[str, str],
    files: Dict[str, str],
    shell_cmd: str = "pytest",
    conda_env: str = "",
    workflow_path: str = ".github/workflows/correct.yml",
) -> MultiSiteEvaluation:
    """Create the repo+workflow, run CORRECT at every site, package evidence.

    ``endpoints`` maps site name → endpoint UUID (deployed by the caller —
    each needs a mapped account for ``user``). The run's environments are
    created with ``user`` as the sole reviewer and auto-approved by them.
    """
    if not endpoints:
        raise CorrectError("no endpoints to evaluate against")
    from repro.experiments import common  # local import: avoids a cycle

    builder = WorkflowBuilder(f"evaluation of {slug}").on_push()
    for site, endpoint_id in endpoints.items():
        step = WorkflowBuilder.correct_step(
            name=f"tests on {site}",
            step_id=f"t-{site}",
            shell_cmd=shell_cmd,
            conda_env=conda_env,
            artifact_prefix=f"correct-{site}",
            capture_environment="true",
        )
        builder.add_job(
            f"eval-{site}", steps=[step], environment=f"hpc-{site}",
            env={"ENDPOINT_UUID": endpoint_id},
        )
    common.create_repo_with_workflow(
        world, slug, owner=user, files=files,
        workflow_path=workflow_path,
        workflow_text=builder.render(),
        environments={
            f"hpc-{site}": {
                "GLOBUS_ID": user.client_id,
                "GLOBUS_SECRET": user.client_secret,
            }
            for site in endpoints
        },
    )
    run = world.engine.runs[-1]
    common.approve_all(world, run, user.login)

    crate = ResearchCrate(
        slug, commit_sha=run.sha,
        title=f"Reproducibility evidence for {slug}",
    )
    sites: Dict[str, SiteEvaluation] = {}
    for site, endpoint_id in endpoints.items():
        evaluation = SiteEvaluation(site=site, endpoint_id=endpoint_id)
        try:
            artifact = world.hub.artifacts.download(
                run.run_id, f"correct-{site}-stdout"
            )
            evaluation.tests = parse_pytest_stdout(artifact.content)
            crate.add_artifact(artifact.name, artifact.content)
        except Exception:  # noqa: BLE001 - a failed site still appears
            pass
        records = [
            r for r in world.provenance.for_repo(slug)
            if r.run_id == run.run_id and r.site == site
        ]
        if records:
            evaluation.record = records[-1]
            crate.add_record(records[-1])
        sites[site] = evaluation
    # attach the run's telemetry so the crate carries the full timeline
    # and metric summaries alongside the records (reviewable offline)
    run_span = getattr(run, "span", None)
    tracer = getattr(world, "tracer", None)
    if tracer is not None and run_span is not None and run_span.trace_id:
        crate.attach_trace(tracer.span_tree(run_span.trace_id))
    metrics = getattr(world, "metrics", None)
    if metrics is not None and len(metrics):
        crate.attach_metrics(metrics.summaries())
    # recovery provenance: a run resumed from a crash journal says so in
    # its crate, so a reviewer can audit which results were replayed
    if getattr(world, "resumed_from", ""):
        crate.mark_resumed(
            world.resumed_from,
            world.crash_point or 0,
            len(getattr(world.faas, "replayed_keys", ())),
        )
    return MultiSiteEvaluation(
        slug=slug, sha=run.sha, run_id=run.run_id, sites=sites, crate=crate
    )
