"""The CI-framework-agnostic core of CORRECT.

§7.1: "We chose GitHub Actions as a CI framework due to its ubiquity...
however, CORRECT can be adapted for use with frameworks like GitLab
CI/CD." :func:`execute_correct` is that adaptable core — authenticate,
register helpers, clone, execute, collect — used by both the GitHub
Action (:mod:`repro.core.action`) and the GitLab component
(:mod:`repro.gitlab.component`).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional

from repro.core.inputs import CorrectInputs
from repro.core.remote import FN_CLONE, FN_RUN_SHELL, REMOTE_FUNCTIONS
from repro.errors import (
    AdmissionRejected,
    CloneFailed,
    RemoteExecutionFailed,
    TaskFailed,
)
from repro.faas.client import ComputeClient
from repro.faas.future import Future, TaskFuture
from repro.faas.service import FaaSService
from repro.telemetry import tracer_of


@dataclass
class CorrectResult:
    """Everything a CI front-end needs to report one CORRECT execution."""

    exit_code: int
    stdout: str
    stderr: str
    task_id: str
    clone_path: str = ""
    sha: str = ""
    environment: Optional[dict] = None
    duration: float = 0.0

    @property
    def ok(self) -> bool:
        return self.exit_code == 0


def register_helpers(client: ComputeClient) -> Dict[str, str]:
    """Register (or refresh) CORRECT's helper functions; returns name→id."""
    return {
        name: client.register_function(fn, name=name, needs_outbound=outbound)
        for name, (fn, outbound) in REMOTE_FUNCTIONS.items()
    }


def execute_correct_async(
    faas: FaaSService,
    inputs: CorrectInputs,
    default_repo: str,
    default_branch: str,
) -> Future:
    """Run the CORRECT flow (§5.3 steps 2–5) without blocking virtual time.

    Returns a :class:`Future` resolving to a :class:`CorrectResult`. The
    remote calls (clone, then the user's command) are issued as task
    futures and chained through completion callbacks, so several CORRECT
    steps on different endpoints make progress through the same span of
    virtual time. Authentication still raises
    :class:`~repro.errors.InvalidCredentials` eagerly; downstream
    failures surface through the future as
    :class:`~repro.errors.CloneFailed` or
    :class:`~repro.errors.RemoteExecutionFailed` (a non-zero *exit code*
    from the user's command is a normal result, not an exception).
    """
    client = ComputeClient(faas, inputs.client_id, inputs.client_secret)
    function_ids = register_helpers(client)
    done = Future(faas.clock)
    # route affinity: resolve the target once so every call in this step
    # (clone, then the payload) lands on the same endpoint even when the
    # target is a pool or a pooled site
    route = faas.resolve_route(inputs.endpoint_uuid)
    # the follow-up submit in on_clone fires from the event loop, where
    # the submitter's context is long gone — capture it here
    tracer = tracer_of(faas.clock)
    ctx = tracer.current()

    def run_payload(clone_path: str, sha: str) -> None:
        if inputs.shell_cmd:
            command = inputs.shell_cmd
            if inputs.container_image:
                command = (
                    f"{inputs.container_runtime} exec "
                    f"{inputs.container_image} {inputs.shell_cmd}"
                )
            shell_future = client.submit(
                inputs.endpoint_uuid,
                function_ids[FN_RUN_SHELL],
                command,
                cwd=inputs.cwd or clone_path,
                conda_env=inputs.conda_env,
                template=inputs.template,
                timeout=inputs.timeout or None,
                route=route,
            )

            def on_shell(fut: TaskFuture) -> None:
                try:
                    result = fut.result()
                except TaskFailed as exc:
                    done.set_exception(
                        RemoteExecutionFailed(
                            f"remote execution failed: {exc}",
                            stderr=exc.remote_traceback,
                        )
                    )
                    return
                done.set_result(
                    CorrectResult(
                        exit_code=int(result["exit_code"]),
                        stdout=result["stdout"],
                        stderr=result["stderr"],
                        task_id=fut.task_id,
                        clone_path=clone_path,
                        sha=sha,
                        environment=result.get("environment"),
                        duration=float(result.get("duration", 0.0)),
                    )
                )

            shell_future.add_done_callback(on_shell)
            return

        fn_future = client.submit(
            inputs.endpoint_uuid,
            inputs.function_uuid,
            *inputs.function_args,
            template=inputs.template,
            timeout=inputs.timeout or None,
            route=route,
        )

        def on_function(fut: TaskFuture) -> None:
            try:
                value = fut.result()
            except TaskFailed as exc:
                done.set_exception(
                    RemoteExecutionFailed(
                        f"remote execution failed: {exc}",
                        stderr=exc.remote_traceback,
                    )
                )
                return
            done.set_result(
                CorrectResult(
                    exit_code=0,
                    stdout=str(value),
                    stderr="",
                    task_id=fut.task_id,
                    clone_path=clone_path,
                    sha=sha,
                )
            )

        fn_future.add_done_callback(on_function)

    if inputs.clone:
        slug = inputs.repository or default_repo
        branch = inputs.branch or default_branch
        clone_future = client.submit(
            inputs.endpoint_uuid,
            function_ids[FN_CLONE],
            slug,
            branch,
            template=inputs.template,
            route=route,
        )

        def submit_payload(path: str, sha: str, retries: int, delay: float) -> None:
            try:
                with tracer.activate(ctx):
                    run_payload(path, sha)
            except AdmissionRejected as exc:
                # mid-flow admission pushback (overload plane): the
                # caller already holds a finished clone and cannot
                # resubmit the whole flow, so back off on the virtual
                # clock and retry the payload submission, bounded
                if retries > 0:
                    faas.clock.call_after(
                        delay,
                        lambda: submit_payload(
                            path, sha, retries - 1, delay * 2.0
                        ),
                    )
                else:
                    done.set_exception(exc)
            except Exception as exc:  # noqa: BLE001 - eager submit errors
                # must not escape into the event loop driving this callback
                done.set_exception(exc)

        def on_clone(fut: TaskFuture) -> None:
            try:
                clone_result = fut.result()
            except TaskFailed as exc:
                done.set_exception(
                    CloneFailed(
                        f"repository clone of {slug}@{branch} failed: "
                        f"{exc.remote_traceback or exc}"
                    )
                )
                return
            submit_payload(
                clone_result["path"], clone_result.get("sha", ""),
                retries=4, delay=5.0,
            )

        clone_future.add_done_callback(on_clone)
    else:
        run_payload("", "")

    return done


def execute_correct(
    faas: FaaSService,
    inputs: CorrectInputs,
    default_repo: str,
    default_branch: str,
) -> CorrectResult:
    """Blocking wrapper over :func:`execute_correct_async`.

    Drives virtual time until the flow completes; raises the same
    exceptions the async path delivers through its future.
    """
    return execute_correct_async(
        faas, inputs, default_repo, default_branch
    ).result()
