"""The CI-framework-agnostic core of CORRECT.

§7.1: "We chose GitHub Actions as a CI framework due to its ubiquity...
however, CORRECT can be adapted for use with frameworks like GitLab
CI/CD." :func:`execute_correct` is that adaptable core — authenticate,
register helpers, clone, execute, collect — used by both the GitHub
Action (:mod:`repro.core.action`) and the GitLab component
(:mod:`repro.gitlab.component`).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional

from repro.core.inputs import CorrectInputs
from repro.core.remote import FN_CLONE, FN_RUN_SHELL, REMOTE_FUNCTIONS
from repro.errors import CloneFailed, RemoteExecutionFailed, TaskFailed
from repro.faas.client import ComputeClient
from repro.faas.service import FaaSService


@dataclass
class CorrectResult:
    """Everything a CI front-end needs to report one CORRECT execution."""

    exit_code: int
    stdout: str
    stderr: str
    task_id: str
    clone_path: str = ""
    sha: str = ""
    environment: Optional[dict] = None
    duration: float = 0.0

    @property
    def ok(self) -> bool:
        return self.exit_code == 0


def register_helpers(client: ComputeClient) -> Dict[str, str]:
    """Register (or refresh) CORRECT's helper functions; returns name→id."""
    return {
        name: client.register_function(fn, name=name, needs_outbound=outbound)
        for name, (fn, outbound) in REMOTE_FUNCTIONS.items()
    }


def execute_correct(
    faas: FaaSService,
    inputs: CorrectInputs,
    default_repo: str,
    default_branch: str,
) -> CorrectResult:
    """Run the CORRECT flow (§5.3 steps 2–5).

    Raises :class:`~repro.errors.InvalidCredentials` on bad client
    credentials, :class:`~repro.errors.CloneFailed` when the repository
    clone fails remotely, and :class:`~repro.errors.RemoteExecutionFailed`
    when the task infrastructure fails (a non-zero *exit code* from the
    user's command is a normal result, not an exception).
    """
    client = ComputeClient(faas, inputs.client_id, inputs.client_secret)
    function_ids = register_helpers(client)

    clone_path = ""
    sha = ""
    if inputs.clone:
        slug = inputs.repository or default_repo
        branch = inputs.branch or default_branch
        try:
            task_id = client.run(
                inputs.endpoint_uuid,
                function_ids[FN_CLONE],
                slug,
                branch,
                template=inputs.template,
            )
            clone_result = client.get_result(task_id)
        except TaskFailed as exc:
            raise CloneFailed(
                f"repository clone of {slug}@{branch} failed: "
                f"{exc.remote_traceback or exc}"
            ) from exc
        clone_path = clone_result["path"]
        sha = clone_result.get("sha", "")

    if inputs.shell_cmd:
        command = inputs.shell_cmd
        if inputs.container_image:
            command = (
                f"{inputs.container_runtime} exec "
                f"{inputs.container_image} {inputs.shell_cmd}"
            )
        try:
            task_id = client.run(
                inputs.endpoint_uuid,
                function_ids[FN_RUN_SHELL],
                command,
                cwd=inputs.cwd or clone_path,
                conda_env=inputs.conda_env,
                template=inputs.template,
            )
            result = client.get_result(task_id)
        except TaskFailed as exc:
            raise RemoteExecutionFailed(
                f"remote execution failed: {exc}",
                stderr=exc.remote_traceback,
            ) from exc
        return CorrectResult(
            exit_code=int(result["exit_code"]),
            stdout=result["stdout"],
            stderr=result["stderr"],
            task_id=task_id,
            clone_path=clone_path,
            sha=sha,
            environment=result.get("environment"),
            duration=float(result.get("duration", 0.0)),
        )

    try:
        task_id = client.run(
            inputs.endpoint_uuid,
            inputs.function_uuid,
            *inputs.function_args,
            template=inputs.template,
        )
        value = client.get_result(task_id)
    except TaskFailed as exc:
        raise RemoteExecutionFailed(
            f"remote execution failed: {exc}",
            stderr=exc.remote_traceback,
        ) from exc
    return CorrectResult(
        exit_code=0,
        stdout=str(value),
        stderr="",
        task_id=task_id,
        clone_path=clone_path,
        sha=sha,
    )
