"""CORRECT — COntinuous Reproducibility with a Remote Execution Computing Tool.

The paper's contribution (§5.3): a GitHub Action that executes
reproducibility tests on arbitrary remote computing sites through the
federated FaaS platform, from an ordinary workflow step:

.. code-block:: yaml

    - name: Run tox
      id: tox
      uses: globus-labs/correct@v1
      with:
        client_id: ${{ secrets.GLOBUS_ID }}
        client_secret: ${{ secrets.GLOBUS_SECRET }}
        endpoint_uuid: ${{ env.ENDPOINT_UUID }}
        shell_cmd: 'tox'

The action authenticates with the client credentials, clones the
triggering repository on the endpoint (login node when compute nodes lack
outbound internet), runs the user's shell command or pre-registered
function, and returns stdout/stderr to the runner — storing them as
workflow artifacts and emitting a provenance record.
"""

from repro.core.inputs import CorrectInputs
from repro.core.action import CorrectAction, CORRECT_REFERENCE, publish_correct
from repro.core.security import (
    sole_reviewer_rules,
    correct_function_ids,
    restrict_template_to_correct,
    audit_environment,
)
from repro.core.reporting import parse_pytest_stdout, summarize_result
from repro.core.workflow_builder import WorkflowBuilder, render_yaml
from repro.core.repeatability import RepeatabilityEvaluation, evaluate_repeatability
from repro.core.driver import CorrectResult, execute_correct
from repro.core.evaluation import (
    MultiSiteEvaluation,
    SiteEvaluation,
    evaluate_across_sites,
)

__all__ = [
    "CorrectInputs",
    "CorrectAction",
    "CORRECT_REFERENCE",
    "publish_correct",
    "sole_reviewer_rules",
    "correct_function_ids",
    "restrict_template_to_correct",
    "audit_environment",
    "parse_pytest_stdout",
    "summarize_result",
    "WorkflowBuilder",
    "render_yaml",
    "RepeatabilityEvaluation",
    "evaluate_repeatability",
    "CorrectResult",
    "execute_correct",
    "MultiSiteEvaluation",
    "SiteEvaluation",
    "evaluate_across_sites",
]
