"""The remote function bodies CORRECT registers with the FaaS service.

Each takes a :class:`~repro.faas.functions.FunctionContext` (injected by
the endpoint) and returns plain data. ``clone_repository`` is flagged
``needs_outbound`` so restricted sites route it to the login node
(§6.1's MEP-template behaviour); ``run_shell_command`` runs wherever the
endpoint's template puts ordinary tasks.
"""

from __future__ import annotations

from dataclasses import asdict
from typing import Any, Dict

from repro.durability.recovery import register_restorer
from repro.faas.functions import FunctionContext
from repro.provenance.record import EnvironmentSnapshot

CLONE_DIR_NAME = "gc-action-temp"

FN_CLONE = "correct.clone_repository"
FN_RUN_SHELL = "correct.run_shell_command"
FN_CAPTURE_ENV = "correct.capture_environment"
FN_READ_FILE = "correct.read_file"


def clone_repository(
    fctx: FunctionContext,
    slug: str,
    branch: str = "",
    dest_root: str = "",
) -> Dict[str, str]:
    """Clone ``slug`` into a compute-accessible temporary directory.

    Returns the clone path and resolved commit SHA. A pre-existing clone
    is removed first so every evaluation tests the latest code (§5.3).
    """
    shell = fctx.shell()
    root = dest_root or f"{fctx.handle.scratch()}/{CLONE_DIR_NAME}"
    repo_name = slug.rsplit("/", 1)[-1]
    dest = f"{root}/{repo_name}"
    shell.run(f"mkdir -p {root}")
    if fctx.handle.fs_exists(dest):
        shell.run(f"rm -rf {dest}")
    branch_flag = f"-b {branch} " if branch else ""
    result = shell.run(
        f"cd {root} && git clone {branch_flag}https://github.com/{slug}"
    )
    if not result.ok:
        raise RuntimeError(f"clone of {slug} failed: {result.stderr}")
    return {"path": dest, "sha": shell.env.get("GIT_HEAD", "")}


def _restore_clone(
    fctx: FunctionContext,
    result: Dict[str, str],
    slug: str,
    branch: str = "",
    dest_root: str = "",
) -> None:
    """Replay-time restorer for :func:`clone_repository`.

    A journaled clone's *result* is just ``{path, sha}`` — the working
    tree it produced on the remote filesystem is a side effect the
    journal cannot carry. Re-materialise it from the hub at the recorded
    SHA so downstream steps (test runs in the clone) find their files.
    """
    hub = fctx.shell_services.hub
    dest = (result or {}).get("path", "")
    sha = (result or {}).get("sha", "")
    if hub is None or not dest or not sha:
        return
    files = hub.repo(slug).repository.files_at(sha)
    fctx.handle.fs_write_tree(dest, files)


register_restorer(FN_CLONE, _restore_clone)


def run_shell_command(
    fctx: FunctionContext,
    command: str,
    cwd: str = "",
    conda_env: str = "",
) -> Dict[str, Any]:
    """Run a user shell command; returns exit code, output, and a snapshot.

    Only stdout/stderr travel back — shell functions cannot return output
    *files*, the limitation §7.4 discusses (use :func:`read_file` for a
    specific remote file).
    """
    shell = fctx.shell()
    if cwd:
        cd = shell.run(f"cd {cwd}")
        if not cd.ok:
            return {
                "exit_code": cd.exit_code,
                "stdout": cd.stdout,
                "stderr": cd.stderr,
                "duration": 0.0,
                "environment": None,
            }
    if conda_env:
        activate = shell.run(f"conda activate {conda_env}")
        if not activate.ok:
            return {
                "exit_code": activate.exit_code,
                "stdout": activate.stdout,
                "stderr": activate.stderr,
                "duration": 0.0,
                "environment": None,
            }
    result = shell.run(command)
    snapshot = EnvironmentSnapshot.capture(
        fctx.handle,
        conda_env=conda_env or shell.active_env,
        env_vars=dict(shell.env),
    )
    return {
        "exit_code": result.exit_code,
        "stdout": result.stdout,
        "stderr": result.stderr,
        "duration": result.duration,
        "environment": asdict(snapshot),
    }


def capture_environment(
    fctx: FunctionContext, conda_env: str = "base"
) -> Dict[str, Any]:
    """Snapshot the endpoint environment (the §7.4 provenance extension)."""
    snapshot = EnvironmentSnapshot.capture(fctx.handle, conda_env=conda_env)
    return asdict(snapshot)


def read_file(fctx: FunctionContext, path: str) -> str:
    """Fetch one remote file's content (e.g. a test report JSON)."""
    return fctx.handle.fs_read(path)


REMOTE_FUNCTIONS = {
    FN_CLONE: (clone_repository, True),  # (fn, needs_outbound)
    FN_RUN_SHELL: (run_shell_command, False),
    FN_CAPTURE_ENV: (capture_environment, False),
    FN_READ_FILE: (read_file, False),
}
