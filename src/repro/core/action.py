"""The CORRECT GitHub Action implementation."""

from __future__ import annotations

import json

from repro.core.driver import (
    CorrectResult,
    execute_correct_async,
    register_helpers,
)
from repro.core.inputs import CorrectInputs
from repro.core.remote import FN_CAPTURE_ENV, FN_RUN_SHELL
from repro.errors import (
    CloneFailed,
    InputValidationError,
    InvalidCredentials,
    RemoteExecutionFailed,
    ReproError,
)
from repro.faas.client import ComputeClient
from repro.faas.future import Future
from repro.hub.marketplace import ActionMetadata
from repro.provenance.record import EnvironmentSnapshot, ExecutionRecord

CORRECT_REFERENCE = "globus-labs/correct@v1"


class CorrectAction:
    """Marketplace implementation of ``globus-labs/correct@v1``.

    Flow (paper §5.3):

    1. ensure the compute SDK is installed on the runner (pip install),
    2. authenticate with the client id/secret from environment secrets,
    3. register/refresh the helper functions,
    4. clone the repository on the endpoint (latest code),
    5. run the user's ``shell_cmd`` or pre-registered ``function_uuid``
       (optionally inside a published container image — the §7.4 extension),
    6. return stdout/stderr to the runner, store them as workflow
       artifacts (pass or fail), optionally capture an environment
       snapshot artifact, and emit a provenance record.

    Clone failure or user-function failure fails the step; artifact
    storage and provenance capture still happen so the evidence survives.
    Steps 2–5 are shared with the GitLab component through
    :mod:`repro.core.driver`.
    """

    def run(self, ctx) -> "StepOutcome":  # noqa: F821 - engine protocol
        """Blocking wrapper: drives virtual time until the step finishes."""
        return self.run_async(ctx).result()

    def run_async(self, ctx) -> Future:
        """Deferred step execution; resolves to the :class:`StepOutcome`.

        Remote calls are issued as futures, so CORRECT steps for jobs on
        different endpoints progress through overlapping virtual time
        when the engine runs jobs concurrently. The returned future never
        carries an exception — failures become failure outcomes, exactly
        as in the blocking path.
        """
        from repro.actions.engine import StepOutcome
        from repro.telemetry import tracer_of

        clock = ctx.engine.clock
        done = Future(clock)
        tracer = tracer_of(clock)
        # parents under the engine's active step span
        span = tracer.start_span("action:correct", kind="action")

        def resolve(outcome: "StepOutcome") -> Future:
            tracer.end_span(
                span,
                status="ok" if outcome.status == "success" else "error",
                error=outcome.error,
            )
            done.set_result(outcome)
            return done

        try:
            inputs = CorrectInputs.from_step_inputs(ctx.inputs)
        except InputValidationError as exc:
            return resolve(
                StepOutcome(status="failure", error=f"CORRECT: {exc}")
            )
        span.attributes.update(
            endpoint=inputs.endpoint_uuid,
            command=inputs.shell_cmd or f"function:{inputs.function_uuid}",
        )

        faas = ctx.services.faas
        if faas is None:
            return resolve(
                StepOutcome(
                    status="failure",
                    error="CORRECT: no FaaS service configured in EngineServices",
                )
            )

        # 1. the runner needs the compute SDK before it can talk to the cloud
        session = ctx.runner.shell(services=ctx.shell_services(), env=ctx.env)
        sdk = session.run("pip install globus-compute-sdk")
        if not sdk.ok:
            return resolve(
                StepOutcome(
                    status="failure",
                    error=f"CORRECT: cannot install compute SDK: {sdk.stderr}",
                    log=sdk.combined_output(),
                )
            )

        # 2-5. the framework-agnostic core, issued as a chained future
        try:
            with tracer.activate(span.context):
                result_future = execute_correct_async(
                    faas, inputs, ctx.run.repo_slug, ctx.run.branch
                )
        except InvalidCredentials as exc:
            return resolve(
                StepOutcome(status="failure", error=f"CORRECT: {exc}")
            )
        except ReproError as exc:
            return resolve(
                StepOutcome(
                    status="failure",
                    error=f"CORRECT: {type(exc).__name__}: {exc}",
                )
            )

        def finish(fut: Future) -> None:
            # conclusion work (env snapshot, provenance) submits under the
            # action span even though the callback fires contextless
            with tracer.activate(span.context):
                outcome = self._conclude(ctx, inputs, faas, fut)
            resolve(outcome)

        result_future.add_done_callback(finish)
        return done

    def _conclude(self, ctx, inputs, faas, fut: Future) -> "StepOutcome":
        """Map the (resolved) core future to a step outcome + evidence."""
        from repro.actions.engine import StepOutcome

        try:
            result = fut.result()
        except InvalidCredentials as exc:
            return StepOutcome(status="failure", error=f"CORRECT: {exc}")
        except CloneFailed as exc:
            self._store_artifacts(ctx, inputs, stdout="", stderr=str(exc))
            return StepOutcome(
                status="failure",
                error=f"CORRECT: repository clone failed: {exc}",
                outputs={"stderr": str(exc)},
            )
        except RemoteExecutionFailed as exc:
            detail = exc.stderr or str(exc)
            self._store_artifacts(ctx, inputs, stdout="", stderr=detail)
            return StepOutcome(
                status="failure",
                error=f"CORRECT: remote execution failed: {exc}",
                log=detail,
                outputs={"stderr": detail, "task_id": ""},
            )
        except ReproError as exc:
            return StepOutcome(
                status="failure", error=f"CORRECT: {type(exc).__name__}: {exc}"
            )

        # 6. evidence: artifacts (pass or fail) + snapshot + provenance
        self._store_artifacts(
            ctx, inputs, stdout=result.stdout, stderr=result.stderr
        )
        if inputs.capture_environment:
            self._capture_environment(ctx, inputs, faas)
        self._record_provenance(ctx, inputs, result)

        outputs = {
            "task_id": result.task_id,
            "exit_code": str(result.exit_code),
            "stdout": result.stdout,
            "stderr": result.stderr,
            "sha": result.sha,
            "clone_path": result.clone_path,
        }
        log_parts = []
        if result.clone_path:
            log_parts.append(
                f"cloned {inputs.repository or ctx.run.repo_slug}"
                f"@{inputs.branch or ctx.run.branch} to {result.clone_path}"
            )
        log_parts.append(result.stdout)
        if result.stderr:
            log_parts.append(result.stderr)

        return StepOutcome(
            status="success" if result.ok else "failure",
            outputs=outputs,
            log="\n".join(p for p in log_parts if p),
            error="" if result.ok else (
                f"CORRECT: remote command exited {result.exit_code}"
            ),
        )

    # -- helpers ------------------------------------------------------------------
    def _store_artifacts(
        self, ctx, inputs: CorrectInputs, stdout: str, stderr: str
    ) -> None:
        if not inputs.store_artifacts:
            return
        store = ctx.engine.hub.artifacts
        store.upload(ctx.run.run_id, f"{inputs.artifact_prefix}-stdout", stdout)
        store.upload(ctx.run.run_id, f"{inputs.artifact_prefix}-stderr", stderr)

    def _capture_environment(self, ctx, inputs: CorrectInputs, faas) -> None:
        """§7.4 extension: a secondary call snapshots the remote environment."""
        client = ComputeClient(faas, inputs.client_id, inputs.client_secret)
        function_ids = register_helpers(client)
        env_task = client.run(
            inputs.endpoint_uuid,
            function_ids[FN_CAPTURE_ENV],
            conda_env=inputs.conda_env or "base",
            template=inputs.template,
        )
        ctx.engine.hub.artifacts.upload(
            ctx.run.run_id,
            f"{inputs.artifact_prefix}-environment",
            json.dumps(client.get_result(env_task), indent=2, sort_keys=True),
        )

    def _record_provenance(
        self, ctx, inputs: CorrectInputs, result: CorrectResult
    ) -> None:
        from repro.faults.injector import injector_of
        from repro.telemetry import tracer_of

        store = ctx.services.provenance
        if store is None:
            return
        faas = ctx.services.faas
        task = faas.get_task(result.task_id)
        injector = injector_of(faas.clock)
        snapshot = (
            EnvironmentSnapshot(**result.environment)
            if result.environment
            else None
        )
        task_span = faas.get_future(result.task_id).span
        timeline = (
            [
                s.to_dict()
                for s in tracer_of(faas.clock).subtree(task_span.span_id)
            ]
            if task_span is not None and task_span.span_id
            else []
        )
        record = ExecutionRecord(
            record_id=store.next_record_id(),
            run_id=ctx.run.run_id,
            repo_slug=inputs.repository or ctx.run.repo_slug,
            commit_sha=ctx.run.sha,
            site=snapshot.site if snapshot else "",
            endpoint_id=task.endpoint_id,
            identity_urn=task.identity_urn,
            function_name=FN_RUN_SHELL if inputs.shell_cmd else inputs.function_uuid,
            command=inputs.shell_cmd or f"function:{inputs.function_uuid}",
            started_at=task.started_at or 0.0,
            completed_at=task.completed_at or 0.0,
            exit_code=result.exit_code,
            stdout_artifact=f"{inputs.artifact_prefix}-stdout",
            stderr_artifact=f"{inputs.artifact_prefix}-stderr",
            environment=snapshot,
            trace_id=task_span.trace_id if task_span is not None else "",
            span_id=task_span.span_id if task_span is not None else "",
            timeline=timeline,
            fault_seed=injector.plan.seed if injector.active else None,
            fault_profile=injector.plan.profile if injector.active else "",
            task_attempts=task.attempts,
            task_gave_up=getattr(task, "gave_up", False),
            task_last_error=getattr(task, "last_error_kind", ""),
            task_replayed=getattr(task, "replayed", False),
            routed_by=task.routed_by,
            pool=task.pool,
            queue_depth_at_route=task.queue_depth_at_route,
            hedged=getattr(task, "hedged", False),
            hedge_won=getattr(task, "hedge_won", False),
            loser_endpoint=getattr(task, "loser_endpoint", ""),
        )
        store.add(record)


def publish_correct(marketplace) -> None:
    """Publish CORRECT to a marketplace (its GitHub listing, §5.3)."""
    if CORRECT_REFERENCE in marketplace.listings():
        return
    marketplace.publish(
        CORRECT_REFERENCE,
        CorrectAction(),
        ActionMetadata(
            reference=CORRECT_REFERENCE,
            description=(
                "Validate reproducibility across HPC and cloud resources by "
                "remotely executing tests through a federated FaaS platform."
            ),
            inputs={
                "client_id": "FaaS client id (store as a secret)",
                "client_secret": "FaaS client secret (store as a secret)",
                "endpoint_uuid": "target endpoint UUID",
                "shell_cmd": "shell command to run remotely",
                "function_uuid": "pre-registered function to run instead",
                "container_image": "run shell_cmd inside this image (§7.4)",
                "capture_environment": "also store an environment snapshot",
            },
            required_inputs=["client_id", "client_secret", "endpoint_uuid"],
        ),
    )
