"""A small git-like version control system.

This substrate backs the hosting service (:mod:`repro.hub`): repositories
are content-addressed snapshots with commits, branches, and tags, and the
``git`` command in :mod:`repro.shellsim` clones them onto simulated site
filesystems — exactly the operation CORRECT performs remotely before
running tests (§5.3 of the paper).
"""

from repro.vcs.objects import Blob, Tree, Commit, ObjectStore
from repro.vcs.repository import Repository, Ref
from repro.vcs.remote import clone, fork, push

__all__ = [
    "Blob",
    "Tree",
    "Commit",
    "ObjectStore",
    "Repository",
    "Ref",
    "clone",
    "fork",
    "push",
]
