"""Content-addressed objects: blobs, trees, commits.

The design follows git: a :class:`Blob` stores file content, a
:class:`Tree` maps names to child object ids, and a :class:`Commit` points
to a root tree plus parent commits. All objects live in an
:class:`ObjectStore` keyed by content hash, so identical content is stored
once and object ids are stable across runs.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional, Tuple

from repro.errors import ObjectNotFound
from repro.util.hashing import content_hash


@dataclass(frozen=True)
class Blob:
    """File content. ``data`` is text; binary payloads are base64 text."""

    data: str

    @property
    def oid(self) -> str:
        return content_hash("blob", self.data)


@dataclass(frozen=True)
class Tree:
    """Directory listing: sorted name → (kind, oid) entries."""

    entries: Tuple[Tuple[str, str, str], ...]  # (name, kind, oid), sorted

    @property
    def oid(self) -> str:
        body = "\n".join(f"{k} {o} {n}" for n, k, o in self.entries)
        return content_hash("tree", body)

    def lookup(self, name: str) -> Optional[Tuple[str, str]]:
        """Return (kind, oid) for ``name`` or None."""
        for n, k, o in self.entries:
            if n == name:
                return (k, o)
        return None


@dataclass(frozen=True)
class Commit:
    """A snapshot: root tree, parents, author, message, timestamp."""

    tree: str
    parents: Tuple[str, ...]
    author: str
    message: str
    timestamp: float

    @property
    def oid(self) -> str:
        body = "\n".join(
            [
                f"tree {self.tree}",
                *[f"parent {p}" for p in self.parents],
                f"author {self.author} {self.timestamp!r}",
                "",
                self.message,
            ]
        )
        return content_hash("commit", body)

    def short(self) -> str:
        return self.oid[:10]


class ObjectStore:
    """Content-addressed store for blobs, trees, and commits."""

    def __init__(self) -> None:
        self._blobs: Dict[str, Blob] = {}
        self._trees: Dict[str, Tree] = {}
        self._commits: Dict[str, Commit] = {}

    # -- writes -------------------------------------------------------------
    def put_blob(self, data: str) -> str:
        blob = Blob(data)
        self._blobs[blob.oid] = blob
        return blob.oid

    def put_tree(self, entries: Dict[str, Tuple[str, str]]) -> str:
        """``entries`` maps name → (kind, oid); kind is 'blob' or 'tree'."""
        tup = tuple(sorted((n, k, o) for n, (k, o) in entries.items()))
        tree = Tree(tup)
        self._trees[tree.oid] = tree
        return tree.oid

    def put_commit(self, commit: Commit) -> str:
        self._commits[commit.oid] = commit
        return commit.oid

    # -- reads --------------------------------------------------------------
    def blob(self, oid: str) -> Blob:
        try:
            return self._blobs[oid]
        except KeyError:
            raise ObjectNotFound(f"blob {oid}") from None

    def tree(self, oid: str) -> Tree:
        try:
            return self._trees[oid]
        except KeyError:
            raise ObjectNotFound(f"tree {oid}") from None

    def commit(self, oid: str) -> Commit:
        try:
            return self._commits[oid]
        except KeyError:
            raise ObjectNotFound(f"commit {oid}") from None

    def has_commit(self, oid: str) -> bool:
        return oid in self._commits

    # -- tree helpers ---------------------------------------------------------
    def tree_from_files(self, files: Dict[str, str]) -> str:
        """Build a nested tree from a flat {path: content} mapping."""
        root: Dict[str, object] = {}
        for path, data in files.items():
            parts = [p for p in path.split("/") if p]
            if not parts:
                raise ValueError(f"empty path in file mapping: {path!r}")
            node = root
            for part in parts[:-1]:
                child = node.setdefault(part, {})
                if not isinstance(child, dict):
                    raise ValueError(f"path conflict at {part!r} in {path!r}")
                node = child
            if isinstance(node.get(parts[-1]), dict):
                raise ValueError(f"path conflict: {path!r} is also a directory")
            node[parts[-1]] = data
        return self._store_dir(root)

    def _store_dir(self, node: Dict[str, object]) -> str:
        entries: Dict[str, Tuple[str, str]] = {}
        for name, child in node.items():
            if isinstance(child, dict):
                entries[name] = ("tree", self._store_dir(child))
            else:
                entries[name] = ("blob", self.put_blob(str(child)))
        return self.put_tree(entries)

    def files_from_tree(self, tree_oid: str, prefix: str = "") -> Dict[str, str]:
        """Flatten a tree back into {path: content}."""
        out: Dict[str, str] = {}
        tree = self.tree(tree_oid)
        for name, kind, oid in tree.entries:
            path = f"{prefix}{name}"
            if kind == "tree":
                out.update(self.files_from_tree(oid, prefix=f"{path}/"))
            else:
                out[path] = self.blob(oid).data
        return out

    def copy_reachable(self, commit_oid: str, dest: "ObjectStore") -> int:
        """Copy a commit and everything reachable from it into ``dest``.

        Returns the number of objects copied. Used by clone/fork/push.
        """
        copied = 0
        stack = [commit_oid]
        seen_commits = set()
        while stack:
            oid = stack.pop()
            if oid in seen_commits:
                continue
            seen_commits.add(oid)
            commit = self.commit(oid)
            if not dest.has_commit(oid):
                dest.put_commit(commit)
                copied += 1
            copied += self._copy_tree(commit.tree, dest)
            stack.extend(commit.parents)
        return copied

    def _copy_tree(self, tree_oid: str, dest: "ObjectStore") -> int:
        copied = 0
        if tree_oid in dest._trees:
            return 0
        tree = self.tree(tree_oid)
        dest._trees[tree_oid] = tree
        copied += 1
        for _name, kind, oid in tree.entries:
            if kind == "tree":
                copied += self._copy_tree(oid, dest)
            else:
                if oid not in dest._blobs:
                    dest._blobs[oid] = self.blob(oid)
                    copied += 1
        return copied

    def stats(self) -> Dict[str, int]:
        return {
            "blobs": len(self._blobs),
            "trees": len(self._trees),
            "commits": len(self._commits),
        }
