"""Repository: refs (branches/tags) over an object store, commits, diffs."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Set, Tuple

from repro.errors import MergeConflict, RefNotFound
from repro.vcs.objects import Commit, ObjectStore


@dataclass
class Ref:
    """A named pointer to a commit."""

    name: str
    target: str  # commit oid
    kind: str = "branch"  # "branch" | "tag"


class Repository:
    """A git-like repository.

    The working model is snapshot-based: :meth:`commit` takes a full
    ``{path: content}`` mapping (or applies a patch to the parent snapshot)
    and records a new commit on a branch. There is no index/staging area —
    CI systems only care about committed trees.
    """

    def __init__(
        self,
        name: str,
        store: Optional[ObjectStore] = None,
        default_branch: str = "main",
    ) -> None:
        self.name = name
        self.store = store if store is not None else ObjectStore()
        self.default_branch = default_branch
        self._refs: Dict[str, Ref] = {}

    # -- refs ----------------------------------------------------------------
    def branches(self) -> List[str]:
        return sorted(r.name for r in self._refs.values() if r.kind == "branch")

    def tags(self) -> List[str]:
        return sorted(r.name for r in self._refs.values() if r.kind == "tag")

    def resolve(self, ref_or_oid: str) -> str:
        """Resolve a branch/tag name or commit oid prefix to a commit oid."""
        if ref_or_oid in self._refs:
            return self._refs[ref_or_oid].target
        if self.store.has_commit(ref_or_oid):
            return ref_or_oid
        matches = [
            oid for oid in self.store._commits if oid.startswith(ref_or_oid)
        ]
        if len(matches) == 1:
            return matches[0]
        raise RefNotFound(f"{self.name}: cannot resolve {ref_or_oid!r}")

    def set_branch(self, name: str, commit_oid: str) -> None:
        if not self.store.has_commit(commit_oid):
            raise RefNotFound(f"commit {commit_oid} not in {self.name}")
        self._refs[name] = Ref(name, commit_oid, "branch")

    def set_tag(self, name: str, commit_oid: str) -> None:
        if name in self._refs:
            raise RefNotFound(f"tag {name!r} already exists in {self.name}")
        if not self.store.has_commit(commit_oid):
            raise RefNotFound(f"commit {commit_oid} not in {self.name}")
        self._refs[name] = Ref(name, commit_oid, "tag")

    def delete_branch(self, name: str) -> None:
        ref = self._refs.get(name)
        if ref is None or ref.kind != "branch":
            raise RefNotFound(f"no branch {name!r} in {self.name}")
        if name == self.default_branch:
            raise RefNotFound(f"refusing to delete default branch {name!r}")
        del self._refs[name]

    def head(self, branch: Optional[str] = None) -> str:
        """Commit oid at the tip of ``branch`` (default branch if omitted)."""
        branch = branch or self.default_branch
        ref = self._refs.get(branch)
        if ref is None:
            raise RefNotFound(f"no branch {branch!r} in {self.name}")
        return ref.target

    def is_empty(self) -> bool:
        return not self._refs

    # -- commits ---------------------------------------------------------------
    def commit(
        self,
        files: Optional[Dict[str, str]] = None,
        message: str = "",
        author: str = "nobody",
        branch: Optional[str] = None,
        timestamp: float = 0.0,
        patch: Optional[Dict[str, Optional[str]]] = None,
    ) -> str:
        """Record a commit on ``branch`` and return its oid.

        Either ``files`` (full snapshot) or ``patch`` (changes relative to
        the branch tip: content to add/update, ``None`` to delete) must be
        given. A branch that does not exist yet is created.
        """
        branch = branch or self.default_branch
        parent: Tuple[str, ...] = ()
        base: Dict[str, str] = {}
        if branch in self._refs:
            parent = (self._refs[branch].target,)
            base = self.files_at(parent[0])
        elif self.default_branch in self._refs:
            # a new branch forks from the default branch tip, like
            # `git switch -c <branch>` from an up-to-date checkout
            parent = (self._refs[self.default_branch].target,)
            base = self.files_at(parent[0])
        if files is not None and patch is not None:
            raise ValueError("pass either files= or patch=, not both")
        if files is not None:
            snapshot = dict(files)
        elif patch is not None:
            snapshot = dict(base)
            for path, content in patch.items():
                if content is None:
                    snapshot.pop(path, None)
                else:
                    snapshot[path] = content
        else:
            raise ValueError("commit needs files= or patch=")
        tree_oid = self.store.tree_from_files(snapshot)
        commit = Commit(
            tree=tree_oid,
            parents=parent,
            author=author,
            message=message,
            timestamp=timestamp,
        )
        oid = self.store.put_commit(commit)
        self._refs[branch] = Ref(branch, oid, "branch")
        return oid

    def files_at(self, ref_or_oid: str) -> Dict[str, str]:
        """Full ``{path: content}`` snapshot at a ref or commit."""
        oid = self.resolve(ref_or_oid)
        return self.store.files_from_tree(self.store.commit(oid).tree)

    def read_file(self, ref_or_oid: str, path: str) -> str:
        files = self.files_at(ref_or_oid)
        if path not in files:
            raise RefNotFound(f"{self.name}:{ref_or_oid} has no file {path!r}")
        return files[path]

    def log(self, ref_or_oid: Optional[str] = None) -> List[Commit]:
        """First-parent history, newest first."""
        oid = self.resolve(ref_or_oid or self.default_branch)
        out: List[Commit] = []
        seen: Set[str] = set()
        cursor: Optional[str] = oid
        while cursor and cursor not in seen:
            seen.add(cursor)
            commit = self.store.commit(cursor)
            out.append(commit)
            cursor = commit.parents[0] if commit.parents else None
        return out

    def ancestors(self, oid: str) -> Set[str]:
        """All commits reachable from ``oid`` (inclusive)."""
        out: Set[str] = set()
        stack = [self.resolve(oid)]
        while stack:
            cur = stack.pop()
            if cur in out:
                continue
            out.add(cur)
            stack.extend(self.store.commit(cur).parents)
        return out

    def merge_base(self, a: str, b: str) -> Optional[str]:
        """Best common ancestor (highest timestamp among common ancestors)."""
        common = self.ancestors(a) & self.ancestors(b)
        if not common:
            return None
        return max(common, key=lambda o: (self.store.commit(o).timestamp, o))

    # -- diff / merge ------------------------------------------------------------
    def diff(self, base: str, head: str) -> Dict[str, str]:
        """Per-path change summary between two refs.

        Returns {path: "added"|"removed"|"modified"}.
        """
        base_files = self.files_at(base)
        head_files = self.files_at(head)
        out: Dict[str, str] = {}
        for path in sorted(set(base_files) | set(head_files)):
            if path not in base_files:
                out[path] = "added"
            elif path not in head_files:
                out[path] = "removed"
            elif base_files[path] != head_files[path]:
                out[path] = "modified"
        return out

    def merge(
        self,
        target_branch: str,
        source: str,
        author: str = "nobody",
        message: str = "",
        timestamp: float = 0.0,
    ) -> str:
        """Three-way merge of ``source`` into ``target_branch``.

        Fast-forwards when possible; raises :class:`MergeConflict` when both
        sides changed the same path to different content.
        """
        target_oid = self.head(target_branch)
        source_oid = self.resolve(source)
        if source_oid in self.ancestors(target_oid):
            return target_oid  # nothing to do
        if target_oid in self.ancestors(source_oid):
            self._refs[target_branch] = Ref(target_branch, source_oid, "branch")
            return source_oid  # fast-forward
        base_oid = self.merge_base(target_oid, source_oid)
        base_files = self.files_at(base_oid) if base_oid else {}
        ours = self.files_at(target_oid)
        theirs = self.files_at(source_oid)
        merged: Dict[str, str] = {}
        conflicts: List[str] = []
        for path in sorted(set(base_files) | set(ours) | set(theirs)):
            b = base_files.get(path)
            o = ours.get(path)
            t = theirs.get(path)
            if o == t:
                result = o
            elif o == b:
                result = t
            elif t == b:
                result = o
            else:
                conflicts.append(path)
                continue
            if result is not None:
                merged[path] = result
        if conflicts:
            raise MergeConflict(
                f"merging {source!r} into {target_branch!r}: "
                + ", ".join(conflicts)
            )
        tree_oid = self.store.tree_from_files(merged)
        commit = Commit(
            tree=tree_oid,
            parents=(target_oid, source_oid),
            author=author,
            message=message or f"Merge {source} into {target_branch}",
            timestamp=timestamp,
        )
        oid = self.store.put_commit(commit)
        self._refs[target_branch] = Ref(target_branch, oid, "branch")
        return oid
