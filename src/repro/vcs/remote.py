"""Remote operations: clone, fork, push.

These are whole-repo object transfers between :class:`ObjectStore`
instances. :func:`clone` is the operation CORRECT performs on the remote
endpoint before running tests; :func:`fork` is step 1 of the paper's
repeatability recipe (§5.3: fork, swap endpoint, trigger).
"""

from __future__ import annotations

from typing import Optional

from repro.errors import RefNotFound
from repro.vcs.repository import Ref, Repository


def clone(source: Repository, name: Optional[str] = None) -> Repository:
    """Full clone: copies all refs and reachable objects."""
    dest = Repository(
        name or source.name, default_branch=source.default_branch
    )
    for ref in source._refs.values():
        source.store.copy_reachable(ref.target, dest.store)
        dest._refs[ref.name] = Ref(ref.name, ref.target, ref.kind)
    return dest


def fork(source: Repository, owner: str) -> Repository:
    """Clone under a forked name, as a hub fork would."""
    return clone(source, name=f"{owner}/{source.name.split('/')[-1]}")


def push(
    source: Repository,
    dest: Repository,
    branch: Optional[str] = None,
    force: bool = False,
) -> str:
    """Push ``branch`` from ``source`` to ``dest``.

    Non-fast-forward pushes are rejected unless ``force`` is set, matching
    git semantics.
    """
    branch = branch or source.default_branch
    new_tip = source.head(branch)
    source.store.copy_reachable(new_tip, dest.store)
    existing = dest._refs.get(branch)
    if existing is not None and not force:
        # allowed only if the old tip is an ancestor of the new tip
        ancestors = set()
        stack = [new_tip]
        while stack:
            cur = stack.pop()
            if cur in ancestors:
                continue
            ancestors.add(cur)
            stack.extend(dest.store.commit(cur).parents)
        if existing.target not in ancestors:
            raise RefNotFound(
                f"non-fast-forward push to {dest.name}:{branch} rejected"
            )
    dest._refs[branch] = Ref(branch, new_tip, "branch")
    return new_tip
