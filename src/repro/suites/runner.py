"""Suite runner: materialized instances -> one CI workflow run.

The runner replays the exact world-operation order of the legacy
hard-coded apps — World construction, user registration, container
publication, per-site provisioning and MEP deployment, repository
creation, push — so that a suite file describing Fig. 4 produces a
byte-identical virtual-time trace (the ``suite-smoke`` CI job diffs the
rendered report against the pinned baseline).

Split into two phases so experiments can interpose between setup and
trigger (the recovery experiment attaches a journal and arms a crash
plan there):

* :func:`prepare_suite` — build the world, deploy endpoints, render the
  workflow; returns a :class:`PreparedSuite`.
* :func:`execute_suite` — create the repo, push, (optionally) approve
  gates, collect per-instance results; returns a :class:`SuiteRun`.

Imports of :mod:`repro.experiments.common` are deliberately lazy so
``import repro.suites`` never pulls in the experiments package (the
experiment modules import *us* at module level).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Optional

from repro.suites.parsers import make_parser
from repro.suites.resolver import (
    Materialized,
    TestInstance,
    build_workflow_builder,
    materialize,
)
from repro.suites.spec import SuiteError, SuiteSpec, load_suite


@dataclass
class PreparedSuite:
    """A suite world, fully set up but not yet triggered."""

    spec: SuiteSpec
    mat: Materialized
    world: Any
    user: Any
    endpoints: Dict[str, str]  # site name -> endpoint id (pool member 0)
    builder: Any  # WorkflowBuilder, rendered at push time
    files: Dict[str, str]  # repo files (workflow file added at push)
    gated: bool = True


@dataclass
class InstanceResult:
    """One test instance's outcome after the run."""

    instance: TestInstance
    status: str  # "ok" | "failed" | "skipped"
    reason: str = ""
    stdout: str = ""
    stderr: str = ""
    parsed: Any = None

    @property
    def key(self) -> str:
        return self.instance.key


@dataclass
class SuiteRun:
    """A completed suite execution plus collected results."""

    spec: SuiteSpec
    mat: Materialized
    world: Any
    user: Any
    run: Any  # WorkflowRun (None when the coordinator crashed pre-run)
    endpoints: Dict[str, str]
    results: List[InstanceResult] = field(default_factory=list)
    makespan: float = 0.0
    crashed: bool = False

    @property
    def status(self) -> str:
        return self.run.status if self.run is not None else "crashed"

    @property
    def ok(self) -> bool:
        return all(r.status != "failed" for r in self.results)

    def by_key(self) -> Dict[str, InstanceResult]:
        return {r.key: r for r in self.results}

    def result_for(self, instance_id: str) -> Optional[InstanceResult]:
        for result in self.results:
            if result.instance.instance_id == instance_id:
                return result
        return None


def _suite_files(spec: SuiteSpec, files_kwargs: Optional[Dict] = None) -> Dict[str, str]:
    factory = spec.resolve_ref(spec.repo_files)
    files = factory(**(files_kwargs or {}))
    if not isinstance(files, dict):
        raise SuiteError(
            f"repo files factory {spec.repo_files!r} returned "
            f"{type(files).__name__}, expected dict"
        )
    return dict(files)


def prepare_suite(
    spec,
    overrides: Optional[Dict[str, Any]] = None,
    telemetry: bool = True,
    span_sampler=None,
    world_setup: Optional[Callable] = None,
    faults=None,
    arm_faults: str = "none",  # "none" | "at-start" | "after-setup"
    retry_policy=None,
    breaker=None,
    offline_policy: str = "raise",
    placement_policy: str = "pinned",
    concurrent_jobs: bool = False,
    pool_size: int = 1,
    fallbacks: Optional[Dict[str, str]] = None,
    name_override: str = "",
    gated: bool = True,
    files_kwargs: Optional[Dict] = None,
    overload=None,
    hedge=None,
) -> PreparedSuite:
    """Set up the suite's world in the legacy apps' exact operation order.

    Order: World -> ``world_setup`` hook -> arm at-start faults ->
    register user -> publish containers -> per site (provision stack if
    declared, deploy MEP or pool) -> declare fallbacks -> arm
    after-setup faults -> render workflow. Fault times with
    ``after-setup`` mean "virtual seconds into the CI run", matching the
    chaos experiments.
    """
    from repro.experiments import common
    from repro.world import World

    spec = load_suite(spec)
    mat = materialize(spec, overrides)
    if arm_faults not in ("none", "at-start", "after-setup"):
        raise SuiteError(f"bad arm_faults {arm_faults!r}")

    world = World(
        concurrent_jobs=concurrent_jobs,
        telemetry=telemetry,
        span_sampler=span_sampler,
        faults=faults,
        retry_policy=retry_policy,
        breaker=breaker,
        offline_policy=offline_policy,
        placement_policy=placement_policy,
        overload=overload,
        hedge=hedge,
    )
    if world_setup is not None:
        world_setup(world)
    if faults is not None and arm_faults == "at-start":
        world.arm_faults()

    sites = mat.sites()
    accounts = {site: spec.user_account for site in sites}
    user = world.register_user(spec.user_login, accounts)

    if spec.containers_image:
        image_factory = spec.resolve_ref(spec.containers_image)
        world.container_registry.push(image_factory())
    if spec.containers_commands:
        registrar = spec.resolve_ref(spec.containers_commands)
        registrar(world.services.image_commands)

    endpoints: Dict[str, str] = {}
    for site_name in sites:
        if spec.stack_packages:
            common.provision_user_site(
                world, user, site_name, accounts[site_name],
                conda_env=spec.stack_env, stack=spec.stack_packages,
            )
        site_conf = spec.sites.get(site_name)
        login_only = site_conf.login_only if site_conf else False
        walltime = site_conf.walltime if site_conf else 7200.0
        nodes = site_conf.nodes if site_conf else 1
        if pool_size > 1:
            pool = common.deploy_site_mep_pool(
                world, site_name, pool_size,
                login_only=login_only, walltime=walltime, nodes=nodes,
            )
            endpoints[site_name] = pool[0].endpoint_id
        else:
            mep = common.deploy_site_mep(
                world, site_name,
                login_only=login_only, walltime=walltime, nodes=nodes,
            )
            endpoints[site_name] = mep.endpoint_id

    for from_site, to_site in (fallbacks or {}).items():
        if from_site in endpoints and to_site in endpoints:
            world.faas.declare_fallback(
                endpoints[from_site], endpoints[to_site]
            )

    if faults is not None and arm_faults == "after-setup":
        world.arm_faults()

    builder = build_workflow_builder(
        mat, endpoints, name_override=name_override, gated=gated
    )
    files = _suite_files(spec, files_kwargs)
    return PreparedSuite(
        spec=spec, mat=mat, world=world, user=user,
        endpoints=endpoints, builder=builder, files=files, gated=gated,
    )


def _collect(prepared: PreparedSuite, run) -> List[InstanceResult]:
    """Per-instance results, in expansion order; skipped ones included."""
    from repro.errors import ReproError

    world = prepared.world
    results: List[InstanceResult] = []
    for instance in prepared.mat.instances:
        if instance.skipped:
            results.append(
                InstanceResult(
                    instance=instance, status="skipped",
                    reason=instance.skip_reason,
                )
            )
            continue
        job = run.jobs.get(instance.job_id)
        if job is None:  # a crashed coordinator may never start the job
            results.append(
                InstanceResult(
                    instance=instance, status="failed",
                    reason="job never started",
                )
            )
            continue
        stdout = stderr = ""
        # artifact reads never advance the clock, so collecting them for
        # failed jobs too (Fig. 5 keeps its outputs on failure) cannot
        # perturb determinism
        try:
            stdout = world.hub.artifacts.download(
                run.run_id, f"{instance.artifact_prefix}-stdout"
            ).content
        except ReproError:
            pass
        try:
            stderr = world.hub.artifacts.download(
                run.run_id, f"{instance.artifact_prefix}-stderr"
            ).content
        except ReproError:
            pass
        if job.status == "success":
            parser = make_parser(instance.parse)
            results.append(
                InstanceResult(
                    instance=instance, status="ok",
                    stdout=stdout, stderr=stderr,
                    parsed=parser.parse(stdout),
                )
            )
        else:
            errors = [
                o.error for o in job.step_outcomes if o.status == "failure"
            ]
            reason = errors[0] if errors else f"job ended {job.status}"
            parsed = None
            if stdout:
                try:
                    parsed = make_parser(instance.parse).parse(stdout)
                except ReproError:
                    parsed = None
            results.append(
                InstanceResult(
                    instance=instance, status="failed", reason=reason,
                    stdout=stdout, stderr=stderr, parsed=parsed,
                )
            )
    return results


def execute_suite(
    prepared: PreparedSuite,
    strict: bool = False,
    crash_ok: bool = False,
) -> SuiteRun:
    """Trigger the prepared suite's CI run and collect its results.

    Gated suites (any job carries an ``environment:``) create protected
    environments holding the FaaS credentials and approve every gate as
    the owner; ungated suites store the credentials as repo-level
    secrets, so the push alone starts execution. ``strict`` raises on a
    non-success run *before* collection, like the legacy Fig. 4 path;
    ``crash_ok`` absorbs a :class:`CoordinatorCrashed` push (the
    recovery experiment's crash-inject runs).
    """
    from repro.errors import CoordinatorCrashed
    from repro.experiments import common

    spec, mat, world, user = (
        prepared.spec, prepared.mat, prepared.world, prepared.user
    )
    world.provenance.set_suite_context(
        {
            instance.stdout_artifact: (
                instance.suite, instance.series, instance.permutation
            )
            for instance in mat.active
        }
    )
    workflow_text = prepared.builder.render()
    crashed = False
    environments = (
        {
            env_name: {
                "GLOBUS_ID": user.client_id,
                "GLOBUS_SECRET": user.client_secret,
            }
            for env_name in mat.environments()
        }
        if prepared.gated
        else {}
    )
    if prepared.gated and environments:
        started_at = world.clock.now
        common.create_repo_with_workflow(
            world,
            spec.repo_slug,
            owner=user,
            files=prepared.files,
            workflow_path=spec.workflow_path,
            workflow_text=workflow_text,
            environments=environments,
        )
        run = world.engine.runs[-1]
        common.approve_all(world, run, user.login)
    else:
        hosted = world.hub.create_repo(spec.repo_slug, owner=user.login)
        hosted.secrets.set("GLOBUS_ID", user.client_id, set_by=user.login)
        hosted.secrets.set(
            "GLOBUS_SECRET", user.client_secret, set_by=user.login
        )
        all_files = dict(prepared.files)
        all_files[spec.workflow_path] = workflow_text
        started_at = world.clock.now
        try:
            world.hub.push_commit(
                spec.repo_slug, author=user.login,
                message="Initial commit with CI", files=all_files,
            )
        except CoordinatorCrashed:
            if not crash_ok:
                raise
            crashed = True
        run = world.engine.runs[-1] if world.engine.runs else None

    makespan = world.clock.now - started_at
    if run is None:
        return SuiteRun(
            spec=spec, mat=mat, world=world, user=user, run=None,
            endpoints=prepared.endpoints, results=[],
            makespan=makespan, crashed=crashed,
        )
    if strict and run.status != "success":
        raise RuntimeError(
            f"suite {spec.name!r} run ended {run.status}; log:\n"
            + "\n".join(run.log)
        )
    results = _collect(prepared, run)
    return SuiteRun(
        spec=spec, mat=mat, world=world, user=user, run=run,
        endpoints=prepared.endpoints, results=results,
        makespan=makespan, crashed=crashed,
    )


def run_suite(
    spec,
    overrides: Optional[Dict[str, Any]] = None,
    strict: bool = False,
    crash_ok: bool = False,
    **prepare_kwargs,
) -> SuiteRun:
    """Prepare and execute a suite in one call (the common path)."""
    prepared = prepare_suite(spec, overrides=overrides, **prepare_kwargs)
    return execute_suite(prepared, strict=strict, crash_ok=crash_ok)


def format_suite_report(suite_run: SuiteRun) -> str:
    """Deterministic plain-text report of one engine-backed suite run."""
    spec = suite_run.spec
    counts = {"ok": 0, "failed": 0, "skipped": 0}
    for result in suite_run.results:
        counts[result.status] = counts.get(result.status, 0) + 1
    lines = [
        f"Suite {spec.name} — {spec.workflow_name}",
        f"run status: {suite_run.status}   "
        f"makespan: {suite_run.makespan:.2f}s",
        "",
    ]
    for result in suite_run.results:
        instance = result.instance
        detail = ""
        if result.status != "ok" and result.reason:
            detail = result.reason.splitlines()[0][:80]
        lines.append(
            f"  {instance.instance_id}  {instance.series}"
            f"[{instance.permutation}]"
            f"  {result.status:<7} {detail}".rstrip()
        )
    lines += [
        "",
        f"{counts['ok']} ok, {counts['failed']} failed, "
        f"{counts['skipped']} skipped",
    ]
    return "\n".join(lines)
