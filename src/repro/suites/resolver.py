"""Resolver: expand a suite into test instances, materialize workflows.

Expansion is deterministic by construction: series in declaration order,
the cartesian product of each series' variables in declaration order
(last variable varies fastest), then the permutation overlays in list
order. Instance ids hash the (suite, series, permutation) identity, so
the same suite file expands to the same ids on every run and machine —
the property the permutation-determinism tests pin.
"""

from __future__ import annotations

import hashlib
import itertools
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional

from repro.suites.spec import ParseSpec, SeriesSpec, SuiteError, SuiteSpec


@dataclass
class TestInstance:
    """One fully resolved test: a concrete CORRECT step and its target."""

    suite: str
    series: str
    index: int  # position within the series expansion
    variables: Dict[str, Any]
    permutation: str  # sorted "k=v" rendering of the variables
    instance_id: str  # deterministic short hash of the identity
    job_id: str
    environment: str
    target: str  # site name
    route: str  # "endpoint" | "pool"
    step_name: str
    step_id: str
    command: str
    conda_env: str
    artifact_prefix: str
    clone: bool
    container_image: str
    timeout: float
    parse: ParseSpec
    skipped: bool = False
    skip_reason: str = ""

    @property
    def key(self) -> str:
        """Display key: the site variable when present, else the step id."""
        return str(self.variables.get("site", self.step_id))

    @property
    def stdout_artifact(self) -> str:
        return f"{self.artifact_prefix}-stdout"


@dataclass
class JobPlan:
    """One workflow job: the instances whose steps it carries."""

    job_id: str
    environment: str
    target: str
    route: str
    instances: List[TestInstance] = field(default_factory=list)


@dataclass
class Materialized:
    """A suite expanded against overrides, grouped into workflow jobs."""

    spec: SuiteSpec
    instances: List[TestInstance]  # every instance, skipped included
    jobs: Dict[str, JobPlan]  # insertion-ordered, active instances only

    @property
    def active(self) -> List[TestInstance]:
        return [i for i in self.instances if not i.skipped]

    @property
    def skipped(self) -> List[TestInstance]:
        return [i for i in self.instances if i.skipped]

    def sites(self) -> List[str]:
        """Unique target sites of active instances, in first-seen order."""
        seen: Dict[str, None] = {}
        for instance in self.active:
            seen.setdefault(instance.target, None)
        return list(seen)

    def environments(self) -> List[str]:
        """Unique non-empty job environments, in job order."""
        seen: Dict[str, None] = {}
        for job in self.jobs.values():
            if job.environment:
                seen.setdefault(job.environment, None)
        return list(seen)


class _StrictVars(dict):
    """format_map source that names the missing variable on error."""

    def __missing__(self, key: str) -> str:
        raise SuiteError(f"template references unknown variable {key!r}")


def render_template(template: str, variables: Dict[str, Any]) -> str:
    """Substitute ``{var}`` placeholders; unknown names raise."""
    try:
        return template.format_map(_StrictVars(variables))
    except SuiteError:
        raise SuiteError(
            f"template {template!r} references a variable not in "
            f"{sorted(variables)}"
        ) from None


def permutation_label(variables: Dict[str, Any]) -> str:
    """Canonical permutation identity: sorted ``k=v`` pairs."""
    return ", ".join(f"{k}={variables[k]}" for k in sorted(variables))


def instance_id_for(suite: str, series: str, permutation: str) -> str:
    """Deterministic short id: stable across runs, machines, seeds."""
    digest = hashlib.sha256(
        f"{suite}/{series}/{permutation}".encode("utf-8")
    ).hexdigest()
    return digest[:10]


def evaluate_skip_if(expr: str, variables: Dict[str, Any]) -> bool:
    """Evaluate a ``skip_if`` expression over the instance's variables.

    The expression sees only the variables (no builtins); any evaluation
    error is a suite authoring bug and raises :class:`SuiteError`.
    """
    if not expr:
        return False
    try:
        return bool(eval(expr, {"__builtins__": {}}, dict(variables)))  # noqa: S307
    except Exception as exc:  # noqa: BLE001 - surface authoring errors
        raise SuiteError(f"skip_if {expr!r} failed to evaluate: {exc}") from exc


def expand_series(
    spec: SuiteSpec,
    series: SeriesSpec,
    overrides: Optional[Dict[str, Any]] = None,
) -> List[TestInstance]:
    """Expand one series into its deterministic instance list."""
    variables = dict(series.variables)
    for name, value in (overrides or {}).items():
        if name in variables:
            variables[name] = list(value) if isinstance(value, (list, tuple)) else [value]
    names = list(variables)
    value_lists = [variables[name] for name in names]
    rows: List[Dict[str, Any]] = [
        dict(zip(names, combo))
        for combo in itertools.product(*value_lists)
    ] if names else [{}]
    overlays = series.permutations or [{}]

    instances: List[TestInstance] = []
    for row in rows:
        for overlay in overlays:
            resolved = dict(row)
            resolved.update(overlay)
            permutation = permutation_label(resolved)
            skipped = evaluate_skip_if(series.skip_if, resolved)
            test = series.test
            instances.append(
                TestInstance(
                    suite=spec.name,
                    series=series.name,
                    index=len(instances),
                    variables=resolved,
                    permutation=permutation,
                    instance_id=instance_id_for(
                        spec.name, series.name, permutation
                    ),
                    job_id=render_template(series.job, resolved),
                    environment=(
                        render_template(series.environment, resolved)
                        if series.environment
                        else ""
                    ),
                    target=render_template(series.target, resolved),
                    route=series.route,
                    step_name=render_template(test.name, resolved),
                    step_id=render_template(test.id, resolved),
                    command=render_template(test.command, resolved),
                    conda_env=test.conda_env,
                    artifact_prefix=render_template(
                        test.artifact_prefix, resolved
                    ),
                    clone=test.clone,
                    container_image=test.container_image,
                    timeout=test.timeout or series.timeout,
                    parse=series.parse,
                    skipped=skipped,
                    skip_reason=(
                        f"skip_if: {series.skip_if}" if skipped else ""
                    ),
                )
            )
    return instances


def expand_instances(
    spec: SuiteSpec, overrides: Optional[Dict[str, Any]] = None
) -> List[TestInstance]:
    """Expand every series of a suite, in declaration order."""
    instances: List[TestInstance] = []
    for series in spec.series.values():
        instances.extend(expand_series(spec, series, overrides))
    return instances


def materialize(
    spec: SuiteSpec, overrides: Optional[Dict[str, Any]] = None
) -> Materialized:
    """Expand a suite and group its active instances into workflow jobs."""
    instances = expand_instances(spec, overrides)
    jobs: Dict[str, JobPlan] = {}
    for instance in instances:
        if instance.skipped:
            continue
        plan = jobs.get(instance.job_id)
        if plan is None:
            plan = JobPlan(
                job_id=instance.job_id,
                environment=instance.environment,
                target=instance.target,
                route=instance.route,
            )
            jobs[instance.job_id] = plan
        else:
            if (plan.environment, plan.target) != (
                instance.environment, instance.target
            ):
                raise SuiteError(
                    f"job {instance.job_id!r} mixes environments/targets: "
                    f"({plan.environment!r}, {plan.target!r}) vs "
                    f"({instance.environment!r}, {instance.target!r})"
                )
        plan.instances.append(instance)
    if not jobs:
        raise SuiteError(
            f"suite {spec.name!r} expanded to zero runnable instances"
        )
    return Materialized(spec=spec, instances=instances, jobs=jobs)


def correct_step_for(instance: TestInstance) -> dict:
    """Build the CORRECT step dict for one instance.

    Keyword order matters: it fixes the rendered ``with:`` block, which
    the byte-identity gates pin (``conda_env`` before ``artifact_prefix``
    before ``clone``, matching the legacy hard-coded apps).
    """
    from repro.core.workflow_builder import WorkflowBuilder

    extra: Dict[str, Any] = {}
    if instance.conda_env:
        extra["conda_env"] = instance.conda_env
    extra["artifact_prefix"] = instance.artifact_prefix
    if not instance.clone:
        extra["clone"] = "false"
    if instance.container_image:
        extra["container_image"] = instance.container_image
    if instance.timeout:
        extra["timeout"] = f"{instance.timeout:g}"
    return WorkflowBuilder.correct_step(
        name=instance.step_name,
        step_id=instance.step_id,
        shell_cmd=instance.command,
        **extra,
    )


def build_workflow_builder(
    materialized: Materialized,
    endpoints: Dict[str, str],
    name_override: str = "",
    gated: bool = True,
):
    """Materialize the workflow: one builder job per suite job plan.

    ``endpoints`` maps site name -> endpoint id; a ``route: pool`` job
    targets the *site name* so the FaaS placement policy picks the pool
    member. ``gated=False`` drops the ``environment:`` gate from every
    job (the repo-level-secret variants the recovery and routing
    experiments use).
    """
    from repro.core.workflow_builder import WorkflowBuilder

    spec = materialized.spec
    builder = WorkflowBuilder(name_override or spec.workflow_name).on_push()
    for plan in materialized.jobs.values():
        steps = [correct_step_for(inst) for inst in plan.instances]
        if plan.route == "pool":
            endpoint_value = plan.target
        else:
            try:
                endpoint_value = endpoints[plan.target]
            except KeyError:
                raise SuiteError(
                    f"job {plan.job_id!r} targets unknown site "
                    f"{plan.target!r}; deployed: {sorted(endpoints)}"
                ) from None
        kwargs: Dict[str, Any] = {}
        if gated and plan.environment:
            kwargs["environment"] = plan.environment
        builder.add_job(
            plan.job_id,
            steps=steps,
            env={"ENDPOINT_UUID": endpoint_value},
            **kwargs,
        )
    return builder
