"""Suite sweeps: run every instance directly through the FaaS path.

``repro suite run <file> --permute`` bypasses the CI engine entirely:
the suite's instances are submitted as concurrent CORRECT flows
(:func:`~repro.core.driver.execute_correct_async`), optionally under a
chaos fault profile and a non-pinned placement policy. This is the
"expand one suite file into N parameterized executions" half of the
declarative-suite story — same spec, same deterministic expansion, but
the FaaS layer (retries, breakers, routing, overload shedding, hedging)
is exercised without workflow gating in between.

The sweep stamps its own :class:`ExecutionRecord`\\ s (the engine-side
provenance hook never sees these tasks), so suite/series/permutation
identity lands in the store exactly as it does for workflow runs.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional

from repro.suites.parsers import make_parser
from repro.suites.runner import InstanceResult, PreparedSuite, prepare_suite
from repro.suites.spec import SuiteSpec, load_suite

# resilience defaults for profiled sweeps, mirroring the chaos harness;
# a suite's top-level ``retry:`` block overrides them
SWEEP_RETRY = dict(
    max_attempts=5, base_delay=5.0, multiplier=2.0, max_delay=120.0,
    jitter=0.1,
)


@dataclass
class SweepResult:
    """All instance outcomes of one direct-FaaS suite sweep."""

    spec: SuiteSpec
    world: Any
    seed: int
    profile: str
    policy: str
    results: List[InstanceResult] = field(default_factory=list)
    makespan: float = 0.0

    @property
    def ok(self) -> bool:
        return all(r.status != "failed" for r in self.results)

    def counts(self) -> Dict[str, int]:
        counts = {"ok": 0, "failed": 0, "skipped": 0}
        for result in self.results:
            counts[result.status] = counts.get(result.status, 0) + 1
        return counts


def _sweep_target(prepared: PreparedSuite, instance, pool_size: int) -> str:
    if instance.route == "pool" or pool_size > 1:
        return instance.target  # site name: the placement policy decides
    return prepared.endpoints[instance.target]


def run_sweep(
    spec,
    seed: int = 7,
    profile: str = "",
    policy: str = "pinned",
    pool_size: int = 1,
    overrides: Optional[Dict[str, Any]] = None,
    telemetry: bool = True,
    world_setup=None,
    overload=None,
    hedge=None,
) -> SweepResult:
    """Expand a suite and run every active instance through FaaS.

    Deterministic for a fixed (suite, overrides, seed, profile, policy):
    instances are submitted in expansion order and drained in the same
    order, so two identical invocations produce byte-identical reports —
    the property the ``suite-smoke`` CI job asserts under chaos.
    """
    from repro.core.driver import execute_correct_async
    from repro.core.inputs import CorrectInputs
    from repro.core.remote import FN_RUN_SHELL
    from repro.errors import ReproError
    from repro.provenance.record import ExecutionRecord

    spec = load_suite(spec)
    plan = None
    if profile and profile not in ("none", "off"):
        from repro.faults.profiles import build_profile

        plan = build_profile(profile, seed)
    retry_policy = None
    if plan is not None:
        from repro.faults.resilience import RetryPolicy

        retry_policy = RetryPolicy(seed=seed, **(spec.retry or SWEEP_RETRY))

    prepared = prepare_suite(
        spec,
        overrides=overrides,
        telemetry=telemetry,
        world_setup=world_setup,
        faults=plan,
        arm_faults="after-setup" if plan is not None else "none",
        retry_policy=retry_policy,
        offline_policy="queue" if plan is not None else "raise",
        placement_policy=policy,
        pool_size=pool_size,
        gated=False,
        overload=overload,
        hedge=hedge,
    )
    world, user, mat = prepared.world, prepared.user, prepared.mat
    world.provenance.set_suite_context(
        {
            instance.stdout_artifact: (
                instance.suite, instance.series, instance.permutation
            )
            for instance in mat.active
        }
    )

    # the repo exists (clones need it) but carries no workflow file, so
    # the push triggers no CI run — execution happens via FaaS directly
    world.hub.create_repo(spec.repo_slug, owner=user.login)
    world.hub.push_commit(
        spec.repo_slug, author=user.login,
        message="Initial commit", files=prepared.files,
    )

    started_at = world.clock.now
    outcomes: Dict[str, InstanceResult] = {}
    pending: List[tuple] = []

    def _finalize(instance, future) -> None:
        try:
            result = future.result()
        except ReproError as exc:
            outcomes[instance.instance_id] = InstanceResult(
                instance=instance, status="failed",
                reason=f"{type(exc).__name__}: {exc}",
            )
            return
        task = world.faas.get_task(result.task_id)
        record = ExecutionRecord(
            record_id=world.provenance.next_record_id(),
            run_id="sweep",
            repo_slug=spec.repo_slug,
            commit_sha=result.sha,
            site=instance.target,
            endpoint_id=task.endpoint_id,
            identity_urn=task.identity_urn,
            function_name=FN_RUN_SHELL,
            command=instance.command,
            started_at=task.started_at or 0.0,
            completed_at=task.completed_at or 0.0,
            exit_code=result.exit_code,
            stdout_artifact=instance.stdout_artifact,
            stderr_artifact=f"{instance.artifact_prefix}-stderr",
            fault_seed=plan.seed if plan is not None else None,
            fault_profile=plan.profile if plan is not None else "",
            task_attempts=task.attempts,
            routed_by=task.routed_by,
            pool=task.pool,
            queue_depth_at_route=task.queue_depth_at_route,
        )
        world.provenance.add(record)
        if result.ok:
            parser = make_parser(instance.parse)
            outcomes[instance.instance_id] = InstanceResult(
                instance=instance, status="ok",
                stdout=result.stdout, stderr=result.stderr,
                parsed=parser.parse(result.stdout),
            )
        else:
            outcomes[instance.instance_id] = InstanceResult(
                instance=instance, status="failed",
                reason=f"command exited {result.exit_code}",
                stdout=result.stdout, stderr=result.stderr,
            )

    # under the overload plane a client must respect the plane's own
    # envelope: cap concurrent flows at the in-flight quota (each flow
    # keeps at most one task in flight) and at *half* the rate burst —
    # every flow submits twice (clone, then shell) and mid-flow
    # submissions cannot back off, so they need burst headroom reserved.
    # Unprotected sweeps stay fully concurrent.
    window = None
    if overload is not None:
        window = max(
            1,
            min(overload.tenant_max_inflight, int(overload.tenant_burst) // 2),
        )

    for instance in mat.active:
        inputs = CorrectInputs(
            client_id=user.client_id,
            client_secret=user.client_secret,
            endpoint_uuid=_sweep_target(prepared, instance, pool_size),
            shell_cmd=instance.command,
            clone=instance.clone,
            conda_env=instance.conda_env,
            artifact_prefix=instance.artifact_prefix,
            container_image=instance.container_image,
            timeout=instance.timeout,
        )
        while window is not None and len(pending) >= window:
            _finalize(*pending.pop(0))
        # admission may still reject the submission itself (rate quota,
        # in-flight cap, shed). A real client backs off: drain the
        # oldest in-flight flow — virtual time advances, tokens refill,
        # in-flight drops — and resubmit; with nothing left to drain,
        # sleep for one rate-quota token (bounded) before giving up.
        # Submission and drain order stay deterministic either way.
        refill_waits = 3
        while True:
            try:
                future = execute_correct_async(
                    world.faas, inputs, spec.repo_slug, "main"
                )
            except ReproError as exc:
                if pending:
                    _finalize(*pending.pop(0))
                    continue
                if (
                    overload is not None
                    and overload.tenant_rate > 0.0
                    and refill_waits > 0
                ):
                    refill_waits -= 1
                    world.clock.advance(1.0 / overload.tenant_rate)
                    continue
                outcomes[instance.instance_id] = InstanceResult(
                    instance=instance, status="failed",
                    reason=f"{type(exc).__name__}: {exc}",
                )
                break
            pending.append((instance, future))
            break

    for instance, future in pending:
        _finalize(instance, future)
    makespan = world.clock.now - started_at

    results: List[InstanceResult] = []
    for instance in mat.instances:
        if instance.skipped:
            results.append(
                InstanceResult(
                    instance=instance, status="skipped",
                    reason=instance.skip_reason,
                )
            )
        else:
            results.append(outcomes[instance.instance_id])
    return SweepResult(
        spec=spec, world=world, seed=seed,
        profile=plan.profile if plan is not None else "",
        policy=policy, results=results, makespan=makespan,
    )


def format_sweep_report(sweep: SweepResult) -> str:
    """Deterministic plain-text sweep report (byte-identical per seed)."""
    counts = sweep.counts()
    active = counts["ok"] + counts["failed"]
    lines = [
        f"Suite sweep — {sweep.spec.name} "
        f"({len(sweep.results)} instances, {active} active)",
        f"seed {sweep.seed}, profile "
        f"{sweep.profile or 'none'!r}, policy {sweep.policy!r}",
        f"makespan: {sweep.makespan:.2f}s",
        "",
    ]
    for result in sweep.results:
        instance = result.instance
        detail = ""
        if result.status == "ok":
            attempts = _attempts_for(sweep, instance)
            detail = f"attempts={attempts}" if attempts else ""
        else:
            detail = result.reason.splitlines()[0][:80] if result.reason else ""
        lines.append(
            f"  {instance.instance_id}  {instance.series}"
            f"[{instance.permutation}]"
            f"  {result.status:<7} {detail}".rstrip()
        )
    lines += [
        "",
        f"{counts['ok']} ok, {counts['failed']} failed, "
        f"{counts['skipped']} skipped",
        f"provenance: {len(sweep.world.provenance.for_suite(sweep.spec.name))}"
        f" record(s) carry suite {sweep.spec.name!r}",
    ]
    return "\n".join(lines)


def _attempts_for(sweep: SweepResult, instance) -> int:
    for record in sweep.world.provenance.all():
        if record.stdout_artifact == instance.stdout_artifact:
            return record.task_attempts
    return 0
