"""Suite specification model: yamlite documents -> :class:`SuiteSpec`.

The schema (all strings may reference series variables with ``{name}``):

.. code-block:: yaml

    suite: fig4
    description: ParslDock multi-site CI (Fig. 4)
    report: fig4                      # optional CLI report renderer
    workflow:
      name: ParslDock multi-site CI   # rendered workflow's name:
      path: .github/workflows/correct.yml
    repo:
      slug: parsl/parsl-docking-tutorial
      files: repro.apps.parsldock.suite:repo_files   # dotted factory
    user:
      login: vhayot
      account: x-vhayot
    stack:                            # optional conda provisioning
      conda_env: docking
      packages: {parsldock: "*", pytest: ">=8"}
    sites:                            # optional per-site scheduler reqs
      anvil: {login_only: true, walltime: 7200, nodes: 1}
    containers:                       # optional container publication
      image: repro.apps.kamping.artifacts:kamping_image
      commands: repro.apps.kamping.artifacts:register_artifact_commands
    retry:                            # optional resilience policy
      max_attempts: 5
      base_delay: 5.0
    series:
      pytest:
        variables: {site: [chameleon, faster, expanse]}
        permutations: []              # optional overlay mappings
        job: "test-{site}"
        environment: "hpc-{site}"     # omit -> ungated job
        target: "{site}"              # site the job's endpoint lives on
        route: endpoint               # or "pool": route via site name
        skip_if: ""                   # python expr over the variables
        timeout: 0                    # per-test deadline (seconds)
        test:
          name: "Run pytest on {site}"
          id: "pytest-{site}"
          command: pytest
          conda_env: docking
          artifact_prefix: "correct-{site}"
          clone: true
        parse:
          parser: pytest              # raw|pytest|regex|json|table|verdict
"""

from __future__ import annotations

import importlib
import os
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Dict, List, Optional

from repro.errors import ReproError, YamliteError
from repro.util import yamlite


class SuiteError(ReproError):
    """A suite document is malformed or cannot be resolved."""


@dataclass
class TestSpec:
    """The templated CORRECT step one series instance materializes."""

    name: str
    id: str
    command: str
    conda_env: str = ""
    artifact_prefix: str = "correct"
    clone: bool = True
    container_image: str = ""
    timeout: float = 0.0


@dataclass
class ParseSpec:
    """Which :class:`~repro.suites.parsers.ResultParser` to apply."""

    parser: str = "raw"
    options: Dict[str, Any] = field(default_factory=dict)


@dataclass
class SeriesSpec:
    """One parameterized test series inside a suite."""

    name: str
    test: TestSpec
    parse: ParseSpec
    variables: Dict[str, List[Any]] = field(default_factory=dict)
    permutations: List[Dict[str, Any]] = field(default_factory=list)
    job: str = "test-{site}"
    environment: str = ""
    target: str = "{site}"
    route: str = "endpoint"  # "endpoint" | "pool"
    skip_if: str = ""
    timeout: float = 0.0
    retry: Dict[str, Any] = field(default_factory=dict)


@dataclass
class SiteSpec:
    """Per-site scheduler requirements (threaded into the MEP template)."""

    login_only: bool = False
    walltime: float = 7200.0
    nodes: int = 1


@dataclass
class SuiteSpec:
    """A fully parsed suite document."""

    name: str
    description: str
    workflow_name: str
    workflow_path: str
    repo_slug: str
    repo_files: str  # "module.path:callable" returning Dict[str, str]
    user_login: str
    user_account: str
    series: Dict[str, SeriesSpec]
    report: str = ""
    stack_env: str = ""
    stack_packages: Dict[str, str] = field(default_factory=dict)
    sites: Dict[str, SiteSpec] = field(default_factory=dict)
    containers_image: str = ""
    containers_commands: str = ""
    retry: Dict[str, Any] = field(default_factory=dict)
    source: str = ""

    def resolve_ref(self, ref: str):
        """Resolve a ``module.path:callable`` reference from the spec."""
        return resolve_dotted(ref, source=self.source)


def resolve_dotted(ref: str, source: str = ""):
    """Import ``module.path:attr``; raises :class:`SuiteError` on failure."""
    where = f" (in {source})" if source else ""
    if ":" not in ref:
        raise SuiteError(
            f"bad dotted reference {ref!r}{where}: expected 'module:attr'"
        )
    module_name, attr = ref.split(":", 1)
    try:
        module = importlib.import_module(module_name)
    except ImportError as exc:
        raise SuiteError(
            f"cannot import {module_name!r} for reference {ref!r}{where}: {exc}"
        ) from exc
    try:
        return getattr(module, attr)
    except AttributeError:
        raise SuiteError(
            f"{module_name!r} has no attribute {attr!r}{where}"
        ) from None


def suites_root() -> Path:
    """The repository's committed ``suites/`` directory."""
    return Path(__file__).resolve().parents[3] / "suites"


def resolve_suite_path(name: str) -> Path:
    """Locate a suite file: explicit path, ``./suites/``, then committed.

    Accepts a bare name (``fig4``), a file name (``fig4.yaml``), or a
    path; raises :class:`SuiteError` when nothing matches.
    """
    candidates: List[Path] = []
    for stem in (name, f"{name}.yaml"):
        candidates.append(Path(stem))
        candidates.append(Path(os.getcwd()) / "suites" / Path(stem).name)
        candidates.append(suites_root() / Path(stem).name)
    for candidate in candidates:
        if candidate.is_file():
            return candidate
    raise SuiteError(
        f"no suite file found for {name!r} "
        f"(looked in ., ./suites/, {suites_root()})"
    )


def load_suite(name_or_path) -> SuiteSpec:
    """Load and validate a suite file (accepts a path or a bare name)."""
    if isinstance(name_or_path, SuiteSpec):
        return name_or_path
    path = resolve_suite_path(str(name_or_path))
    text = path.read_text(encoding="utf-8")
    return parse_suite(text, source=str(path))


def parse_suite(text: str, source: str = "") -> SuiteSpec:
    """Parse yamlite text into a validated :class:`SuiteSpec`."""
    where = f" (in {source})" if source else ""
    try:
        doc = yamlite.loads(text)
    except YamliteError as exc:
        raise SuiteError(f"suite parse failed{where}: {exc}") from exc
    if not isinstance(doc, dict):
        raise SuiteError(f"suite document must be a mapping{where}")

    def need(mapping: Any, key: str, context: str) -> Any:
        if not isinstance(mapping, dict):
            raise SuiteError(f"{context} must be a mapping{where}")
        if key not in mapping:
            raise SuiteError(f"{context} is missing {key!r}{where}")
        return mapping[key]

    name = str(need(doc, "suite", "suite document"))
    workflow = need(doc, "workflow", "suite document")
    repo = need(doc, "repo", "suite document")
    user = need(doc, "user", "suite document")
    series_doc = need(doc, "series", "suite document")
    if not isinstance(series_doc, dict) or not series_doc:
        raise SuiteError(f"suite {name!r} declares no series{where}")

    stack = doc.get("stack") or {}
    sites_doc = doc.get("sites") or {}
    containers = doc.get("containers") or {}

    sites: Dict[str, SiteSpec] = {}
    for site_name, conf in sites_doc.items():
        conf = conf or {}
        sites[site_name] = SiteSpec(
            login_only=bool(conf.get("login_only", False)),
            walltime=float(conf.get("walltime", 7200.0)),
            nodes=int(conf.get("nodes", 1)),
        )

    series: Dict[str, SeriesSpec] = {}
    for series_name, conf in series_doc.items():
        context = f"series {series_name!r}"
        if not isinstance(conf, dict):
            raise SuiteError(f"{context} must be a mapping{where}")
        test_doc = need(conf, "test", context)
        test = TestSpec(
            name=str(need(test_doc, "name", f"{context} test")),
            id=str(need(test_doc, "id", f"{context} test")),
            command=str(need(test_doc, "command", f"{context} test")),
            conda_env=str(test_doc.get("conda_env", "") or ""),
            artifact_prefix=str(test_doc.get("artifact_prefix", "correct")),
            clone=bool(test_doc.get("clone", True)),
            container_image=str(test_doc.get("container_image", "") or ""),
            timeout=float(test_doc.get("timeout", 0.0) or 0.0),
        )
        parse_doc = conf.get("parse") or {}
        parse = ParseSpec(
            parser=str(parse_doc.get("parser", "raw")),
            options={
                k: v for k, v in parse_doc.items() if k != "parser"
            },
        )
        variables_doc = conf.get("variables") or {}
        if not isinstance(variables_doc, dict):
            raise SuiteError(f"{context} variables must be a mapping{where}")
        variables: Dict[str, List[Any]] = {}
        for var, values in variables_doc.items():
            variables[var] = list(values) if isinstance(values, list) else [values]
        permutations = conf.get("permutations") or []
        if not isinstance(permutations, list) or not all(
            isinstance(p, dict) for p in permutations
        ):
            raise SuiteError(
                f"{context} permutations must be a list of mappings{where}"
            )
        route = str(conf.get("route", "endpoint"))
        if route not in ("endpoint", "pool"):
            raise SuiteError(
                f"{context} route must be 'endpoint' or 'pool', "
                f"got {route!r}{where}"
            )
        series[series_name] = SeriesSpec(
            name=series_name,
            test=test,
            parse=parse,
            variables=variables,
            permutations=list(permutations),
            job=str(need(conf, "job", context)),
            environment=str(conf.get("environment", "") or ""),
            target=str(conf.get("target", "{site}")),
            route=route,
            skip_if=str(conf.get("skip_if", "") or ""),
            timeout=float(conf.get("timeout", 0.0) or 0.0),
            retry=dict(conf.get("retry") or {}),
        )

    spec = SuiteSpec(
        name=name,
        description=str(doc.get("description", "")),
        workflow_name=str(need(workflow, "name", "workflow")),
        workflow_path=str(need(workflow, "path", "workflow")),
        repo_slug=str(need(repo, "slug", "repo")),
        repo_files=str(need(repo, "files", "repo")),
        user_login=str(need(user, "login", "user")),
        user_account=str(need(user, "account", "user")),
        series=series,
        report=str(doc.get("report", "")),
        stack_env=str(stack.get("conda_env", "") or ""),
        stack_packages=dict(stack.get("packages") or {}),
        sites=sites,
        containers_image=str(containers.get("image", "") or ""),
        containers_commands=str(containers.get("commands", "") or ""),
        retry=dict(doc.get("retry") or {}),
        source=source,
    )
    if spec.stack_packages and not spec.stack_env:
        raise SuiteError(
            f"suite {name!r} declares stack packages without conda_env{where}"
        )
    return spec
