"""Declarative workload suites (Pavilion2-style, §ROADMAP item 3).

A *suite* is a yamlite file describing parameterized test series: which
repository and stack to set up, which sites to target, and a set of
series whose ``variables``/``permutations`` expand deterministically into
test instances. The resolver materializes instances into the existing
engine/FaaS submission path; the runner executes them as one CI workflow
(byte-identical to the legacy hard-coded apps) or as a direct FaaS sweep
(``repro suite run <file> --permute``); pluggable :class:`ResultParser`\\ s
turn captured task output into structured, comparable results.
"""

from repro.suites.parsers import (
    ResultParser,
    make_parser,
    register_parser,
)
from repro.suites.resolver import (
    Materialized,
    TestInstance,
    expand_instances,
    materialize,
)
from repro.suites.spec import (
    SeriesSpec,
    SiteSpec,
    SuiteError,
    SuiteSpec,
    TestSpec,
    load_suite,
    parse_suite,
    resolve_suite_path,
    suites_root,
)
from repro.suites.runner import (
    InstanceResult,
    PreparedSuite,
    SuiteRun,
    execute_suite,
    format_suite_report,
    prepare_suite,
    run_suite,
)
from repro.suites.sweep import (
    SweepResult,
    format_sweep_report,
    run_sweep,
)

__all__ = [
    # spec
    "SeriesSpec",
    "SiteSpec",
    "SuiteError",
    "SuiteSpec",
    "TestSpec",
    "load_suite",
    "parse_suite",
    "resolve_suite_path",
    "suites_root",
    # resolver
    "Materialized",
    "TestInstance",
    "expand_instances",
    "materialize",
    # parsers
    "ResultParser",
    "make_parser",
    "register_parser",
    # runner
    "InstanceResult",
    "PreparedSuite",
    "SuiteRun",
    "execute_suite",
    "format_suite_report",
    "prepare_suite",
    "run_suite",
    # sweep
    "SweepResult",
    "format_sweep_report",
    "run_sweep",
]
