"""Pluggable result parsers: captured task output -> structured results.

A suite's ``parse:`` block names a parser; the runner applies it to each
instance's stdout artifact so downstream consumers (reports, crates,
assertions) compare structured values instead of raw text. Parsers are
registered by name — third-party suites can install their own with
:func:`register_parser` before running.
"""

from __future__ import annotations

import json
import re
from typing import Any, Callable, Dict

from repro.suites.spec import ParseSpec, SuiteError


class ResultParser:
    """Base parser: subclasses override :meth:`parse`."""

    name = "raw"

    def __init__(self, options: Dict[str, Any]) -> None:
        self.options = dict(options)

    def parse(self, stdout: str) -> Any:
        return stdout


class PytestParser(ResultParser):
    """Per-test outcome/duration pairs from simulated pytest stdout."""

    name = "pytest"

    def parse(self, stdout: str) -> Dict[str, tuple]:
        from repro.core.reporting import parse_pytest_stdout

        return parse_pytest_stdout(stdout)


class RegexParser(ResultParser):
    """All matches of ``pattern``; named groups become dict rows."""

    name = "regex"

    def __init__(self, options: Dict[str, Any]) -> None:
        super().__init__(options)
        pattern = options.get("pattern", "")
        if not pattern:
            raise SuiteError("regex parser requires a 'pattern' option")
        try:
            self._regex = re.compile(pattern, re.MULTILINE)
        except re.error as exc:
            raise SuiteError(f"bad regex pattern {pattern!r}: {exc}") from exc

    def parse(self, stdout: str) -> list:
        rows = []
        for match in self._regex.finditer(stdout):
            if match.groupdict():
                rows.append(match.groupdict())
            elif match.groups():
                rows.append(list(match.groups()))
            else:
                rows.append(match.group(0))
        return rows


class JsonParser(ResultParser):
    """``json.loads`` of stdout; an optional dotted ``key`` drills in."""

    name = "json"

    def parse(self, stdout: str) -> Any:
        try:
            value = json.loads(stdout)
        except json.JSONDecodeError as exc:
            raise SuiteError(f"json parser: invalid JSON output: {exc}") from exc
        key = self.options.get("key", "")
        if key:
            for part in str(key).split("."):
                try:
                    value = value[part]
                except (KeyError, TypeError) as exc:
                    raise SuiteError(
                        f"json parser: key {key!r} not found"
                    ) from exc
        return value


class TableParser(ResultParser):
    """Whitespace-aligned table with a header row -> list of dict rows.

    ``skip`` (default 0) drops leading lines before the header; rows
    shorter than the header are padded with empty strings.
    """

    name = "table"

    def parse(self, stdout: str) -> list:
        lines = [line for line in stdout.splitlines() if line.strip()]
        skip = int(self.options.get("skip", 0))
        lines = lines[skip:]
        if not lines:
            return []
        header = lines[0].split()
        rows = []
        for line in lines[1:]:
            cells = line.split()
            cells += [""] * (len(header) - len(cells))
            rows.append(dict(zip(header, cells)))
        return rows


class VerdictParser(ResultParser):
    """The KaMPIng-style pass/fail verdict of an artifact script."""

    name = "verdict"

    def parse(self, stdout: str) -> Dict[str, bool]:
        return {
            "passed": "verdict: PASS" in stdout or "passed" in stdout,
        }


_REGISTRY: Dict[str, Callable[[Dict[str, Any]], ResultParser]] = {}


def register_parser(
    name: str, factory: Callable[[Dict[str, Any]], ResultParser]
) -> None:
    """Install (or replace) a parser under ``name``."""
    _REGISTRY[name] = factory


for _cls in (ResultParser, PytestParser, RegexParser, JsonParser,
             TableParser, VerdictParser):
    register_parser(_cls.name, _cls)


def make_parser(parse: ParseSpec) -> ResultParser:
    """Instantiate the parser a series' ``parse:`` block names."""
    try:
        factory = _REGISTRY[parse.parser]
    except KeyError:
        raise SuiteError(
            f"unknown result parser {parse.parser!r}; "
            f"registered: {sorted(_REGISTRY)}"
        ) from None
    return factory(parse.options)
