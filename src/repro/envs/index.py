"""The package index: all known package versions, with resolution."""

from __future__ import annotations

from typing import Dict, Iterable, List

from repro.envs.packages import Package, Version, VersionSpec
from repro.errors import PackageNotFound, ResolutionError


class PackageIndex:
    """A registry of package versions with greedy dependency resolution.

    Resolution picks the newest version satisfying all constraints, then
    recurses into its dependencies, intersecting constraints as it goes.
    Backtracking is deliberately not implemented — the stacks we model
    resolve greedily, and a conflict is reported as
    :class:`ResolutionError` with the offending constraint chain.
    """

    def __init__(self) -> None:
        self._packages: Dict[str, List[Package]] = {}

    def add(self, package: Package) -> None:
        versions = self._packages.setdefault(package.name, [])
        if any(p.version == package.version for p in versions):
            raise ValueError(f"{package.spec} already indexed")
        versions.append(package)
        versions.sort(key=lambda p: p.version, reverse=True)

    def add_many(self, packages: Iterable[Package]) -> None:
        for p in packages:
            self.add(p)

    def versions(self, name: str) -> List[Package]:
        try:
            return list(self._packages[name])
        except KeyError:
            raise PackageNotFound(f"no package {name!r} in index") from None

    def best(self, name: str, spec: VersionSpec) -> Package:
        for package in self.versions(name):
            if spec.matches(package.version):
                return package
        raise ResolutionError(f"no version of {name!r} matches {spec}")

    def resolve(self, requests: Dict[str, str]) -> List[Package]:
        """Resolve {name: constraint} into a full install set.

        Returns packages in dependency-before-dependent order.
        """
        constraints: Dict[str, List[str]] = {}
        order: List[str] = []
        expanded: set = set()  # (name, version) pairs already recursed into

        def add_constraint(name: str, spec_text: str, chain: str) -> None:
            constraints.setdefault(name, []).append(spec_text)
            if name not in order:
                order.append(name)
            chosen = self._choose(name, constraints[name], chain)
            key = (name, str(chosen.version))
            if key in expanded:
                return  # already walked this choice's dependencies
            expanded.add(key)
            for dep_name, dep_spec in chosen.requires:
                add_constraint(dep_name, dep_spec, f"{chain} -> {chosen.spec}")

        for name, spec_text in requests.items():
            add_constraint(name, spec_text, "request")

        chosen_set = {
            name: self._choose(name, specs, "final")
            for name, specs in constraints.items()
        }
        # dependency-first ordering via DFS
        resolved: List[Package] = []
        visited: Dict[str, int] = {}  # 0=visiting, 1=done

        def visit(name: str) -> None:
            state = visited.get(name)
            if state == 1:
                return
            if state == 0:
                raise ResolutionError(f"dependency cycle involving {name!r}")
            visited[name] = 0
            for dep_name, _ in chosen_set[name].requires:
                visit(dep_name)
            visited[name] = 1
            resolved.append(chosen_set[name])

        for name in order:
            visit(name)
        return resolved

    def _choose(self, name: str, spec_texts: List[str], chain: str) -> Package:
        merged = VersionSpec(",".join(s for s in spec_texts if s and s != "*"))
        for package in self.versions(name):
            if merged.matches(package.version):
                return package
        raise ResolutionError(
            f"cannot satisfy {name} {merged} (via {chain}); "
            f"available: {[str(p.version) for p in self.versions(name)]}"
        )
