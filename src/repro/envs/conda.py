"""Per-user conda-like environment manager."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

from repro.envs.index import PackageIndex
from repro.envs.packages import Package
from repro.errors import EnvironmentError_


@dataclass
class Environment:
    """A named environment holding resolved packages."""

    name: str
    packages: Dict[str, Package] = field(default_factory=dict)

    def has(self, name: str, version: Optional[str] = None) -> bool:
        pkg = self.packages.get(name)
        if pkg is None:
            return False
        return version is None or str(pkg.version) == version

    def commands(self) -> Dict[str, Package]:
        """Shell commands provided by installed packages."""
        out: Dict[str, Package] = {}
        for pkg in self.packages.values():
            for cmd in pkg.provides_commands:
                out[cmd] = pkg
        return out

    def freeze(self) -> List[str]:
        """Sorted ``name==version`` lines, like ``pip freeze``."""
        return sorted(p.spec for p in self.packages.values())

    def total_size_mb(self) -> float:
        return sum(p.size_mb for p in self.packages.values())


class CondaManager:
    """Manages a user's environments against a package index.

    Install cost (in IO-megabytes, convertible to virtual seconds through
    the site hardware model) is returned from :meth:`install` so callers
    can charge the clock.
    """

    def __init__(self, owner: str, index: PackageIndex) -> None:
        self.owner = owner
        self.index = index
        self._envs: Dict[str, Environment] = {"base": Environment("base")}

    def create(self, name: str) -> Environment:
        if name in self._envs:
            raise EnvironmentError_(f"environment {name!r} already exists")
        env = Environment(name)
        self._envs[name] = env
        return env

    def env(self, name: str = "base") -> Environment:
        try:
            return self._envs[name]
        except KeyError:
            raise EnvironmentError_(
                f"no environment {name!r} for user {self.owner}"
            ) from None

    def environments(self) -> List[str]:
        return sorted(self._envs)

    def install(self, env_name: str, requests: Dict[str, str]) -> float:
        """Resolve and install; returns download size in MB (cost driver).

        Already-satisfied packages are skipped, matching conda's
        "requirement already satisfied" behaviour that Fig. 5's log shows.
        """
        env = self.env(env_name)
        resolved = self.index.resolve(requests)
        downloaded = 0.0
        for package in resolved:
            existing = env.packages.get(package.name)
            if existing is not None and existing.version == package.version:
                continue
            env.packages[package.name] = package
            downloaded += package.size_mb
        return downloaded
