"""Conda-like package and environment management.

The paper's experiments install application stacks via Conda (§6.1: the
docking stack with AutoDock Vina, VMD, MGLTools; §6.2: PSI/J v0.9.9). We
model a package index with versioned packages and dependency constraints,
and per-user environments into which packages are resolved and installed.
Provenance snapshots (:mod:`repro.provenance`) record the installed set.
"""

from repro.envs.packages import Package, VersionSpec, Version
from repro.envs.index import PackageIndex
from repro.envs.conda import CondaManager, Environment

__all__ = [
    "Package",
    "VersionSpec",
    "Version",
    "PackageIndex",
    "CondaManager",
    "Environment",
]
