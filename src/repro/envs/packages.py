"""Packages, versions, and version constraints."""

from __future__ import annotations

import re
from dataclasses import dataclass
from functools import total_ordering
from typing import Dict, Tuple


@total_ordering
@dataclass(frozen=True, eq=False)
class Version:
    """A dotted numeric version, e.g. ``1.2.6``.

    Comparison pads with zeros, so ``1.0 == 1.0.0`` while each keeps its
    original rendering.
    """

    parts: Tuple[int, ...]

    @classmethod
    def parse(cls, text: str) -> "Version":
        text = text.strip().lstrip("v")
        if not re.fullmatch(r"\d+(\.\d+)*", text):
            raise ValueError(f"bad version: {text!r}")
        return cls(tuple(int(p) for p in text.split(".")))

    def _padded(self, n: int) -> Tuple[int, ...]:
        return self.parts + (0,) * (n - len(self.parts))

    def _normalized(self) -> Tuple[int, ...]:
        parts = list(self.parts)
        while parts and parts[-1] == 0:
            parts.pop()
        return tuple(parts)

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Version):
            return NotImplemented
        return self._normalized() == other._normalized()

    def __hash__(self) -> int:
        return hash(self._normalized())

    def __lt__(self, other: "Version") -> bool:
        n = max(len(self.parts), len(other.parts))
        return self._padded(n) < other._padded(n)

    def __str__(self) -> str:
        return ".".join(str(p) for p in self.parts)


@dataclass(frozen=True)
class VersionSpec:
    """A comma-separated constraint set: ``>=1.2,<2.0``, ``==1.5.7``, ``*``."""

    text: str

    _OPS = ("==", ">=", "<=", "!=", ">", "<")

    def matches(self, version: Version) -> bool:
        for clause in self.text.split(","):
            clause = clause.strip()
            if not clause or clause == "*":
                continue
            for op in self._OPS:
                if clause.startswith(op):
                    bound = Version.parse(clause[len(op):])
                    if not self._apply(op, version, bound):
                        return False
                    break
            else:
                # bare version means exact match
                if version != Version.parse(clause):
                    return False
        return True

    @staticmethod
    def _apply(op: str, v: Version, bound: Version) -> bool:
        if op == "==":
            return v == bound
        if op == "!=":
            return v != bound
        if op == ">=":
            return v >= bound
        if op == "<=":
            return v <= bound
        if op == ">":
            return v > bound
        return v < bound

    def __str__(self) -> str:
        return self.text


@dataclass(frozen=True)
class Package:
    """One installable package version.

    ``provides_commands`` lists shell commands the package adds to the
    simulated PATH (e.g. ``pytest`` provides ``pytest``); ``size_mb``
    drives install time through the site's IO model; ``requires`` maps
    dependency names to constraint strings.
    """

    name: str
    version: Version
    requires: Tuple[Tuple[str, str], ...] = ()
    provides_commands: Tuple[str, ...] = ()
    size_mb: float = 10.0

    @classmethod
    def make(
        cls,
        name: str,
        version: str,
        requires: Dict[str, str] | None = None,
        provides_commands: Tuple[str, ...] = (),
        size_mb: float = 10.0,
    ) -> "Package":
        return cls(
            name=name,
            version=Version.parse(version),
            requires=tuple(sorted((requires or {}).items())),
            provides_commands=provides_commands,
            size_mb=size_mb,
        )

    @property
    def spec(self) -> str:
        return f"{self.name}=={self.version}"
