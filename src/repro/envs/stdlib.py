"""The standard package universe for experiments.

Versions mirror the paper where it names them: AutoDock Vina v1.2.6, VMD
v1.9.3, MGLTools v1.5.7 (§6.1); PSI/J v0.9.9 with the psutil / pystache /
typeguard requirements visible in Fig. 5 (§6.2).
"""

from __future__ import annotations

from repro.envs.index import PackageIndex
from repro.envs.packages import Package


def standard_index() -> PackageIndex:
    """A fresh index holding every package the experiments install."""
    index = PackageIndex()
    index.add_many(
        [
            # core tooling
            Package.make("python", "3.11.7", size_mb=60.0),
            Package.make("python", "3.12.1", size_mb=62.0),
            Package.make("pip", "24.0", size_mb=3.0),
            Package.make("setuptools", "69.0.3", size_mb=2.0),
            Package.make(
                "pytest", "8.3.4",
                provides_commands=("pytest",), size_mb=5.0,
            ),
            Package.make(
                "pytest", "7.4.4",
                provides_commands=("pytest",), size_mb=5.0,
            ),
            Package.make(
                "tox", "4.23.2",
                requires={"pytest": ">=7"},
                provides_commands=("tox",), size_mb=4.0,
            ),
            # FaaS / workflow stack
            Package.make("dill", "0.3.9", size_mb=1.0),
            Package.make(
                "globus-compute-sdk", "2.30.1",
                requires={"dill": ">=0.3"}, size_mb=8.0,
            ),
            Package.make("parsl", "2024.11.4", requires={"dill": "*"}, size_mb=12.0),
            # PSI/J stack (versions from Fig. 5's install log)
            Package.make("psutil", "5.9.8", size_mb=2.0),
            Package.make("pystache", "0.6.8", size_mb=1.0),
            Package.make("typeguard", "3.0.2", size_mb=1.0),
            Package.make(
                "psij-python", "0.9.9",
                requires={
                    "psutil": ">=5.9",
                    "pystache": ">=0.6.0",
                    "typeguard": ">=3.0.1",
                },
                size_mb=3.0,
            ),
            # protein docking stack (§6.1)
            Package.make(
                "autodock-vina", "1.2.6",
                provides_commands=("vina",), size_mb=30.0,
            ),
            Package.make("vmd", "1.9.3", provides_commands=("vmd",), size_mb=250.0),
            Package.make(
                "mgltools", "1.5.7",
                provides_commands=("prepare_receptor",), size_mb=90.0,
            ),
            Package.make(
                "parsldock", "0.1.0",
                requires={
                    "parsl": ">=2024",
                    "autodock-vina": "==1.2.6",
                    "vmd": "==1.9.3",
                    "mgltools": "==1.5.7",
                },
                size_mb=2.0,
            ),
            # general scientific flavor
            Package.make("numpy", "2.1.3", size_mb=18.0),
            Package.make("scipy", "1.14.1", requires={"numpy": ">=2"}, size_mb=40.0),
            Package.make("requests", "2.32.3", size_mb=1.0),
        ]
    )
    return index
