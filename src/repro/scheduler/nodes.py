"""Compute nodes and partitions."""

from __future__ import annotations

from dataclasses import dataclass
from typing import List


@dataclass
class Node:
    """One compute node.

    ``speed`` is a relative performance factor used by the site cost model
    (1.0 = reference core). Nodes also carry a class tag used by network
    policy ("login" nodes may reach the internet where "compute" nodes on
    FASTER/Expanse may not — paper §6.1).
    """

    name: str
    cores: int
    memory_gb: float
    speed: float = 1.0
    node_class: str = "compute"


@dataclass
class Partition:
    """A named group of nodes with a walltime ceiling."""

    name: str
    nodes: List[Node]
    max_walltime: float = 48 * 3600.0
    default_walltime: float = 3600.0

    def __post_init__(self) -> None:
        if not self.nodes:
            raise ValueError(f"partition {self.name!r} has no nodes")
        names = [n.name for n in self.nodes]
        if len(set(names)) != len(names):
            raise ValueError(f"duplicate node names in partition {self.name!r}")

    @property
    def node_count(self) -> int:
        return len(self.nodes)

    def node_by_name(self, name: str) -> Node:
        for node in self.nodes:
            if node.name == name:
                return node
        raise KeyError(name)


def make_nodes(
    prefix: str,
    count: int,
    cores: int,
    memory_gb: float,
    speed: float = 1.0,
    node_class: str = "compute",
) -> List[Node]:
    """Convenience constructor for a homogeneous rack of nodes."""
    if count <= 0:
        raise ValueError("count must be positive")
    return [
        Node(
            name=f"{prefix}{i:04d}",
            cores=cores,
            memory_gb=memory_gb,
            speed=speed,
            node_class=node_class,
        )
        for i in range(1, count + 1)
    ]
