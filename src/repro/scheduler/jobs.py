"""Batch jobs and their lifecycle."""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Callable, List, Optional

from repro.scheduler.nodes import Node


class JobState(enum.Enum):
    PENDING = "PENDING"
    RUNNING = "RUNNING"
    COMPLETED = "COMPLETED"
    CANCELLED = "CANCELLED"
    TIMEOUT = "TIMEOUT"
    FAILED = "FAILED"
    PREEMPTED = "PREEMPTED"

    @property
    def is_terminal(self) -> bool:
        return self not in (JobState.PENDING, JobState.RUNNING)


@dataclass
class Job:
    """A batch job request plus its runtime bookkeeping.

    ``duration`` is the virtual seconds the payload takes once started.
    ``None`` means open-ended (a pilot job): it runs until the owner calls
    :meth:`SlurmScheduler.complete` or the walltime limit kills it.
    """

    user: str
    partition: str
    num_nodes: int = 1
    walltime: Optional[float] = None  # None -> partition default
    duration: Optional[float] = None
    name: str = "job"
    on_start: Optional[Callable[["Job"], None]] = None
    on_end: Optional[Callable[["Job"], None]] = None

    # filled in by the scheduler
    job_id: str = ""
    state: JobState = JobState.PENDING
    submit_time: float = 0.0
    start_time: Optional[float] = None
    end_time: Optional[float] = None
    allocated_nodes: List[Node] = field(default_factory=list)

    @property
    def queue_wait(self) -> Optional[float]:
        """Seconds spent pending, once started."""
        if self.start_time is None:
            return None
        return self.start_time - self.submit_time

    @property
    def elapsed(self) -> Optional[float]:
        if self.start_time is None or self.end_time is None:
            return None
        return self.end_time - self.start_time

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"Job({self.job_id or '?'} {self.name!r} user={self.user} "
            f"nodes={self.num_nodes} state={self.state.value})"
        )
