"""Event-driven batch scheduler with FCFS + conservative backfill.

Scheduling happens at submit time and whenever a job frees nodes. The head
of the queue is never delayed by backfilled jobs: a later job may jump the
queue only if it fits on currently-free nodes *and* is guaranteed to finish
(by its walltime bound) before the head job's earliest possible start.
"""

from __future__ import annotations

from typing import Callable, Dict, List, Optional, Set

from repro.errors import InvalidJobSpec, JobNotFound
from repro.scheduler.jobs import Job, JobState
from repro.scheduler.nodes import Node, Partition
from repro.telemetry import tracer_of
from repro.util.clock import EventHandle, SimClock
from repro.util.events import EventLog
from repro.util.ids import IdFactory


class SlurmScheduler:
    """A batch scheduler over one or more partitions."""

    def __init__(
        self,
        clock: SimClock,
        partitions: List[Partition],
        event_log: Optional[EventLog] = None,
        name: str = "slurm",
    ) -> None:
        if not partitions:
            raise ValueError("scheduler needs at least one partition")
        self.clock = clock
        self.name = name
        self.events = event_log if event_log is not None else EventLog()
        self._partitions: Dict[str, Partition] = {p.name: p for p in partitions}
        if len(self._partitions) != len(partitions):
            raise ValueError("duplicate partition names")
        self._jobs: Dict[str, Job] = {}
        self._pending: List[str] = []  # job ids in submission order
        self._running: Set[str] = set()
        self._busy_nodes: Dict[str, Set[str]] = {
            p.name: set() for p in partitions
        }
        self._end_handles: Dict[str, EventHandle] = {}
        self._start_watchers: Dict[str, List[Callable[[Job], None]]] = {}
        self._end_watchers: Dict[str, List[Callable[[Job], None]]] = {}
        self._ids = IdFactory(f"{name}-job")
        # telemetry: per-job lifetime span and its pending-in-queue child
        self._spans: Dict[str, object] = {}
        self._queue_spans: Dict[str, object] = {}

    # -- public API (sbatch/squeue/scancel equivalents) ------------------------
    def submit(self, job: Job) -> str:
        """Queue a job (``sbatch``). Returns the job id."""
        partition = self._partitions.get(job.partition)
        if partition is None:
            raise InvalidJobSpec(f"no partition {job.partition!r} on {self.name}")
        if job.num_nodes < 1:
            raise InvalidJobSpec("num_nodes must be >= 1")
        if job.num_nodes > partition.node_count:
            raise InvalidJobSpec(
                f"requested {job.num_nodes} nodes; partition "
                f"{partition.name!r} has {partition.node_count}"
            )
        if job.walltime is None:
            job.walltime = partition.default_walltime
        if job.walltime > partition.max_walltime:
            raise InvalidJobSpec(
                f"walltime {job.walltime:.0f}s exceeds partition limit "
                f"{partition.max_walltime:.0f}s"
            )
        job.job_id = self._ids.next_id()
        job.state = JobState.PENDING
        job.submit_time = self.clock.now
        self._jobs[job.job_id] = job
        self._pending.append(job.job_id)
        self.events.emit(
            self.clock.now, self.name, "job.submitted",
            job_id=job.job_id, name=job.name, user=job.user,
            nodes=job.num_nodes, partition=job.partition,
        )
        # spans exist before _schedule(): a free partition starts the job
        # synchronously, and _start_job must find its queue span
        tracer = tracer_of(self.clock)
        job_span = tracer.start_span(
            f"slurm:{job.name}", kind="slurm",
            scheduler=self.name, job_id=job.job_id, user=job.user,
            partition=job.partition, nodes=job.num_nodes,
        )
        self._spans[job.job_id] = job_span
        self._queue_spans[job.job_id] = tracer.start_span(
            "slurm.queue", parent=job_span.context, kind="slurm",
            scheduler=self.name, job_id=job.job_id,
        )
        self._schedule()
        return job.job_id

    def job(self, job_id: str) -> Job:
        try:
            return self._jobs[job_id]
        except KeyError:
            raise JobNotFound(f"{self.name}: no job {job_id}") from None

    def queue(self) -> List[Job]:
        """Pending + running jobs, like ``squeue``."""
        return [self._jobs[j] for j in self._pending] + [
            self._jobs[j] for j in sorted(self._running)
        ]

    def cancel(self, job_id: str) -> None:
        """``scancel``: terminal no-op if already finished."""
        job = self.job(job_id)
        if job.state.is_terminal:
            return
        if job.state is JobState.PENDING:
            self._pending.remove(job_id)
            self._finish(job, JobState.CANCELLED)
        else:
            self._end_job(job, JobState.CANCELLED)

    def complete(self, job_id: str) -> None:
        """Mark an open-ended (pilot) job's payload as done."""
        job = self.job(job_id)
        if job.state is not JobState.RUNNING:
            raise JobNotFound(f"job {job_id} is not running")
        self._end_job(job, JobState.COMPLETED)

    def fail(self, job_id: str) -> None:
        """Mark a running job as failed (payload crashed)."""
        job = self.job(job_id)
        if job.state is not JobState.RUNNING:
            raise JobNotFound(f"job {job_id} is not running")
        self._end_job(job, JobState.FAILED)

    def force_timeout(self, job_id: str) -> None:
        """End a running job as TIMEOUT before its walltime bound.

        Models an operator (or a fault injector) enforcing the limit
        early — the owner observes the same terminal state as a natural
        walltime kill.
        """
        job = self.job(job_id)
        if job.state is not JobState.RUNNING:
            raise JobNotFound(f"job {job_id} is not running")
        self._end_job(job, JobState.TIMEOUT)

    def preempt(self, job_id: str) -> None:
        """Preempt a running job: nodes are reclaimed, state PREEMPTED."""
        job = self.job(job_id)
        if job.state is not JobState.RUNNING:
            raise JobNotFound(f"job {job_id} is not running")
        self._end_job(job, JobState.PREEMPTED)

    # -- completion callbacks -----------------------------------------------------
    def notify_start(self, job_id: str, callback: Callable[[Job], None]) -> None:
        """Call ``callback(job)`` when the job starts running.

        Fires immediately if the job already started (or synchronously
        from :meth:`submit` when free nodes allow an instant start). This
        is the event-driven alternative to :meth:`wait_for_start`: the
        async pilot provisioning path registers a callback instead of
        pumping the clock, so a queue wait on one site no longer blocks
        progress anywhere else.
        """
        job = self.job(job_id)
        if job.state is not JobState.PENDING:
            callback(job)
            return
        self._start_watchers.setdefault(job_id, []).append(callback)

    def notify_end(self, job_id: str, callback: Callable[[Job], None]) -> None:
        """Call ``callback(job)`` when the job reaches a terminal state."""
        job = self.job(job_id)
        if job.state.is_terminal:
            callback(job)
            return
        self._end_watchers.setdefault(job_id, []).append(callback)

    # -- waiting helpers ---------------------------------------------------------
    def wait_for_start(self, job_id: str, limit: float = float("inf")) -> Job:
        """Advance virtual time until the job starts (or hits ``limit``)."""
        job = self.job(job_id)
        while job.state is JobState.PENDING:
            nxt = self.clock.next_event_time()
            if nxt is None or nxt > limit:
                break
            self.clock.run_until(nxt)
        return job

    def wait_for(self, job_id: str, limit: float = float("inf")) -> Job:
        """Advance virtual time until the job reaches a terminal state."""
        job = self.job(job_id)
        while not job.state.is_terminal:
            nxt = self.clock.next_event_time()
            if nxt is None or nxt > limit:
                break
            self.clock.run_until(nxt)
        return job

    # -- utilization ---------------------------------------------------------
    def free_nodes(self, partition_name: str) -> List[Node]:
        partition = self._partitions[partition_name]
        busy = self._busy_nodes[partition_name]
        return [n for n in partition.nodes if n.name not in busy]

    def utilization(self, partition_name: str) -> float:
        partition = self._partitions[partition_name]
        return len(self._busy_nodes[partition_name]) / partition.node_count

    # -- internals ---------------------------------------------------------------
    def _schedule(self) -> None:
        """FCFS + conservative backfill over each partition's queue."""
        for pname in self._partitions:
            self._schedule_partition(pname)

    def _schedule_partition(self, pname: str) -> None:
        # One job starts per scan, dequeued *before* its start callbacks
        # run: a start watcher may drive the clock (async pilot dispatch
        # runs task bodies), re-entering _schedule — the queue must never
        # hold a job that is already running.
        while True:
            queue = [
                j for j in self._pending if self._jobs[j].partition == pname
            ]
            if not queue:
                return
            free = len(self.free_nodes(pname))
            head_blocked: Optional[Job] = None
            to_start: Optional[Job] = None
            for job_id in queue:
                job = self._jobs[job_id]
                if head_blocked is None:
                    if job.num_nodes <= free:
                        to_start = job
                        break
                    head_blocked = job
                else:
                    # Backfill: may start only if it fits now AND its
                    # walltime bound ends before the blocked head's
                    # earliest start.
                    shadow = self._shadow_time(head_blocked)
                    if (
                        job.num_nodes <= free
                        and shadow is not None
                        and self.clock.now + (job.walltime or 0.0)
                        <= shadow + 1e-9
                    ):
                        to_start = job
                        break
            if to_start is None:
                return
            self._pending.remove(to_start.job_id)
            self._start_job(to_start)

    def _shadow_time(self, head: Job) -> Optional[float]:
        """Earliest time the blocked head job could start.

        Computed from the walltime-bounded end times of running jobs in the
        head's partition, accumulating freed nodes until enough exist.
        """
        partition = self._partitions[head.partition]
        free = partition.node_count - len(self._busy_nodes[head.partition])
        ends = sorted(
            (
                (self._jobs[j].start_time or 0.0) + (self._jobs[j].walltime or 0.0),
                self._jobs[j].num_nodes,
            )
            for j in self._running
            if self._jobs[j].partition == head.partition
        )
        for end_time, nodes in ends:
            free += nodes
            if free >= head.num_nodes:
                return end_time
        return None

    def _start_job(self, job: Job) -> None:
        partition = self._partitions[job.partition]
        free = self.free_nodes(job.partition)
        job.allocated_nodes = free[: job.num_nodes]
        self._busy_nodes[job.partition].update(
            n.name for n in job.allocated_nodes
        )
        job.state = JobState.RUNNING
        job.start_time = self.clock.now
        self._running.add(job.job_id)
        self.events.emit(
            self.clock.now, self.name, "job.started",
            job_id=job.job_id, name=job.name,
            nodes=[n.name for n in job.allocated_nodes],
            queue_wait=job.queue_wait,
        )
        queue_span = self._queue_spans.pop(job.job_id, None)
        if queue_span is not None:
            tracer_of(self.clock).end_span(queue_span)
            queue_span.attributes["queue_wait"] = job.queue_wait
        if job.on_start is not None:
            job.on_start(job)
        for watcher in self._start_watchers.pop(job.job_id, []):
            watcher(job)
        # schedule the end: payload completion or walltime kill
        if job.duration is not None and job.duration <= (job.walltime or 0.0):
            end_state = JobState.COMPLETED
            end_at = self.clock.now + job.duration
        else:
            end_state = JobState.TIMEOUT
            end_at = self.clock.now + (job.walltime or 0.0)
        handle = self.clock.call_at(
            end_at, lambda j=job, s=end_state: self._end_job(j, s)
        )
        self._end_handles[job.job_id] = handle

    def _end_job(self, job: Job, state: JobState) -> None:
        if job.state.is_terminal:
            return
        handle = self._end_handles.pop(job.job_id, None)
        if handle is not None:
            handle.cancel()
        self._running.discard(job.job_id)
        self._busy_nodes[job.partition].difference_update(
            n.name for n in job.allocated_nodes
        )
        self._finish(job, state)
        self._schedule()

    def _finish(self, job: Job, state: JobState) -> None:
        job.state = state
        job.end_time = self.clock.now
        self.events.emit(
            self.clock.now, self.name, "job.ended",
            job_id=job.job_id, name=job.name, state=state.value,
        )
        tracer = tracer_of(self.clock)
        queue_span = self._queue_spans.pop(job.job_id, None)
        if queue_span is not None:  # cancelled while still pending
            tracer.end_span(queue_span, status="error", error=state.value)
        job_span = self._spans.pop(job.job_id, None)
        if job_span is not None:
            ok = state in (JobState.COMPLETED, JobState.CANCELLED)
            tracer.end_span(
                job_span,
                status="ok" if ok else "error",
                error="" if ok else state.value,
            )
            job_span.attributes["state"] = state.value
        if job.on_end is not None:
            job.on_end(job)
        self._start_watchers.pop(job.job_id, None)
        for watcher in self._end_watchers.pop(job.job_id, []):
            watcher(job)
