"""Discrete-event batch scheduler (SLURM-like).

HPC sites in this simulation run a :class:`SlurmScheduler` over partitions
of nodes. The scheduler implements FCFS with conservative backfill and
enforces walltime limits. Queue wait — the overhead that makes cloud CI
runners unsuitable for HPC testing (paper §1, §4.4) — emerges from
competing background load submitted by the site models.
"""

from repro.scheduler.nodes import Node, Partition
from repro.scheduler.jobs import Job, JobState
from repro.scheduler.slurm import SlurmScheduler

__all__ = ["Node", "Partition", "Job", "JobState", "SlurmScheduler"]
