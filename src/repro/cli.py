"""Command-line interface: regenerate any paper experiment from a shell.

``python -m repro <experiment>`` runs the corresponding harness and prints
the same rows/series the paper's table or figure reports.
"""

from __future__ import annotations

import argparse
import sys
from typing import Callable, Dict, List, Optional


def _cmd_fig1(args: argparse.Namespace) -> int:
    from repro.analysis.tables import format_table
    from repro.experiments import run_fig1

    counts = run_fig1(seed=args.seed)
    rows = [
        [year, c["available"], c["evaluated"], c["reproduced"]]
        for year, c in sorted(counts.items())
    ]
    print("Fig. 1 — reproducibility badges awarded by SC over time\n")
    print(format_table(["year", "available", "evaluated", "reproduced"], rows))
    return 0


def _telemetry_enabled(args: argparse.Namespace) -> bool:
    return not getattr(args, "no_telemetry", False)


def _maybe_print_metrics(args: argparse.Namespace, world) -> None:
    """Print the metrics report when ``--metrics`` was passed."""
    if not getattr(args, "metrics", False) or world is None:
        return
    print("\n== metrics ==")
    if not _telemetry_enabled(args):
        print("(telemetry disabled; no metrics collected)")
        return
    print(world.metrics.report())


def _render_fig4(result) -> int:
    """Print the Fig. 4 report for a ``Fig4Result``; returns exit code."""
    from repro.analysis.tables import format_grouped_bars

    print("Fig. 4 — ParslDock test runtimes on different machines\n")
    groups = {
        test: {site: result.durations[site][test] for site in result.durations}
        for test in result.tests()
    }
    print(format_grouped_bars(groups))
    print("\npilot queue waits:", {
        s: round(w, 1) for s, w in result.queue_waits.items()
    })
    return 0 if result.all_passed() else 1


def _cmd_fig4(args: argparse.Namespace) -> int:
    from repro.experiments import run_fig4

    result = run_fig4(telemetry=_telemetry_enabled(args))
    code = _render_fig4(result)
    _maybe_print_metrics(args, result.world)
    return code


def _cmd_fig4_overlap(args: argparse.Namespace) -> int:
    from repro.experiments import run_fig4_overlap

    result = run_fig4_overlap(telemetry=_telemetry_enabled(args))
    print("Fig. 4 (async) — multi-site overlap from the deferred lifecycle\n")
    for site, duration in result.per_site_serialized.items():
        print(f"  {site:<12} serialized {duration:8.1f}s")
    print(f"\nserialized total: {result.serialized_total:8.1f}s")
    print(f"concurrent makespan: {result.makespan:8.1f}s")
    print(f"overlap speedup: {result.speedup:.2f}x")
    _maybe_print_metrics(args, result.world)
    return 0 if result.makespan < result.serialized_total else 1


def _render_fig5(result) -> int:
    """Print the Fig. 5 report for a ``Fig5Result``; returns exit code."""
    print("Fig. 5 — PSI/J CI via CORRECT on Anvil\n")
    print(f"run status: {result.run.status}")
    for name, (outcome, duration) in result.tests.items():
        print(f"  {name:<28} {outcome:<7} {duration:8.2f}s")
    print("\nfailing:", sorted(result.failing_tests))
    # the experiment *succeeds* when the run fails with the known bug
    return 0 if result.run_failed else 1


def _cmd_fig5(args: argparse.Namespace) -> int:
    from repro.experiments import run_fig5

    result = run_fig5(
        telemetry=_telemetry_enabled(args),
        inject_failure=getattr(args, "inject_failure", False),
    )
    code = _render_fig5(result)
    _maybe_print_metrics(args, result.world)
    return code


def _render_exp63(result) -> int:
    """Print the §6.3 report for an ``Exp63Result``; returns exit code."""
    print("§6.3 — KaMPIng artifact evaluation\n")
    for name, verdict in result.verdicts().items():
        print(f"  {name:<24} {'REPRODUCED' if verdict else 'FAILED'}")
    return 0 if result.all_passed else 1


def _cmd_exp63(args: argparse.Namespace) -> int:
    from repro.experiments import run_exp63

    result = run_exp63(telemetry=_telemetry_enabled(args))
    code = _render_exp63(result)
    _maybe_print_metrics(args, result.world)
    return code


def _cmd_chaos(args: argparse.Namespace) -> int:
    """Run an experiment under a seeded fault plan with resilience on."""
    telemetry = _telemetry_enabled(args)
    if args.experiment == "fig5":
        from repro.experiments import run_fig5_chaos

        result = run_fig5_chaos(seed=args.seed, telemetry=telemetry)
        print(
            "Chaos Fig. 5 — failing test reproduced by injection "
            "(fixed suite)\n"
        )
        print(f"run status: {result.run.status}")
        for name, (outcome, duration) in result.tests.items():
            print(f"  {name:<28} {outcome:<7} {duration:8.2f}s")
        print("\nfailing:", sorted(result.failing_tests))
        _maybe_print_metrics(args, result.world)
        return 0 if result.run_failed else 1

    from repro.experiments import format_chaos_report, run_fig4_chaos

    result = run_fig4_chaos(
        seed=args.seed, profile=args.profile, telemetry=telemetry
    )
    print(format_chaos_report(result))
    _maybe_print_metrics(args, result.world)
    # graceful degradation succeeded if at least one site reported results
    return 0 if result.sites_ok else 1


def _cmd_recover(args: argparse.Namespace) -> int:
    """Crash an experiment at a journal offset and resume it exactly."""
    import os

    from repro.experiments import (
        format_recovery_report,
        run_fig4_recovery,
        run_fig4_recovery_sweep,
    )

    telemetry = _telemetry_enabled(args)
    if args.sweep:
        results = run_fig4_recovery_sweep(seed=args.seed, telemetry=telemetry)
    else:
        results = [
            run_fig4_recovery(
                crash_at=args.crash_at, seed=args.seed, telemetry=telemetry
            )
        ]
    print(format_recovery_report(results))
    if args.dump_dir:
        os.makedirs(args.dump_dir, exist_ok=True)
        base = os.path.join(args.dump_dir, "baseline.txt")
        with open(base, "w", encoding="utf-8") as fh:
            fh.write(results[0].baseline_output + "\n")
        for result in results:
            path = os.path.join(
                args.dump_dir, f"resumed-{result.crash_label}.txt"
            )
            with open(path, "w", encoding="utf-8") as fh:
                fh.write(result.resumed_output + "\n")
        print(f"\nwrote baseline + {len(results)} resumed output(s) "
              f"to {args.dump_dir}")
    return 0 if all(r.ok for r in results) else 1


def _cmd_route(args: argparse.Namespace) -> int:
    """Compare a placement policy against pinned on pooled endpoints."""
    from repro.experiments import format_routing_report, run_fig4_pooled

    comparison = run_fig4_pooled(
        policy=args.policy,
        pool_size=args.pool_size,
        telemetry=_telemetry_enabled(args),
    )
    print(format_routing_report(comparison))
    _maybe_print_metrics(args, comparison.routed.world)
    return 0 if comparison.routed_is_faster else 1


def _cmd_overload(args: argparse.Namespace) -> int:
    """Compare goodput with and without the overload-protection plane."""
    from repro.experiments import (
        OverloadParams,
        format_overload_report,
        run_overload_comparison,
    )

    params = OverloadParams(
        tenants=args.tenants,
        seed=args.seed,
        profile=args.profile,
        endpoints=args.endpoints,
        hot_factor=args.hot_factor,
    )
    comparison = run_overload_comparison(params)
    print(format_overload_report(comparison))
    if args.export:
        from repro.telemetry import openmetrics_text, validate_openmetrics

        world = comparison.protected.world
        text = openmetrics_text(world.metrics, world.series)
        validate_openmetrics(text)
        om_path = f"{args.export}-openmetrics.txt"
        with open(om_path, "w", encoding="utf-8") as fh:
            fh.write(text)
        print(f"\nwrote {om_path}", file=sys.stderr)
    # a fault-free run must not shed a well-behaved workload; a chaotic
    # run succeeds when protection strictly beats no protection
    if comparison.protected.fault_free:
        return 0 if comparison.protected.shed == 0 else 1
    return 0 if comparison.goodput_ratio > 1.0 else 1


def _cmd_hedge(args: argparse.Namespace) -> int:
    """Compare tail latency with and without the fail-slow hedging plane."""
    from repro.experiments import (
        HedgingParams,
        format_hedging_report,
        run_fig4_failslow,
    )

    params = HedgingParams(
        seed=args.seed, profile=args.profile, endpoints=args.endpoints
    )
    comparison = run_fig4_failslow(params)
    print(format_hedging_report(comparison))
    runs = (comparison.unhedged, comparison.hedged, comparison.fault_free)
    audits_ok = (
        comparison.fault_free.hedges_launched == 0
        and all(r.double_resolutions == 0 for r in runs)
        and all(r.unresolved_futures == 0 for r in runs)
    )
    if params.profile in ("none", "off"):
        # a fault-free comparison only proves quiescence + exactly-once
        return 0 if audits_ok else 1
    return (
        0
        if audits_ok and comparison.hedged.p99 < comparison.unhedged.p99
        else 1
    )


def _cmd_bench(args: argparse.Namespace) -> int:
    """Run one microbenchmark scenario and write BENCH_<scenario>.json."""
    from repro.experiments.bench import (
        SCENARIOS,
        check_against_baseline,
        format_bench_report,
    )

    kwargs: Dict[str, object] = {}
    if args.scenario.startswith("dispatch"):
        if args.tasks:
            kwargs["tasks"] = args.tasks
        kwargs["endpoints"] = args.endpoints
        kwargs["seed"] = args.seed
        kwargs["telemetry"] = args.telemetry
        if args.span_sample_rate is not None:
            kwargs["telemetry"] = True
            kwargs["span_sample_rate"] = args.span_sample_rate
        if args.journal_batch:
            kwargs["journal_batch"] = args.journal_batch
        if args.obs:
            kwargs["obs"] = True
    elif args.scenario.startswith("overload"):
        if args.tasks:
            kwargs["tasks"] = args.tasks
        kwargs["tenants"] = args.tenants
        kwargs["endpoints"] = args.endpoints
        kwargs["seed"] = args.seed
    else:
        kwargs["pool_size"] = args.pool_size
    result = SCENARIOS[args.scenario](**kwargs)
    print(format_bench_report(result))
    if not args.no_write:
        path = result.write(args.output_dir)
        print(f"\nwrote {path}")
    if args.baseline:
        failures = check_against_baseline(
            result, args.baseline, tolerance=args.tolerance
        )
        if failures:
            for failure in failures:
                print(f"FAIL: {failure}", file=sys.stderr)
            return 1
        print(
            f"baseline check passed ({args.baseline}, "
            f"tolerance {args.tolerance:.0%})"
        )
    return 0


def _cmd_obs(args: argparse.Namespace) -> int:
    """Run Fig. 4 watched by the observability plane; report/export it."""
    import json

    from repro.experiments import (
        format_obs_report,
        parse_slo_overrides,
        run_fig4_obs,
    )
    from repro.telemetry import validate_openmetrics

    try:
        rules = parse_slo_overrides(args.slo, args.window)
    except ValueError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    result = run_fig4_obs(
        seed=args.seed,
        profile=args.profile,
        window=args.window,
        rules=rules,
        health_routing=args.health_routing,
    )
    print(format_obs_report(result))
    if args.export:
        text = result.openmetrics()
        validate_openmetrics(text)
        om_path = f"{args.export}-openmetrics.txt"
        with open(om_path, "w", encoding="utf-8") as fh:
            fh.write(text)
        dash_path = f"{args.export}-dashboard.json"
        with open(dash_path, "w", encoding="utf-8") as fh:
            json.dump(result.dashboard(), fh, indent=2, sort_keys=True)
            fh.write("\n")
        print(f"\nwrote {om_path} and {dash_path}", file=sys.stderr)
    # a fault-free run under the default pack must stay silent; chaos
    # runs succeed by completing (their alerts are the expected signal)
    if result.fault_free and result.alerts_fired:
        return 1
    return 0


TRACEABLE_EXPERIMENTS = ("fig4", "fig5", "exp63")


def _cmd_trace(args: argparse.Namespace) -> int:
    """Run an experiment with telemetry on and export its Chrome trace."""
    from repro.experiments import run_exp63, run_fig4, run_fig5
    from repro.telemetry.export import dumps_chrome_trace, text_report

    runner = {
        "fig4": run_fig4,
        "fig5": run_fig5,
        "exp63": run_exp63,
    }[args.experiment]
    result = runner(telemetry=True)
    world = result.world
    output = args.output or f"{args.experiment}-trace.json"
    text = dumps_chrome_trace(
        world.tracer, world.metrics, include_orphans=args.all_traces
    )
    with open(output, "w", encoding="utf-8") as fh:
        fh.write(text)
    tracer = world.tracer
    workflow_roots = [s for s in tracer.roots() if s.kind == "workflow"]
    print(
        f"wrote {output}: {len(tracer.spans)} spans, "
        f"{len(workflow_roots)} workflow trace(s) "
        "(load in Perfetto / chrome://tracing)"
    )
    if args.report:
        print()
        print(text_report(
            tracer, world.metrics,
            title=f"{args.experiment} run report",
            include_orphans=args.all_traces,
        ))
    return 0


def _cmd_tables(args: argparse.Namespace) -> int:
    from repro.analysis.tables import format_table
    from repro.experiments import (
        table1_rows,
        table2_rows,
        table3_rows,
        table4_rows_and_probes,
    )

    print("Table 1 — science application features important for CI")
    print(format_table(["Characteristic", "Description"], table1_rows()))
    print("\nTable 2 — CI usage in scientific applications")
    print(
        format_table(
            ["", "CI framework", "Compute", "Objective", "Visualization"],
            table2_rows(),
        )
    )
    print("\nTable 3 — characteristics for CI of HPC software")
    print(format_table(["Characteristic", "Description"], table3_rows()))
    print("\nTable 4 — HPC CI frameworks (probes executed)")
    rows, probes = table4_rows_and_probes(include_correct=True)
    print(
        format_table(
            ["Framework", "CI Platform", "Auth", "Site-Specific", "Containers"],
            rows,
        )
    )
    ok = all(
        v for checks in probes.values()
        for k, v in checks.items() if k != "needs_runner_on_hpc"
    )
    print(f"\nall probes demonstrated: {ok}")
    return 0 if ok else 1


def _cmd_ablations(args: argparse.Namespace) -> int:
    from repro.experiments.ablations import (
        cron_vs_correct,
        overhead_ablation,
        retention_ablation,
        security_ablation,
    )

    overhead = overhead_ablation()
    print(f"ABL1 pilot amortization: {overhead.amortization_factor:.1f}x")
    security = security_ablation()
    print(f"ABL2 security checks: {sum(security.values())}/{len(security)} hold")
    comparison = cron_vs_correct()
    print(
        "ABL3 staleness after push: "
        f"cron {comparison.cron_staleness_after_push:.0f}s vs "
        f"CORRECT {comparison.correct_staleness_after_push:.0f}s"
    )
    retention = retention_ablation()
    print(f"ABL3 retention checks: {sum(retention.values())}/{len(retention)}")
    from repro.experiments.ablations import cloud_overhead_sweep

    sweep = cloud_overhead_sweep()
    print(
        "ABL4 cloud overhead: "
        + ", ".join(
            f"{o:.1f}s→{lat:.1f}s" for o, lat in sorted(sweep.latencies.items())
        )
        + f" (marginal {sweep.marginal_cost:.2f}s/s)"
    )
    ok = all(security.values()) and all(retention.values())
    return 0 if ok else 1


def _parse_var_overrides(specs: Optional[List[str]]) -> Optional[Dict[str, object]]:
    """``--var k=v`` (or ``k=a,b,c``) strings -> a resolver override map."""
    if not specs:
        return None
    overrides: Dict[str, object] = {}
    for spec in specs:
        key, sep, raw = spec.partition("=")
        if not sep or not key.strip():
            raise ValueError(f"--var expects key=value, got {spec!r}")
        overrides[key.strip()] = raw.split(",") if "," in raw else raw
    return overrides


def _cmd_suite(args: argparse.Namespace) -> int:
    """``repro suite list|show|run`` — the declarative-suite front end."""
    from repro.suites import (
        SuiteError,
        format_suite_report,
        format_sweep_report,
        load_suite,
        materialize,
        run_suite,
        suites_root,
    )

    if args.action == "list":
        root = suites_root()
        paths = sorted(root.glob("*.yaml"))
        if not paths:
            print(f"no suite files in {root}")
            return 1
        for path in paths:
            try:
                spec = load_suite(path)
                mat = materialize(spec)
            except SuiteError as exc:
                print(f"  {path.name:<24} INVALID: {exc}")
                continue
            print(
                f"  {spec.name:<14} {len(mat.instances):>3} instance(s), "
                f"{len(mat.jobs):>2} job(s)  {spec.description}"
            )
        return 0

    try:
        overrides = _parse_var_overrides(getattr(args, "var", None))
    except ValueError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2

    if args.action == "show":
        try:
            spec = load_suite(args.suite)
            mat = materialize(spec, overrides)
        except SuiteError as exc:
            print(f"error: {exc}", file=sys.stderr)
            return 2
        print(f"suite {spec.name} — {spec.description}")
        print(f"workflow: {spec.workflow_name} ({spec.workflow_path})")
        print(f"repo: {spec.repo_slug}")
        print(
            f"{len(mat.instances)} instance(s) "
            f"({len(mat.active)} active, {len(mat.skipped)} skipped), "
            f"{len(mat.jobs)} job(s)"
        )
        print()
        for instance in mat.instances:
            status = "skip" if instance.skipped else "run"
            print(
                f"  {instance.instance_id}  {instance.series}"
                f"[{instance.permutation}]  {status:<4} "
                f"job={instance.job_id} target={instance.target} "
                f"cmd={instance.command!r}"
            )
        return 0

    # action == "run"
    telemetry = _telemetry_enabled(args)
    try:
        if args.permute or args.overload or args.hedge:
            if args.overload:
                from repro.experiments.overload import run_suite_overload

                sweep = run_suite_overload(
                    args.suite, seed=args.seed, profile=args.profile,
                    policy=args.policy, pool_size=args.pool_size,
                )
            elif args.hedge:
                from repro.experiments.hedging import run_suite_failslow

                sweep = run_suite_failslow(
                    args.suite, seed=args.seed, profile=args.profile,
                    policy=args.policy, pool_size=args.pool_size,
                )
            else:
                from repro.suites import run_sweep

                sweep = run_sweep(
                    args.suite, seed=args.seed, profile=args.profile,
                    policy=args.policy, pool_size=args.pool_size,
                    overrides=overrides, telemetry=telemetry,
                )
            print(format_sweep_report(sweep))
            return 0 if sweep.ok else 1
        if args.profile:
            from repro.experiments.chaos import run_suite_chaos

            suite_run = run_suite_chaos(
                args.suite, seed=args.seed, profile=args.profile,
                telemetry=telemetry, overrides=overrides,
            )
        else:
            suite_run = run_suite(
                args.suite, overrides=overrides, telemetry=telemetry,
            )
    except SuiteError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2

    report = suite_run.spec.report
    if report == "fig4":
        from repro.experiments.fig4_parsldock import fig4_result_from

        _render_fig4(fig4_result_from(suite_run))
    elif report == "fig5":
        from repro.experiments.fig5_psij import fig5_result_from

        _render_fig5(fig5_result_from(suite_run))
    elif report == "exp63":
        from repro.experiments.exp63_kamping import exp63_result_from

        _render_exp63(exp63_result_from(suite_run))
    else:
        print(format_suite_report(suite_run))
    # the suite exit contract: nonzero iff any non-skipped test failed,
    # regardless of which report renderer drew the output
    return 0 if suite_run.ok else 1


COMMANDS: Dict[str, Callable[[argparse.Namespace], int]] = {
    "fig1": _cmd_fig1,
    "fig4": _cmd_fig4,
    "fig4-overlap": _cmd_fig4_overlap,
    "fig5": _cmd_fig5,
    "exp63": _cmd_exp63,
    "tables": _cmd_tables,
    "ablations": _cmd_ablations,
    "trace": _cmd_trace,
    "chaos": _cmd_chaos,
    "route": _cmd_route,
    "recover": _cmd_recover,
    "bench": _cmd_bench,
    "obs": _cmd_obs,
    "overload": _cmd_overload,
    "hedge": _cmd_hedge,
    "suite": _cmd_suite,
}


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description=(
            "Regenerate the tables and figures of 'Addressing "
            "Reproducibility Challenges in HPC with Continuous Integration' "
            "(SC 2025) from the simulated substrate."
        ),
    )
    sub = parser.add_subparsers(dest="command", required=True)
    for name, help_text in [
        ("fig1", "badge counts over time (Fig. 1)"),
        ("fig4", "ParslDock multi-site runtimes (Fig. 4)"),
        ("fig4-overlap", "multi-site overlap via the async lifecycle"),
        ("fig5", "PSI/J failure surfacing (Fig. 5)"),
        ("exp63", "KaMPIng artifact evaluation (§6.3)"),
        ("tables", "survey tables 1-4 with executable probes"),
        ("ablations", "overhead, security, cron-vs-CORRECT, retention"),
    ]:
        p = sub.add_parser(name, help=help_text)
        if name == "fig1":
            p.add_argument("--seed", type=int, default=2025)
        if name in ("fig4", "fig4-overlap", "fig5", "exp63"):
            p.add_argument(
                "--metrics", action="store_true",
                help="print the telemetry metrics report after the run",
            )
            p.add_argument(
                "--no-telemetry", action="store_true",
                help="run without tracer/metrics (outputs are identical)",
            )
        if name == "fig5":
            p.add_argument(
                "--inject-failure", action="store_true",
                help=(
                    "reproduce the failing test via the fault layer "
                    "against the fixed suite (same artifact either way)"
                ),
            )
    trace = sub.add_parser(
        "trace",
        help="run an experiment and export its Chrome trace JSON",
    )
    trace.add_argument(
        "experiment", choices=["fig4", "fig5", "exp63"],
        help="which experiment to run and trace",
    )
    trace.add_argument(
        "-o", "--output", default="",
        help="output path (default: <experiment>-trace.json)",
    )
    trace.add_argument(
        "--report", action="store_true",
        help="also print the plain-text span/metrics report",
    )
    trace.add_argument(
        "--all-traces", action="store_true",
        help="include non-CI traces (background load, pilots) in the export",
    )
    chaos = sub.add_parser(
        "chaos",
        help="run an experiment under a seeded fault plan (resilience on)",
    )
    chaos.add_argument(
        "experiment", choices=["fig4", "fig5"],
        help="which experiment to run chaotically",
    )
    chaos.add_argument(
        "--seed", type=int, default=7,
        help="fault-plan seed; the same seed replays the same chaos",
    )
    chaos.add_argument(
        "--profile", default="flaky-endpoint",
        choices=["flaky-endpoint", "walltime", "partition", "fail-slow"],
        help="named fault profile (fig4 only)",
    )
    chaos.add_argument(
        "--metrics", action="store_true",
        help="print the telemetry metrics report after the run",
    )
    chaos.add_argument(
        "--no-telemetry", action="store_true",
        help="run without tracer/metrics (outputs are identical)",
    )
    route = sub.add_parser(
        "route",
        help=(
            "run the sharded Fig. 4 on endpoint pools and compare a "
            "placement policy against pinned"
        ),
    )
    route.add_argument(
        "experiment", choices=["fig4"],
        help="which experiment to run pooled",
    )
    route.add_argument(
        "--policy", default="least-loaded",
        choices=["round-robin", "least-loaded", "weighted"],
        help="placement policy to compare against pinned",
    )
    route.add_argument(
        "--pool-size", type=int, default=2,
        help="endpoints deployed per site (default 2)",
    )
    route.add_argument(
        "--metrics", action="store_true",
        help="print the telemetry metrics report after the routed run",
    )
    route.add_argument(
        "--no-telemetry", action="store_true",
        help="run without tracer/metrics (outputs are identical)",
    )
    recover = sub.add_parser(
        "recover",
        help=(
            "crash an experiment at a journal offset, resume from the "
            "write-ahead journal, and diff against the uninterrupted run"
        ),
    )
    recover.add_argument(
        "experiment", choices=["fig4"],
        help="which experiment to crash and recover",
    )
    recover.add_argument(
        "--crash-at", default="mid-execute",
        help=(
            "named crash point (mid-dispatch, mid-execute, between-waves, "
            "after-last) or a 1-based journal record number"
        ),
    )
    recover.add_argument(
        "--seed", type=int, default=0,
        help="world seed (the same seed replays the same run)",
    )
    recover.add_argument(
        "--sweep", action="store_true",
        help="crash + resume at every named point, sharing one baseline",
    )
    recover.add_argument(
        "--dump-dir", default="",
        help="write baseline.txt and resumed-<point>.txt here for diffing",
    )
    recover.add_argument(
        "--no-telemetry", action="store_true",
        help="run without tracer/metrics (outputs are identical)",
    )
    bench = sub.add_parser(
        "bench",
        help=(
            "run a seeded microbenchmark scenario and write "
            "BENCH_<scenario>.json"
        ),
    )
    bench.add_argument(
        "scenario",
        choices=[
            "dispatch_10k", "dispatch_100k", "dispatch_1m",
            "fig4_pooled", "overload_50k",
        ],
        help="which scenario to run",
    )
    bench.add_argument(
        "--tasks", type=int, default=0,
        help="override the task count of a dispatch scenario",
    )
    bench.add_argument(
        "--endpoints", type=int, default=8,
        help="endpoints in the dispatch/overload pool (default 8)",
    )
    bench.add_argument(
        "--tenants", type=int, default=8,
        help="tenants sharing the pool (overload scenarios, default 8)",
    )
    bench.add_argument(
        "--seed", type=int, default=0,
        help="workload seed; the same seed replays the same durations",
    )
    bench.add_argument(
        "--telemetry", action="store_true",
        help="attach the tracer/metrics bridge (dispatch scenarios)",
    )
    bench.add_argument(
        "--span-sample-rate", type=float, default=None,
        help="trace this fraction of task roots (implies --telemetry)",
    )
    bench.add_argument(
        "--journal-batch", type=int, default=0,
        help="journal the run with this store-flush batch size",
    )
    bench.add_argument(
        "--obs", action="store_true",
        help=(
            "attach the observability plane (implies --telemetry); the "
            "JSON gains a real alerts_fired count and p95 series"
        ),
    )
    bench.add_argument(
        "--pool-size", type=int, default=2,
        help="endpoints per site for fig4_pooled (default 2)",
    )
    bench.add_argument(
        "-o", "--output-dir", default=".",
        help="directory for BENCH_<scenario>.json (default: cwd)",
    )
    bench.add_argument(
        "--no-write", action="store_true",
        help="print the report without writing the JSON",
    )
    bench.add_argument(
        "--baseline", default="",
        help="baseline JSON to gate against (exit 1 on regression)",
    )
    bench.add_argument(
        "--tolerance", type=float, default=0.2,
        help="allowed throughput drop vs the baseline (default 0.2)",
    )
    obs = sub.add_parser(
        "obs",
        help=(
            "run an experiment watched by the observability plane: "
            "windowed series, SLO alerts, health scores, OpenMetrics"
        ),
    )
    obs.add_argument(
        "experiment", choices=["fig4"],
        help="which experiment to observe",
    )
    obs.add_argument(
        "--seed", type=int, default=7,
        help="fault-plan seed for chaos profiles (default 7)",
    )
    obs.add_argument(
        "--profile", default="flaky-endpoint",
        choices=["flaky-endpoint", "walltime", "partition", "fail-slow", "none"],
        help="fault profile; 'none' runs the fault-free Fig. 4",
    )
    obs.add_argument(
        "--window", type=float, default=60.0,
        help="time-series bucket width in virtual seconds (default 60)",
    )
    obs.add_argument(
        "--slo", action="append", default=None, metavar="KEY=VALUE",
        help=(
            "override an SLO threshold: error-rate=<fraction> or "
            "p95-latency=<seconds>; repeatable"
        ),
    )
    obs.add_argument(
        "--health-routing", action="store_true",
        help="let least-loaded placement break ties on health score",
    )
    obs.add_argument(
        "--export", default="",
        help="write <prefix>-openmetrics.txt and <prefix>-dashboard.json",
    )
    overload = sub.add_parser(
        "overload",
        help=(
            "run the multi-tenant overload comparison: goodput with and "
            "without the protection plane while one tenant floods"
        ),
    )
    overload.add_argument(
        "experiment", choices=["fig4"],
        help="which workload shape to run (fig4: pooled multi-tenant site)",
    )
    overload.add_argument(
        "--tenants", type=int, default=4,
        help="tenants sharing the pool (tenant 0 goes hot; default 4)",
    )
    overload.add_argument(
        "--seed", type=int, default=7,
        help="workload + fault-plan seed; same seed, same report",
    )
    overload.add_argument(
        "--profile", default="overload",
        choices=["overload", "flaky-endpoint", "walltime", "partition", "none"],
        help="fault profile; 'none' runs the comparison fault-free",
    )
    overload.add_argument(
        "--endpoints", type=int, default=4,
        help="endpoints in the shared pool (default 4)",
    )
    overload.add_argument(
        "--hot-factor", type=float, default=8.0,
        help="hot tenant's offered load as a multiple of fair share",
    )
    overload.add_argument(
        "--export", default="",
        help="write <prefix>-openmetrics.txt from the protected run",
    )
    hedge = sub.add_parser(
        "hedge",
        help=(
            "run the pooled Fig. 4 under the fail-slow profile and "
            "compare tail latency with hedged execution off vs on"
        ),
    )
    hedge.add_argument(
        "experiment", choices=["fig4"],
        help="which workload shape to run (fig4: pooled single-site)",
    )
    hedge.add_argument(
        "--seed", type=int, default=7,
        help="workload + fault-plan seed; same seed, same report",
    )
    hedge.add_argument(
        "--profile", default="fail-slow",
        choices=["fail-slow", "none"],
        help="fault profile; 'none' proves quiescence on a healthy pool",
    )
    hedge.add_argument(
        "--endpoints", type=int, default=3,
        help="pool members at the fail-slow site (default 3)",
    )
    suite = sub.add_parser(
        "suite",
        help="declarative workload suites: list, show, or run a suite file",
    )
    suite_sub = suite.add_subparsers(dest="action", required=True)
    suite_sub.add_parser(
        "list", help="list the committed suite files and their expansions"
    )
    show = suite_sub.add_parser(
        "show", help="expand a suite file and print its test instances"
    )
    run = suite_sub.add_parser(
        "run", help="execute a suite (CI engine, or FaaS sweep with --permute)"
    )
    for p in (show, run):
        p.add_argument(
            "suite",
            help="suite name (fig4), file name (fig4.yaml), or path",
        )
        p.add_argument(
            "--var", action="append", default=None, metavar="K=V",
            help=(
                "override a series variable (K=V or K=a,b,c); repeatable"
            ),
        )
    run.add_argument(
        "--permute", action="store_true",
        help=(
            "run every instance directly through FaaS (no CI engine), "
            "in deterministic expansion order"
        ),
    )
    run.add_argument(
        "--profile", default="",
        help=(
            "chaos fault profile (e.g. flaky-endpoint); with --permute "
            "the sweep arms it, otherwise the chaos harness runs the suite"
        ),
    )
    run.add_argument(
        "--policy", default="pinned",
        help="placement policy for --permute (default pinned)",
    )
    run.add_argument(
        "--seed", type=int, default=7,
        help="fault-plan seed; the same seed replays the same run",
    )
    run.add_argument(
        "--pool-size", type=int, default=1,
        help="endpoints per site for --permute (default 1)",
    )
    run.add_argument(
        "--overload", action="store_true",
        help="sweep under the overload-protection plane (implies --permute)",
    )
    run.add_argument(
        "--hedge", action="store_true",
        help="sweep under hedged execution (implies --permute)",
    )
    run.add_argument(
        "--no-telemetry", action="store_true",
        help="run without tracer/metrics (outputs are identical)",
    )
    return parser


def main(argv: Optional[List[str]] = None) -> int:
    args = build_parser().parse_args(argv)
    return COMMANDS[args.command](args)


if __name__ == "__main__":  # pragma: no cover - exercised via __main__
    sys.exit(main())
