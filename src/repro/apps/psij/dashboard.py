"""The PSI/J public results dashboard.

PSI/J's cron CI publishes per-site test results to a community dashboard
(§6.2). The dashboard records every report with its site, branch, and
virtual timestamp, and renders the status table reviewers consult.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional

from repro.shellsim.suites import TestReport


@dataclass
class DashboardEntry:
    site: str
    branch: str
    time: float
    report: TestReport
    source: str = "cron"  # "cron" | "correct"


class Dashboard:
    """Append-only store of published CI reports."""

    def __init__(self) -> None:
        self._entries: List[DashboardEntry] = []

    def publish(
        self,
        site: str,
        branch: str,
        time: float,
        report: TestReport,
        source: str = "cron",
    ) -> DashboardEntry:
        entry = DashboardEntry(
            site=site, branch=branch, time=time, report=report, source=source
        )
        self._entries.append(entry)
        return entry

    def entries(self, site: Optional[str] = None) -> List[DashboardEntry]:
        return [e for e in self._entries if site is None or e.site == site]

    def latest(self, site: str) -> Optional[DashboardEntry]:
        matching = self.entries(site)
        return matching[-1] if matching else None

    def sites(self) -> List[str]:
        return sorted({e.site for e in self._entries})

    def render(self) -> str:
        """The status table shown on the public web UI."""
        lines = [f"{'site':<12} {'branch':<10} {'time':>10} {'result':<18} source"]
        for entry in self._entries:
            result = f"{entry.report.passed}P/{entry.report.failed}F"
            lines.append(
                f"{entry.site:<12} {entry.branch:<10} {entry.time:>10.0f} "
                f"{result:<18} {entry.source}"
            )
        return "\n".join(lines)
