"""PSI/J: a portable job-submission abstraction over HPC schedulers.

The §6.2 application: PSI/J must be tested *on real scheduler deployments*
(containers do not match site configurations), so its CI has to run at HPC
sites. This package implements the library (job specs, local and SLURM
executors over the simulated scheduler), its CI test suite — including the
upstream codebase error the paper hit (Fig. 5) — the cron-based CI
baseline PSI/J actually uses, and its public results dashboard.
"""

from repro.apps.psij.jobspec import JobSpec, JobStatus, PsiJJob
from repro.apps.psij.executors import (
    JobExecutor,
    LocalJobExecutor,
    SlurmJobExecutor,
    get_executor,
)
from repro.apps.psij.suite import PSIJ_SUITE, repo_files
from repro.apps.psij.cron import CronCI, BranchPolicy
from repro.apps.psij.dashboard import Dashboard

__all__ = [
    "JobSpec",
    "JobStatus",
    "PsiJJob",
    "JobExecutor",
    "LocalJobExecutor",
    "SlurmJobExecutor",
    "get_executor",
    "PSIJ_SUITE",
    "repo_files",
    "CronCI",
    "BranchPolicy",
    "Dashboard",
]
