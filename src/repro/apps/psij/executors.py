"""PSI/J executors: the scheduler abstraction layer itself.

``LocalJobExecutor`` runs specs directly on the current node through the
simulated shell; ``SlurmJobExecutor`` translates specs to batch jobs on
the site's scheduler. :func:`render_batch_attributes` contains the
v0.9.9 defect (reads ``spec.attributes`` instead of
``spec.custom_attributes``) that makes one CI test fail in §6.2 — kept
faithfully, bug and all.
"""

from __future__ import annotations

import abc
from typing import Dict, List

from repro.apps.psij.jobspec import JobSpec, JobStatus, PsiJJob
from repro.errors import SchedulerError
from repro.scheduler.jobs import Job, JobState
from repro.shellsim.session import ShellSession
from repro.sites.site import NodeHandle


class JobExecutor(abc.ABC):
    """Common executor interface (the portability layer)."""

    name = "abstract"

    @abc.abstractmethod
    def submit(self, job: PsiJJob) -> None:
        """Start tracking and launching the job."""

    @abc.abstractmethod
    def wait(self, job: PsiJJob) -> JobStatus:
        """Block (in virtual time) until the job is final."""

    @abc.abstractmethod
    def cancel(self, job: PsiJJob) -> None:
        """Cancel a queued or running job."""


class LocalJobExecutor(JobExecutor):
    """Runs jobs directly on the node (the Anvil login-node mode, §6.2)."""

    name = "local"

    def __init__(self, handle: NodeHandle) -> None:
        self.handle = handle
        self._counter = 0

    def submit(self, job: PsiJJob) -> None:
        self._counter += 1
        job.native_id = f"local-{self._counter}"
        job.mark(JobStatus.ACTIVE)
        shell = ShellSession(self.handle)
        if job.spec.directory:
            shell.run(f"cd {job.spec.directory}")
        self.handle.compute(job.spec.work)
        result = shell.run(job.spec.command_line)
        if job.spec.stdout_path:
            self.handle.fs_write(job.spec.stdout_path, result.stdout)
        if job.spec.stderr_path:
            self.handle.fs_write(job.spec.stderr_path, result.stderr)
        job.exit_code = result.exit_code
        job.mark(JobStatus.COMPLETED if result.ok else JobStatus.FAILED)

    def wait(self, job: PsiJJob) -> JobStatus:
        return job.status  # local jobs complete at submit

    def cancel(self, job: PsiJJob) -> None:
        if not job.status.final:
            job.mark(JobStatus.CANCELED)


class SlurmJobExecutor(JobExecutor):
    """Maps specs to the site batch scheduler."""

    name = "slurm"

    def __init__(self, handle: NodeHandle, partition: str) -> None:
        if not handle.site.has_scheduler:
            raise SchedulerError(
                f"site {handle.site.name} has no batch scheduler"
            )
        self.handle = handle
        self.partition = partition
        self._native: Dict[str, Job] = {}

    def submit(self, job: PsiJJob) -> None:
        scheduler = self.handle.site.scheduler
        assert scheduler is not None
        batch_job = Job(
            user=self.handle.user,
            partition=self.partition,
            num_nodes=job.spec.resources.node_count,
            walltime=max(job.spec.duration, job.spec.work + 10.0),
            duration=job.spec.work,
            name=f"psij-{job.spec.executable}",
        )
        job.native_id = scheduler.submit(batch_job)
        self._native[job.native_id] = batch_job
        job.mark(JobStatus.QUEUED)

    def wait(self, job: PsiJJob) -> JobStatus:
        scheduler = self.handle.site.scheduler
        assert scheduler is not None
        batch_job = scheduler.wait_for(job.native_id)
        mapping = {
            JobState.COMPLETED: JobStatus.COMPLETED,
            JobState.FAILED: JobStatus.FAILED,
            JobState.CANCELLED: JobStatus.CANCELED,
            JobState.TIMEOUT: JobStatus.FAILED,
        }
        job.exit_code = 0 if batch_job.state is JobState.COMPLETED else 1
        job.mark(mapping.get(batch_job.state, JobStatus.FAILED))
        return job.status

    def cancel(self, job: PsiJJob) -> None:
        scheduler = self.handle.site.scheduler
        assert scheduler is not None
        scheduler.cancel(job.native_id)
        job.mark(JobStatus.CANCELED)

    def status(self, job: PsiJJob) -> JobStatus:
        scheduler = self.handle.site.scheduler
        assert scheduler is not None
        state = scheduler.job(job.native_id).state
        if state is JobState.PENDING:
            return JobStatus.QUEUED
        if state is JobState.RUNNING:
            return JobStatus.ACTIVE
        return self.wait(job)


def render_batch_attributes(spec: JobSpec) -> List[str]:
    """Render ``#SBATCH`` directives for a spec's custom attributes.

    **Known v0.9.9 defect:** this reads ``spec.attributes``, but the field
    is ``custom_attributes`` — an ``AttributeError`` at runtime. The CI
    test that exercises batch attributes fails with exactly this error,
    which is the failure CORRECT surfaces in Fig. 5.
    """
    return [
        # BUG: should be custom_attributes
        f"#SBATCH --{key}={value}"
        for key, value in spec.attributes.items()
    ]


def render_batch_attributes_fixed(spec: JobSpec) -> List[str]:
    """The corrected renderer — what upstream's fix looks like.

    Used by the patched test suite variant so chaos experiments can
    reproduce Fig. 5's failing artifact *without* the library bug: the
    identical ``AttributeError`` is injected by the fault layer instead.
    """
    return [
        f"#SBATCH --{key}={value}"
        for key, value in spec.custom_attributes.items()
    ]


def get_executor(name: str, handle: NodeHandle, partition: str = "") -> JobExecutor:
    """Factory: the portability entry point user code calls."""
    if name == "local":
        return LocalJobExecutor(handle)
    if name == "slurm":
        if not partition:
            raise ValueError("slurm executor needs a partition")
        return SlurmJobExecutor(handle, partition)
    raise ValueError(f"unknown executor {name!r} (have: local, slurm)")
