"""PSI/J job specifications and job objects."""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Dict, List, Optional


class JobStatus(enum.Enum):
    NEW = "NEW"
    QUEUED = "QUEUED"
    ACTIVE = "ACTIVE"
    COMPLETED = "COMPLETED"
    FAILED = "FAILED"
    CANCELED = "CANCELED"

    @property
    def final(self) -> bool:
        return self in (JobStatus.COMPLETED, JobStatus.FAILED, JobStatus.CANCELED)


@dataclass
class ResourceSpec:
    """Resources a job needs."""

    node_count: int = 1
    processes_per_node: int = 1

    def __post_init__(self) -> None:
        if self.node_count < 1 or self.processes_per_node < 1:
            raise ValueError("node_count and processes_per_node must be >= 1")


@dataclass
class JobSpec:
    """A portable job description.

    ``custom_attributes`` carries scheduler-specific extras (queue name,
    account). Note the field is named ``custom_attributes`` — the v0.9.9
    batch-script renderer in :mod:`repro.apps.psij.executors` mistakenly
    reads ``spec.attributes``, which is the upstream defect Fig. 5's CI
    run catches.
    """

    executable: str
    arguments: List[str] = field(default_factory=list)
    directory: str = ""
    stdout_path: str = ""
    stderr_path: str = ""
    duration: float = 10.0  # requested walltime-ish, virtual seconds
    work: float = 1.0  # actual payload cost in reference-core seconds
    resources: ResourceSpec = field(default_factory=ResourceSpec)
    custom_attributes: Dict[str, str] = field(default_factory=dict)

    @property
    def command_line(self) -> str:
        parts = [self.executable] + [str(a) for a in self.arguments]
        return " ".join(parts)


@dataclass
class PsiJJob:
    """A job instance tracked by an executor."""

    spec: JobSpec
    status: JobStatus = JobStatus.NEW
    native_id: str = ""
    exit_code: Optional[int] = None

    def mark(self, status: JobStatus) -> None:
        self.status = status
