"""PSI/J's cron-based CI — the baseline CORRECT is compared against (§6.2).

An authenticated user deploys a cron job in their site account. On each
tick it pulls the latest code per the configured branch policy, runs the
test suite, and publishes to the dashboard. The security properties the
paper criticizes are modeled explicitly:

* the cron job pulls code *automatically* — unreviewed pushes to the
  watched branch execute under the deployer's account unless the policy
  requires tagging by a core developer;
* results can be stale by up to one cron interval;
* there is no mapping from the code's author to the account that runs it.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import List, Optional

from repro.apps.psij.dashboard import Dashboard
from repro.errors import ReproError
from repro.hub.service import HubService
from repro.shellsim.session import ShellServices, ShellSession
from repro.shellsim.suites import TestReport
from repro.sites.site import NodeHandle


class BranchPolicy(enum.Enum):
    """Which code the cron job may pull (§6.2's three options)."""

    MAIN_ONLY = "main"
    STABLE_AND_CORE = "stable+core"
    TAGGED_PRS = "tagged-prs"


@dataclass
class CronRun:
    time: float
    branch: str
    sha: str
    report: Optional[TestReport]
    error: str = ""


class CronCI:
    """One site's cron-driven CI deployment for a repository."""

    #: label core developers apply to PR branches approved for HPC testing
    APPROVED_LABEL = "ok-to-test-hpc"

    def __init__(
        self,
        handle: NodeHandle,
        hub: HubService,
        slug: str,
        dashboard: Dashboard,
        policy: BranchPolicy = BranchPolicy.MAIN_ONLY,
        interval: float = 24 * 3600.0,
        conda_env: str = "base",
    ) -> None:
        self.handle = handle
        self.hub = hub
        self.slug = slug
        self.dashboard = dashboard
        self.policy = policy
        self.interval = interval
        self.conda_env = conda_env
        self.runs: List[CronRun] = []
        self.last_tick: Optional[float] = None

        # security properties, probed by the baseline comparison (Table 4
        # and the cron-vs-CORRECT ablation)
        self.maps_author_to_account = False
        self.requires_review_before_execution = (
            policy is BranchPolicy.TAGGED_PRS
        )

    # -- policy ------------------------------------------------------------------
    def branches_to_test(self) -> List[str]:
        hosted = self.hub.repo(self.slug)
        repo = hosted.repository
        if self.policy is BranchPolicy.MAIN_ONLY:
            return [repo.default_branch]
        if self.policy is BranchPolicy.STABLE_AND_CORE:
            return [
                b for b in repo.branches()
                if b in (repo.default_branch, "stable", "core")
            ]
        branches = [repo.default_branch]
        for pr in hosted.pull_requests.values():
            if pr.state == "open" and self.APPROVED_LABEL in pr.labels:
                if pr.source_branch in repo.branches():
                    branches.append(pr.source_branch)
        return branches

    # -- execution ---------------------------------------------------------------
    def tick(self) -> List[CronRun]:
        """One cron firing: pull + test each policy-allowed branch."""
        self.last_tick = self.handle.site.clock.now
        results: List[CronRun] = [
            self._run_branch(branch) for branch in self.branches_to_test()
        ]
        self.runs.extend(results)
        return results

    def _run_branch(self, branch: str) -> CronRun:
        clock = self.handle.site.clock
        shell = ShellSession(
            self.handle, services=ShellServices(hub=self.hub)
        )
        workdir = f"{self.handle.scratch()}/cron-ci"
        shell.run(f"mkdir -p {workdir}")
        repo_dir = f"{workdir}/{self.slug.rsplit('/', 1)[-1]}"
        if self.handle.fs_exists(repo_dir):
            shell.run(f"rm -rf {repo_dir}")
        clone = shell.run(
            f"cd {workdir} && git clone -b {branch} https://github.com/{self.slug}"
        )
        if not clone.ok:
            return CronRun(
                time=clock.now, branch=branch, sha="", report=None,
                error=clone.stderr,
            )
        sha = shell.env.get("GIT_HEAD", "")
        shell.run(f"cd {repo_dir}")
        shell.run(f"conda activate {self.conda_env}")
        result = shell.run("pytest")
        report: Optional[TestReport] = None
        if shell.last_report_path and self.handle.fs_exists(shell.last_report_path):
            report = TestReport.from_json(
                self.handle.fs_read(shell.last_report_path)
            )
            self.dashboard.publish(
                site=self.handle.site.name,
                branch=branch,
                time=clock.now,
                report=report,
                source="cron",
            )
        return CronRun(
            time=clock.now,
            branch=branch,
            sha=sha,
            report=report,
            error="" if result.ok else "test failures",
        )

    # -- staleness ---------------------------------------------------------------
    def staleness(self, now: float) -> float:
        """Seconds since results last reflected the repository."""
        if self.last_tick is None:
            return float("inf")
        return now - self.last_tick

    def worst_case_staleness(self) -> float:
        """A push lands just after a tick: results lag a full interval."""
        return self.interval
