"""The PSI/J CI test suite.

Eight tests exercising both executors against whatever site the suite
lands on. ``test_batch_attributes`` hits the v0.9.9 renderer defect and
fails — the real-codebase error §6.2 reports CORRECT catching. The §6.2
run uses a login-node MEP (LocalProvider), so scheduler-dependent tests
skip gracefully when the login node's site has no scheduler visible to
the test account.
"""

from __future__ import annotations

from typing import Dict

from repro.apps.psij.executors import (
    LocalJobExecutor,
    SlurmJobExecutor,
    get_executor,
    render_batch_attributes,
    render_batch_attributes_fixed,
)
from repro.apps.psij.jobspec import JobSpec, JobStatus, PsiJJob, ResourceSpec
from repro.shellsim.suites import SuiteContext, TestSuite


def _test_version_installed(ctx: SuiteContext) -> None:
    env_name = ctx.env.get("CONDA_DEFAULT_ENV", "base")
    env = ctx.handle.conda().env(env_name)
    assert env.has("psij-python", "0.9.9"), (
        f"psij-python 0.9.9 not installed in {env_name} "
        f"(have {env.freeze()})"
    )


def _test_local_submit(ctx: SuiteContext) -> None:
    executor = LocalJobExecutor(ctx.handle)
    job = PsiJJob(JobSpec(executable="echo", arguments=["psij"], work=0.5))
    executor.submit(job)
    assert executor.wait(job) is JobStatus.COMPLETED
    assert job.exit_code == 0


def _test_local_stdout_capture(ctx: SuiteContext) -> None:
    out_path = f"{ctx.handle.home()}/psij-out.txt" if ctx.handle.fs_isdir(
        ctx.handle.home()
    ) else f"{ctx.handle.scratch()}/psij-out.txt"
    executor = LocalJobExecutor(ctx.handle)
    job = PsiJJob(
        JobSpec(
            executable="echo",
            arguments=["captured", "output"],
            stdout_path=out_path,
            work=0.3,
        )
    )
    executor.submit(job)
    assert ctx.handle.fs_read(out_path) == "captured output"


def _test_failed_job_status(ctx: SuiteContext) -> None:
    executor = LocalJobExecutor(ctx.handle)
    job = PsiJJob(JobSpec(executable="false", work=0.2))
    executor.submit(job)
    assert executor.wait(job) is JobStatus.FAILED
    assert job.exit_code != 0


def _test_executor_factory(ctx: SuiteContext) -> None:
    local = get_executor("local", ctx.handle)
    assert isinstance(local, LocalJobExecutor)
    try:
        get_executor("pbs", ctx.handle)
        raise AssertionError("unknown executor name must raise")
    except ValueError:
        pass


def _test_slurm_roundtrip(ctx: SuiteContext) -> None:
    site = ctx.handle.site
    if not site.has_scheduler:
        return  # cloud VM: nothing to test, matches upstream skip behaviour
    partition = next(iter(site.scheduler._partitions))
    executor = SlurmJobExecutor(ctx.handle, partition)
    job = PsiJJob(
        JobSpec(executable="true", work=2.0, duration=60.0,
                resources=ResourceSpec(node_count=1))
    )
    executor.submit(job)
    assert job.status is JobStatus.QUEUED
    assert executor.wait(job) is JobStatus.COMPLETED


def _test_slurm_cancel(ctx: SuiteContext) -> None:
    site = ctx.handle.site
    if not site.has_scheduler:
        return
    partition = next(iter(site.scheduler._partitions))
    executor = SlurmJobExecutor(ctx.handle, partition)
    job = PsiJJob(JobSpec(executable="true", work=500.0, duration=600.0))
    executor.submit(job)
    executor.cancel(job)
    assert job.status is JobStatus.CANCELED


def _test_batch_attributes(ctx: SuiteContext) -> None:
    # Exercises the v0.9.9 renderer — fails with AttributeError upstream.
    spec = JobSpec(
        executable="true",
        custom_attributes={"partition": "shared", "account": "abc123"},
    )
    directives = render_batch_attributes(spec)
    assert "#SBATCH --partition=shared" in directives


def _test_batch_attributes_fixed(ctx: SuiteContext) -> None:
    # The corrected renderer: what the suite looks like once upstream
    # fixes the attribute name. Used by chaos runs that reproduce the
    # Fig. 5 failure through injection rather than the library defect.
    spec = JobSpec(
        executable="true",
        custom_attributes={"partition": "shared", "account": "abc123"},
    )
    directives = render_batch_attributes_fixed(spec)
    assert "#SBATCH --partition=shared" in directives


def _build_suite(fixed: bool = False) -> TestSuite:
    suite = TestSuite("tests/test_executors.py")
    suite.add("test_version_installed", work=0.3, fn=_test_version_installed)
    suite.add("test_local_submit", work=1.0, fn=_test_local_submit)
    suite.add("test_local_stdout_capture", work=1.2, fn=_test_local_stdout_capture)
    suite.add("test_failed_job_status", work=0.8, fn=_test_failed_job_status)
    suite.add("test_executor_factory", work=0.5, fn=_test_executor_factory)
    suite.add("test_slurm_roundtrip", work=3.0, fn=_test_slurm_roundtrip)
    suite.add("test_slurm_cancel", work=2.0, fn=_test_slurm_cancel)
    suite.add(
        "test_batch_attributes", work=0.6,
        fn=_test_batch_attributes_fixed if fixed else _test_batch_attributes,
    )
    return suite


PSIJ_SUITE = _build_suite()
PSIJ_SUITE_FIXED = _build_suite(fixed=True)


def repo_files(fixed: bool = False) -> Dict[str, str]:
    """Contents of the hosted psij-python repository.

    ``fixed=True`` ships the patched suite (corrected renderer test) —
    the repository as it looks after upstream's fix.
    """
    suite_ref = (
        "repro.apps.psij.suite:PSIJ_SUITE_FIXED"
        if fixed
        else "repro.apps.psij.suite:PSIJ_SUITE"
    )
    return {
        "README.md": (
            "# PSI/J\n\nA portable interface for submitting, monitoring, "
            "and managing jobs across HPC schedulers.\n"
        ),
        "requirements.txt": (
            "psutil>=5.9\npystache>=0.6.0\ntypeguard>=3.0.1\npytest>=7\n"
        ),
        ".repro-suite": suite_ref,
        "tox.ini": (
            "[tox]\nenvlist = py311\n\n[testenv]\ndeps =\n"
            "    psutil>=5.9\n    pystache>=0.6.0\n    typeguard>=3.0.1\n"
            "    pytest>=7\n    psij-python==0.9.9\ncommands = pytest\n"
        ),
        "src/psij/__init__.py": "# psij package\n",
    }
