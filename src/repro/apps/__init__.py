"""The three evaluation applications from the paper's §6.

* :mod:`repro.apps.parsldock` — protein docking with ML-guided candidate
  selection (§6.1, Fig. 4).
* :mod:`repro.apps.psij` — the PSI/J scheduler-portability library, its CI
  suite with the upstream failure, and its cron-based CI baseline
  (§6.2, Fig. 5).
* :mod:`repro.apps.kamping` — the KaMPIng MPI-bindings artifact
  evaluation, including a simulated MPI layer (§6.3).
"""
