"""Receptor/ligand preparation and the docking score function.

The score is a deterministic Vina-flavoured energy: hydrogen-bond,
hydrophobic, and steric terms computed from ligand composition and a
receptor pocket profile, plus a conformer-search term that improves
(decreases) with exhaustiveness. More negative = better binding, like
real Vina output. Determinism is the property §6.1's reproducibility
evaluation relies on.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass
from typing import Dict, List

from repro.apps.parsldock.chemistry import Molecule, parse_smiles

DEFAULT_RECEPTOR_SEQUENCE = (
    "MKTAYIAKQRQISFVKSHFSRQLEERLGLIEVQAPILSRVGDGTQDNLSGAEKAVQVKVKALPDAQ"
)


@dataclass(frozen=True)
class Receptor:
    """A prepared receptor: a pocket profile derived from its sequence."""

    name: str
    sequence: str
    hbond_sites: int
    hydrophobic_sites: int
    pocket_volume: float


@dataclass(frozen=True)
class PreparedLigand:
    """A ligand ready to dock: molecule + rotatable-bond estimate."""

    molecule: Molecule
    rotatable_bonds: int
    donors: int
    acceptors: int


def prepare_receptor(sequence: str = DEFAULT_RECEPTOR_SEQUENCE, name: str = "target") -> Receptor:
    """Derive a pocket profile from a protein sequence (MGLTools stand-in)."""
    if not sequence or any(not c.isalpha() for c in sequence):
        raise ValueError("receptor sequence must be non-empty letters")
    seq = sequence.upper()
    hbond = sum(seq.count(res) for res in "STNQYHKRDE")
    hydrophobic = sum(seq.count(res) for res in "AVLIMFWP")
    volume = 120.0 + 3.5 * len(seq) % 400
    return Receptor(
        name=name,
        sequence=seq,
        hbond_sites=hbond,
        hydrophobic_sites=hydrophobic,
        pocket_volume=float(volume),
    )


def prepare_ligand(smiles: str) -> PreparedLigand:
    """Parse and annotate a ligand (the 'prepare_ligand4' stand-in)."""
    molecule = parse_smiles(smiles)
    donors = sum(1 for a in molecule.atoms if a in ("N", "O")) // 2
    acceptors = sum(1 for a in molecule.atoms if a in ("N", "O", "F"))
    # bonds not in rings and not terminal are (roughly) rotatable
    degree: Dict[int, int] = {}
    for a, b in molecule.bonds:
        degree[a] = degree.get(a, 0) + 1
        degree[b] = degree.get(b, 0) + 1
    rotatable = sum(
        1
        for a, b in molecule.bonds
        if degree.get(a, 0) > 1 and degree.get(b, 0) > 1
    )
    rotatable = max(0, rotatable - 2 * molecule.ring_count)
    return PreparedLigand(
        molecule=molecule,
        rotatable_bonds=rotatable,
        donors=donors,
        acceptors=acceptors,
    )


def _pair_term(ligand: PreparedLigand, receptor: Receptor) -> float:
    """Deterministic ligand-receptor interaction seed in [0, 1)."""
    digest = hashlib.sha256(
        f"{ligand.molecule.smiles}|{receptor.sequence}".encode()
    ).digest()
    return int.from_bytes(digest[:8], "big") / 2**64


def dock(
    ligand: PreparedLigand,
    receptor: Receptor,
    exhaustiveness: int = 8,
) -> float:
    """Docking score in kcal/mol (negative = favourable).

    Monotone properties the tests assert:

    * higher exhaustiveness never yields a *worse* (higher) score;
    * identical inputs yield identical scores;
    * a ligand too large for the pocket is penalized.
    """
    if exhaustiveness < 1:
        raise ValueError("exhaustiveness must be >= 1")
    mol = ligand.molecule
    pair = _pair_term(ligand, receptor)

    hbond = -0.35 * min(ligand.acceptors, receptor.hbond_sites / 4.0)
    hydrophobic = -0.12 * min(
        mol.heavy_atom_count, receptor.hydrophobic_sites / 2.0
    )
    entropy_penalty = 0.25 * ligand.rotatable_bonds
    size_ratio = (mol.heavy_atom_count * 18.0) / receptor.pocket_volume
    steric = 4.0 * max(0.0, size_ratio - 1.0) ** 2
    # conformer search: the best of `exhaustiveness` deterministic poses
    best_pose = min(
        _pose_energy(mol, receptor, pose) for pose in range(exhaustiveness)
    )
    base = hbond + hydrophobic + entropy_penalty + steric + best_pose
    return round(base - 2.0 * pair, 4)


def _pose_energy(mol: Molecule, receptor: Receptor, pose: int) -> float:
    digest = hashlib.sha256(
        f"{mol.smiles}|{receptor.name}|pose{pose}".encode()
    ).digest()
    return -3.0 * (int.from_bytes(digest[:4], "big") / 2**32)


def dock_batch(
    smiles_list: List[str],
    receptor: Receptor,
    exhaustiveness: int = 8,
) -> Dict[str, float]:
    """Dock a batch of SMILES; returns {smiles: score}."""
    return {
        s: dock(prepare_ligand(s), receptor, exhaustiveness=exhaustiveness)
        for s in smiles_list
    }
