"""The ParslDock test suite and repository contents.

Ten test cases spanning three orders of magnitude in cost, mirroring the
mix in Fig. 4: cheap parsing/prep checks dominated by fixed per-process
overhead (where the FaaS/pilot model shines) and expensive docking /
end-to-end runs dominated by compute speed (where Chameleon's faster
cores win).
"""

from __future__ import annotations

from typing import Dict

from repro.apps.parsldock.chemistry import parse_smiles
from repro.apps.parsldock.docking import (
    dock,
    dock_batch,
    prepare_ligand,
    prepare_receptor,
)
from repro.apps.parsldock.ml import SurrogateModel, fingerprint
from repro.apps.parsldock.pipeline import CANDIDATE_SMILES, DockingCampaign
from repro.shellsim.suites import SuiteContext, TestSuite


def _test_smiles_parse(ctx: SuiteContext) -> None:
    mol = parse_smiles("CC(C)Cc1ccccc1")
    assert mol.heavy_atom_count == 10
    assert mol.ring_count == 1


def _test_molecular_weight(ctx: SuiteContext) -> None:
    ethanol = parse_smiles("CCO")
    assert abs(ethanol.molecular_weight - 46.07) < 0.1


def _test_conformer_deterministic(ctx: SuiteContext) -> None:
    a = parse_smiles("CCN").conformer(seed=7)
    b = parse_smiles("CCN").conformer(seed=7)
    assert a == b
    c = parse_smiles("CCN").conformer(seed=8)
    assert a != c


def _test_prepare_ligand(ctx: SuiteContext) -> None:
    ligand = prepare_ligand("CC(N)C(O)O")
    assert ligand.acceptors >= 3
    assert ligand.rotatable_bonds >= 1


def _test_prepare_receptor(ctx: SuiteContext) -> None:
    receptor = prepare_receptor()
    assert receptor.hbond_sites > 0
    assert receptor.pocket_volume > 100


def _test_dock_single(ctx: SuiteContext) -> None:
    receptor = prepare_receptor()
    score = dock(prepare_ligand("c1ccccc1O"), receptor)
    assert score < 0, "favourable ligand must have a negative score"


def _test_dock_exhaustive(ctx: SuiteContext) -> None:
    receptor = prepare_receptor()
    ligand = prepare_ligand("CC(C)Cc1ccccc1")
    quick = dock(ligand, receptor, exhaustiveness=1)
    thorough = dock(ligand, receptor, exhaustiveness=32)
    assert thorough <= quick, "more search cannot find a worse pose"


def _test_scores_reproducible(ctx: SuiteContext) -> None:
    receptor = prepare_receptor()
    batch = dock_batch(CANDIDATE_SMILES[:8], receptor)
    again = dock_batch(CANDIDATE_SMILES[:8], receptor)
    assert batch == again


def _test_ml_surrogate(ctx: SuiteContext) -> None:
    receptor = prepare_receptor()
    train = CANDIDATE_SMILES[:16]
    scores = dock_batch(train, receptor)
    model = SurrogateModel().fit(train, [scores[s] for s in train])
    held_out = CANDIDATE_SMILES[16:]
    ranked = model.rank(held_out)
    assert set(ranked) == set(held_out)
    true_scores = dock_batch(held_out, receptor)
    top_half = ranked[: len(ranked) // 2]
    bottom_half = ranked[len(ranked) // 2:]
    top_mean = sum(true_scores[s] for s in top_half) / len(top_half)
    bottom_mean = sum(true_scores[s] for s in bottom_half) / len(bottom_half)
    assert top_mean <= bottom_mean + 1.0, (
        "surrogate ranking should roughly order true scores"
    )


def _test_pipeline_end_to_end(ctx: SuiteContext) -> None:
    campaign = DockingCampaign(batch_size=4)
    ranked = campaign.run(CANDIDATE_SMILES, rounds=3)
    assert len(ranked) >= 8, "three rounds of four should dock >= 8 ligands"
    best_smiles, best_score = ranked[0]
    assert best_score == min(campaign.scores.values())
    assert best_smiles in CANDIDATE_SMILES


def _build_suite() -> TestSuite:
    suite = TestSuite("tests/test_docking.py")
    suite.add("test_smiles_parse", work=0.4, fn=_test_smiles_parse)
    suite.add("test_molecular_weight", work=0.5, fn=_test_molecular_weight)
    suite.add(
        "test_conformer_deterministic", work=2.0, fn=_test_conformer_deterministic
    )
    suite.add("test_prepare_ligand", work=4.0, fn=_test_prepare_ligand)
    suite.add("test_prepare_receptor", work=7.0, fn=_test_prepare_receptor)
    suite.add("test_dock_single", work=25.0, fn=_test_dock_single)
    suite.add(
        "test_dock_exhaustive", work=110.0, fn=_test_dock_exhaustive, threads=4
    )
    suite.add("test_scores_reproducible", work=45.0, fn=_test_scores_reproducible)
    suite.add("test_ml_surrogate", work=18.0, fn=_test_ml_surrogate)
    suite.add(
        "test_pipeline_end_to_end",
        work=190.0,
        fn=_test_pipeline_end_to_end,
        threads=8,
    )
    return suite


PARSLDOCK_SUITE = _build_suite()


def repo_files() -> Dict[str, str]:
    """Contents of the hosted parsl-docking-tutorial repository."""
    return {
        "README.md": (
            "# ParslDock tutorial\n\nML-guided protein docking. "
            "Run the test suite with `pytest`.\n"
        ),
        "requirements.txt": (
            "parsl>=2024\nautodock-vina==1.2.6\nvmd==1.9.3\nmgltools==1.5.7\n"
            "pytest>=8\n"
        ),
        ".repro-suite": "repro.apps.parsldock.suite:PARSLDOCK_SUITE",
        "tox.ini": (
            "[tox]\nenvlist = py311\n\n[testenv]\ndeps =\n    pytest>=8\n"
            "commands = pytest\n"
        ),
        "docking/__init__.py": "# docking pipeline package\n",
    }
