"""The ML surrogate guiding the docking campaign.

Ridge regression on simple molecular fingerprints, vectorized with numpy
(the fit is one linear solve — no loops over samples). The campaign
trains on already-docked candidates and ranks the rest by predicted
score, docking the most promising next; the test suite checks the
surrogate actually beats random ordering on held-out data.
"""

from __future__ import annotations

from typing import List, Sequence

import numpy as np

from repro.apps.parsldock.chemistry import Molecule, parse_smiles

FINGERPRINT_SIZE = 8


def fingerprint(molecule: Molecule) -> np.ndarray:
    """A fixed-length descriptor: composition + topology features."""
    counts = {symbol: 0 for symbol in ("C", "N", "O", "S", "F")}
    for atom in molecule.atoms:
        if atom in counts:
            counts[atom] += 1
    return np.array(
        [
            molecule.heavy_atom_count,
            molecule.implicit_hydrogens,
            molecule.ring_count,
            counts["C"],
            counts["N"] + counts["O"],
            counts["S"] + counts["F"],
            len(molecule.bonds),
            molecule.molecular_weight / 100.0,
        ],
        dtype=float,
    )


class SurrogateModel:
    """Ridge regression: fingerprints → docking scores."""

    def __init__(self, alpha: float = 1.0) -> None:
        if alpha <= 0:
            raise ValueError("alpha must be positive")
        self.alpha = alpha
        self._weights: np.ndarray | None = None
        self._mean: np.ndarray | None = None
        self._scale: np.ndarray | None = None

    @property
    def is_fitted(self) -> bool:
        return self._weights is not None

    def fit(self, smiles: Sequence[str], scores: Sequence[float]) -> "SurrogateModel":
        if len(smiles) != len(scores):
            raise ValueError("smiles and scores must have equal length")
        if len(smiles) < 2:
            raise ValueError("need at least two training samples")
        X = np.stack([fingerprint(parse_smiles(s)) for s in smiles])
        y = np.asarray(scores, dtype=float)
        self._mean = X.mean(axis=0)
        scale = X.std(axis=0)
        scale[scale == 0] = 1.0
        self._scale = scale
        Xn = (X - self._mean) / self._scale
        Xn = np.hstack([Xn, np.ones((len(Xn), 1))])  # bias column
        n_features = Xn.shape[1]
        ridge = self.alpha * np.eye(n_features)
        ridge[-1, -1] = 0.0  # do not penalize the bias
        self._weights = np.linalg.solve(Xn.T @ Xn + ridge, Xn.T @ y)
        return self

    def predict(self, smiles: Sequence[str]) -> np.ndarray:
        if not self.is_fitted:
            raise RuntimeError("model is not fitted")
        assert self._mean is not None and self._scale is not None
        X = np.stack([fingerprint(parse_smiles(s)) for s in smiles])
        Xn = (X - self._mean) / self._scale
        Xn = np.hstack([Xn, np.ones((len(Xn), 1))])
        return Xn @ self._weights

    def rank(self, smiles: Sequence[str]) -> List[str]:
        """Candidates sorted most-promising (lowest predicted score) first."""
        predictions = self.predict(smiles)
        order = np.argsort(predictions)
        return [smiles[i] for i in order]
