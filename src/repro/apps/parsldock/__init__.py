"""ParslDock: a synthetic but fully-functional protein docking pipeline.

Mirrors the Parsl docking tutorial the paper tests (§6.1): ligand
preparation from SMILES, receptor preparation, a deterministic
physics-flavoured docking score (the AutoDock Vina stand-in), and an
ML surrogate (ridge regression on molecular fingerprints) that guides
which candidates to dock next. Everything is real, deterministic Python —
the test suite asserts on actual behaviour, and per-test durations come
from the site hardware model.
"""

from repro.apps.parsldock.chemistry import Molecule, parse_smiles
from repro.apps.parsldock.docking import (
    Receptor,
    PreparedLigand,
    prepare_ligand,
    prepare_receptor,
    dock,
    DEFAULT_RECEPTOR_SEQUENCE,
)
from repro.apps.parsldock.ml import fingerprint, SurrogateModel
from repro.apps.parsldock.pipeline import DockingCampaign, CANDIDATE_SMILES
from repro.apps.parsldock.suite import PARSLDOCK_SUITE, repo_files

__all__ = [
    "Molecule",
    "parse_smiles",
    "Receptor",
    "PreparedLigand",
    "prepare_ligand",
    "prepare_receptor",
    "dock",
    "DEFAULT_RECEPTOR_SEQUENCE",
    "fingerprint",
    "SurrogateModel",
    "DockingCampaign",
    "CANDIDATE_SMILES",
    "PARSLDOCK_SUITE",
    "repo_files",
]
