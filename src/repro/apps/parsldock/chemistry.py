"""Minimal deterministic chemistry: SMILES parsing and conformers.

This is not RDKit; it is a self-contained model with enough structure for
the docking pipeline to be real code with real invariants: atom counting
from a SMILES subset, molecular weight, and deterministic 3D conformer
generation (same SMILES → same coordinates, the reproducibility property
the test suite checks).
"""

from __future__ import annotations

import hashlib
import math
import re
from dataclasses import dataclass
from typing import Dict, List, Tuple

ATOMIC_WEIGHTS: Dict[str, float] = {
    "C": 12.011,
    "N": 14.007,
    "O": 15.999,
    "S": 32.06,
    "P": 30.974,
    "F": 18.998,
    "Cl": 35.45,
    "Br": 79.904,
    "H": 1.008,
}

# organic-subset SMILES tokens we accept (two-letter halogens first)
_ATOM_RE = re.compile(r"Cl|Br|[CNOSPF]")
_VALENCE: Dict[str, int] = {
    "C": 4, "N": 3, "O": 2, "S": 2, "P": 3, "F": 1, "Cl": 1, "Br": 1,
}


@dataclass(frozen=True)
class Molecule:
    """A parsed molecule: heavy atoms, rings, and implicit hydrogens."""

    smiles: str
    atoms: Tuple[str, ...]
    bonds: Tuple[Tuple[int, int], ...]
    ring_count: int

    @property
    def heavy_atom_count(self) -> int:
        return len(self.atoms)

    @property
    def implicit_hydrogens(self) -> int:
        """Hydrogens implied by unfilled valences."""
        degree = [0] * len(self.atoms)
        for a, b in self.bonds:
            degree[a] += 1
            degree[b] += 1
        return sum(
            max(0, _VALENCE[sym] - deg)
            for sym, deg in zip(self.atoms, degree)
        )

    @property
    def molecular_weight(self) -> float:
        heavy = sum(ATOMIC_WEIGHTS[a] for a in self.atoms)
        return heavy + self.implicit_hydrogens * ATOMIC_WEIGHTS["H"]

    def conformer(self, seed: int = 0) -> List[Tuple[float, float, float]]:
        """Deterministic 3D coordinates: same molecule+seed → same geometry.

        Atoms are placed on a jittered helix whose jitter comes from a
        content hash, so geometry is stable across machines and runs.
        """
        coords: List[Tuple[float, float, float]] = []
        for i, symbol in enumerate(self.atoms):
            digest = hashlib.sha256(
                f"{self.smiles}|{seed}|{i}|{symbol}".encode()
            ).digest()
            jitter = tuple(b / 255.0 - 0.5 for b in digest[:3])
            angle = 2 * math.pi * i / max(4, len(self.atoms))
            coords.append(
                (
                    1.5 * math.cos(angle) + 0.3 * jitter[0],
                    1.5 * math.sin(angle) + 0.3 * jitter[1],
                    0.8 * i / max(1, len(self.atoms)) + 0.3 * jitter[2],
                )
            )
        return coords


def parse_smiles(smiles: str) -> Molecule:
    """Parse an organic-subset SMILES string.

    Supports: atoms C/N/O/S/P/F/Cl/Br, branches ``( )``, ring-closure
    digits, and single/double/triple bond symbols (bond order is ignored
    beyond connectivity). Raises ``ValueError`` on anything else.
    """
    if not smiles:
        raise ValueError("empty SMILES")
    atoms: List[str] = []
    bonds: List[Tuple[int, int]] = []
    branch_stack: List[int] = []
    ring_open: Dict[str, int] = {}
    previous = -1
    ring_count = 0
    i = 0
    while i < len(smiles):
        ch = smiles[i]
        match = _ATOM_RE.match(smiles, i)
        if match:
            atoms.append(match.group(0))
            idx = len(atoms) - 1
            if previous >= 0:
                bonds.append((previous, idx))
            previous = idx
            i = match.end()
            continue
        if ch == "(":
            if previous < 0:
                raise ValueError(f"branch before any atom in {smiles!r}")
            branch_stack.append(previous)
            i += 1
            continue
        if ch == ")":
            if not branch_stack:
                raise ValueError(f"unbalanced ')' in {smiles!r}")
            previous = branch_stack.pop()
            i += 1
            continue
        if ch.isdigit():
            if previous < 0:
                raise ValueError(f"ring digit before any atom in {smiles!r}")
            if ch in ring_open:
                bonds.append((ring_open.pop(ch), previous))
                ring_count += 1
            else:
                ring_open[ch] = previous
            i += 1
            continue
        if ch in "=#-":
            i += 1
            continue
        if ch == "c":  # aromatic carbon, common in drug-like SMILES
            atoms.append("C")
            idx = len(atoms) - 1
            if previous >= 0:
                bonds.append((previous, idx))
            previous = idx
            i += 1
            continue
        if ch in "no":  # aromatic N / O
            atoms.append(ch.upper())
            idx = len(atoms) - 1
            if previous >= 0:
                bonds.append((previous, idx))
            previous = idx
            i += 1
            continue
        raise ValueError(f"unsupported SMILES token {ch!r} in {smiles!r}")
    if branch_stack:
        raise ValueError(f"unbalanced '(' in {smiles!r}")
    if ring_open:
        raise ValueError(f"unclosed ring bond(s) {sorted(ring_open)} in {smiles!r}")
    return Molecule(
        smiles=smiles,
        atoms=tuple(atoms),
        bonds=tuple(bonds),
        ring_count=ring_count,
    )
