"""The ML-guided docking campaign (the ParslDock workflow itself)."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.apps.parsldock.docking import (
    Receptor,
    dock,
    prepare_ligand,
    prepare_receptor,
)
from repro.apps.parsldock.ml import SurrogateModel

# A drug-like candidate library (organic-subset SMILES the parser accepts).
CANDIDATE_SMILES: List[str] = [
    "CCO",
    "CCN",
    "CCC",
    "CC(C)O",
    "CC(N)C(O)O",
    "c1ccccc1",
    "c1ccccc1O",
    "c1ccccc1N",
    "CC(C)Cc1ccccc1",
    "CCOC(C)O",
    "CN(C)CCO",
    "OC(O)c1ccccc1",
    "NC(N)c1ccccc1",
    "CC(O)C(O)CO",
    "c1ccncc1",
    "c1ccoc1",
    "CCSCC",
    "FC(F)c1ccccc1",
    "CCCCCCCC",
    "CC(C)(C)c1ccccc1O",
    "NCCc1ccccc1",
    "OCCOCCO",
    "CC(N)CS",
    "c1ccc2ccccc2c1",
]


@dataclass
class DockingCampaign:
    """Iterative dock → learn → select loop over a candidate library."""

    receptor: Receptor = field(default_factory=prepare_receptor)
    exhaustiveness: int = 8
    batch_size: int = 4
    scores: Dict[str, float] = field(default_factory=dict)

    def dock_batch(self, smiles_batch: List[str]) -> Dict[str, float]:
        """Dock candidates not yet scored; records and returns new scores."""
        new_scores: Dict[str, float] = {}
        for smiles in smiles_batch:
            if smiles in self.scores:
                continue
            score = dock(
                prepare_ligand(smiles),
                self.receptor,
                exhaustiveness=self.exhaustiveness,
            )
            self.scores[smiles] = score
            new_scores[smiles] = score
        return new_scores

    def run(self, library: List[str], rounds: int = 3) -> List[Tuple[str, float]]:
        """Run the campaign; returns candidates ranked by measured score.

        Round 1 docks an arbitrary seed batch; later rounds train the
        surrogate on everything measured so far and dock the candidates it
        ranks most promising.
        """
        if rounds < 1:
            raise ValueError("rounds must be >= 1")
        remaining = [s for s in library if s not in self.scores]
        self.dock_batch(remaining[: self.batch_size])
        for _ in range(rounds - 1):
            remaining = [s for s in library if s not in self.scores]
            if not remaining:
                break
            if len(self.scores) >= 2:
                model = SurrogateModel().fit(
                    list(self.scores), list(self.scores.values())
                )
                remaining = model.rank(remaining)
            self.dock_batch(remaining[: self.batch_size])
        return self.best()

    def best(self, k: Optional[int] = None) -> List[Tuple[str, float]]:
        ranked = sorted(self.scores.items(), key=lambda kv: kv[1])
        return ranked if k is None else ranked[:k]
