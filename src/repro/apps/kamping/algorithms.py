"""Distributed algorithms used by the KaMPIng artifact benchmarks.

Real algorithms over the simulated MPI layer: a sample sort (the AE's
sorting benchmark) and a distributed breadth-first search (the AE's BFS
benchmark). Both verify against sequential references in the artifacts.
"""

from __future__ import annotations

import random
from typing import Dict, List, Sequence, Set

from repro.apps.kamping.mpi import SimMPI


def sample_sort(
    comm: SimMPI, bindings, per_rank: Sequence[Sequence[int]]
) -> List[List[int]]:
    """Distributed sample sort; returns per-rank globally-sorted chunks.

    ``bindings`` must expose ``allgatherv`` and ``alltoall`` (any of the
    three binding layers).
    """
    p = comm.comm_size
    local_sorted = [sorted(chunk) for chunk in per_rank]
    if p == 1:
        return [list(local_sorted[0])]

    # 1. each rank contributes p-1 regular samples
    samples_per_rank: List[List[int]] = []
    for chunk in local_sorted:
        if not chunk:
            samples_per_rank.append([])
            continue
        step = max(1, len(chunk) // p)
        samples_per_rank.append(chunk[step::step][: p - 1])
    all_samples = bindings.allgatherv(samples_per_rank)[0]
    all_samples.sort()

    # 2. choose p-1 splitters from the gathered samples
    if all_samples:
        stride = max(1, len(all_samples) // p)
        splitters = all_samples[stride::stride][: p - 1]
    else:
        splitters = []
    while len(splitters) < p - 1:
        splitters.append(splitters[-1] if splitters else 0)

    # 3. partition each rank's data by splitter bucket, exchange alltoall
    sends: List[List[List[int]]] = []
    for chunk in local_sorted:
        buckets: List[List[int]] = [[] for _ in range(p)]
        for value in chunk:
            bucket = 0
            while bucket < p - 1 and value > splitters[bucket]:
                bucket += 1
            buckets[bucket].append(value)
        sends.append(buckets)
    received = bindings.alltoall(sends)

    # 4. local merge
    return [sorted(v for chunk in received[rank] for v in chunk) for rank in range(p)]


def make_random_graph(nodes: int, degree: int, seed: int = 0) -> Dict[int, List[int]]:
    """A connected undirected graph: a ring plus random chords."""
    if nodes < 2:
        raise ValueError("need at least 2 nodes")
    rng = random.Random(seed)
    adjacency: Dict[int, Set[int]] = {u: set() for u in range(nodes)}
    for u in range(nodes):  # ring guarantees connectivity
        v = (u + 1) % nodes
        adjacency[u].add(v)
        adjacency[v].add(u)
    for _ in range(nodes * max(0, degree - 2) // 2):
        u = rng.randrange(nodes)
        v = rng.randrange(nodes)
        if u != v:
            adjacency[u].add(v)
            adjacency[v].add(u)
    return {u: sorted(vs) for u, vs in adjacency.items()}


def distributed_bfs(
    comm: SimMPI,
    bindings,
    graph: Dict[int, List[int]],
    source: int = 0,
) -> Dict[int, int]:
    """Level-synchronous BFS with the graph partitioned by ``node % p``.

    Each round, ranks expand their local frontier and exchange discovered
    vertices with the owning ranks via alltoall. Returns distances.
    """
    p = comm.comm_size
    owner = lambda node: node % p  # noqa: E731 - tiny partition function
    distances: Dict[int, int] = {source: 0}
    frontiers: List[List[int]] = [
        [source] if owner(source) == rank else [] for rank in range(p)
    ]
    level = 0
    while any(frontiers):
        level += 1
        sends: List[List[List[int]]] = [
            [[] for _ in range(p)] for _ in range(p)
        ]
        for rank in range(p):
            for node in frontiers[rank]:
                for neighbor in graph[node]:
                    sends[rank][owner(neighbor)].append(neighbor)
        received = bindings.alltoall(sends)
        frontiers = []
        for rank in range(p):
            new_frontier: List[int] = []
            for chunk in received[rank]:
                for node in chunk:
                    if node not in distances:
                        distances[node] = level
                        new_frontier.append(node)
            frontiers.append(sorted(set(new_frontier)))
    return distances


def sequential_bfs(graph: Dict[int, List[int]], source: int = 0) -> Dict[int, int]:
    """Reference BFS for verification."""
    distances = {source: 0}
    frontier = [source]
    level = 0
    while frontier:
        level += 1
        next_frontier: List[int] = []
        for node in frontier:
            for neighbor in graph[node]:
                if neighbor not in distances:
                    distances[neighbor] = level
                    next_frontier.append(neighbor)
        frontier = next_frontier
    return distances
