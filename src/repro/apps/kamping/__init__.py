"""KaMPIng artifact evaluation (paper §6.3).

KaMPIng (SC'24 Best Reproducibility Advancement Award) provides
near-zero-overhead C++ MPI bindings. Its artifact evaluation compares the
bindings against plain MPI and a naive serializing wrapper on collective
micro-benchmarks and small applications. We rebuild the whole stack in
Python: a simulated MPI layer with an alpha-beta communication cost model
(:mod:`repro.apps.kamping.mpi`), the three binding layers
(:mod:`repro.apps.kamping.bindings`), and the AE artifact scripts baked
into the published container image (:mod:`repro.apps.kamping.artifacts`)
that CORRECT executes step by step.
"""

from repro.apps.kamping.mpi import SimMPI, CommCost
from repro.apps.kamping.bindings import (
    PlainMPI,
    KampingBindings,
    NaiveSerializingBindings,
)
from repro.apps.kamping.artifacts import (
    kamping_image,
    register_artifact_commands,
    ARTIFACT_COMMANDS,
    KAMPING_IMAGE_REFERENCE,
)

__all__ = [
    "SimMPI",
    "CommCost",
    "PlainMPI",
    "KampingBindings",
    "NaiveSerializingBindings",
    "kamping_image",
    "register_artifact_commands",
    "ARTIFACT_COMMANDS",
    "KAMPING_IMAGE_REFERENCE",
]
