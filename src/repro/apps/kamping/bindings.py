"""Three MPI binding layers: plain, KaMPIng-style, naive serializing.

The KaMPIng paper's claim: ergonomic bindings can compute counts and
displacements for you at (near) zero overhead, while naive wrappers that
serialize element-by-element pay a large per-element cost. We model each
layer's wrapper overhead explicitly so the artifact benchmarks reproduce
the ordering: plain ≈ kamping ≪ naive.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Callable, List, Sequence

from repro.apps.kamping.mpi import SimMPI

# per-call / per-element wrapper costs (seconds); ratios are what matter
_PLAIN_CALL = 1.0e-7
_KAMPING_CALL = 1.5e-7  # small constant: count/displacement computation
_NAIVE_CALL = 5.0e-7
_NAIVE_PER_ELEMENT = 4.0e-8  # serialization of every element


@dataclass
class BindingStats:
    """Accounting of wrapper overhead, separate from wire time."""

    overhead_seconds: float = 0.0
    calls: int = 0

    def charge(self, seconds: float) -> None:
        self.overhead_seconds += seconds
        self.calls += 1


class PlainMPI:
    """Baseline: C-style MPI. The user supplies counts/displacements."""

    name = "plain-mpi"

    def __init__(self, comm: SimMPI) -> None:
        self.comm = comm
        self.stats = BindingStats()

    def allgatherv(
        self,
        per_rank: Sequence[Sequence[Any]],
        counts: Sequence[int],
        displacements: Sequence[int],
    ) -> List[List[Any]]:
        if list(counts) != [len(c) for c in per_rank]:
            raise ValueError("counts do not match data (user error in C!)")
        expected = _exclusive_prefix_sum(counts)
        if list(displacements) != expected:
            raise ValueError("displacements do not match counts")
        self.stats.charge(_PLAIN_CALL)
        return self.comm.allgatherv(per_rank)

    def alltoall(self, per_rank, counts_matrix) -> List[List[List[Any]]]:
        self.stats.charge(_PLAIN_CALL)
        return self.comm.alltoall(per_rank)


class KampingBindings:
    """KaMPIng-style: counts/displacements computed internally, near-free."""

    name = "kamping"

    def __init__(self, comm: SimMPI) -> None:
        self.comm = comm
        self.stats = BindingStats()

    def allgatherv(self, per_rank: Sequence[Sequence[Any]]) -> List[List[Any]]:
        counts = [len(c) for c in per_rank]
        _ = _exclusive_prefix_sum(counts)  # computed for the caller, O(p)
        self.stats.charge(_KAMPING_CALL + 1.0e-9 * len(counts))
        return self.comm.allgatherv(per_rank)

    def alltoall(self, per_rank) -> List[List[List[Any]]]:
        self.stats.charge(_KAMPING_CALL + 1.0e-9 * self.comm.comm_size)
        return self.comm.alltoall(per_rank)

    def allreduce(self, per_rank, op: Callable[[Any, Any], Any]) -> List[Any]:
        self.stats.charge(_KAMPING_CALL)
        return self.comm.allreduce(per_rank, op)


class NaiveSerializingBindings:
    """A boost.mpi-like wrapper that serializes element by element."""

    name = "naive-serializing"

    def __init__(self, comm: SimMPI) -> None:
        self.comm = comm
        self.stats = BindingStats()

    def _serialize_cost(self, per_rank: Sequence[Sequence[Any]]) -> float:
        elements = sum(len(chunk) for chunk in per_rank)
        # serialize on send AND deserialize on receive, at every rank
        return _NAIVE_CALL + 2 * _NAIVE_PER_ELEMENT * elements

    def allgatherv(self, per_rank: Sequence[Sequence[Any]]) -> List[List[Any]]:
        self.stats.charge(self._serialize_cost(per_rank))
        return self.comm.allgatherv(per_rank)

    def alltoall(self, per_rank) -> List[List[List[Any]]]:
        flat = [chunk for sends in per_rank for chunk in sends]
        self.stats.charge(self._serialize_cost(flat))
        return self.comm.alltoall(per_rank)

    def allreduce(self, per_rank, op: Callable[[Any, Any], Any]) -> List[Any]:
        self.stats.charge(self._serialize_cost([[v] for v in per_rank]))
        return self.comm.allreduce(per_rank, op)


def _exclusive_prefix_sum(counts: Sequence[int]) -> List[int]:
    out: List[int] = []
    running = 0
    for count in counts:
        out.append(running)
        running += count
    return out
