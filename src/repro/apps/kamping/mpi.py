"""A simulated MPI layer with a hockney (alpha-beta) cost model.

Collectives operate lockstep on per-rank data: the caller passes a list
of length ``comm_size`` (one entry per rank) and receives per-rank
results, with correctness identical to real MPI semantics. Every call
accumulates modeled communication time:

``t = alpha * ceil(log2(p)) + beta * bytes_moved``

so benchmark artifacts report realistic relative costs while remaining
deterministic. This is the substrate for the KaMPIng binding layers.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Any, Callable, List, Sequence, Tuple

# defaults roughly model an HDR InfiniBand fabric
DEFAULT_ALPHA = 2.0e-6  # per-message latency, seconds
DEFAULT_BETA = 1.0e-8  # per-byte transfer time, seconds (~100 GB/s aggregate)
_ELEMENT_BYTES = 8  # we model 64-bit elements


@dataclass
class CommCost:
    """Accumulated communication accounting."""

    seconds: float = 0.0
    bytes_moved: int = 0
    calls: int = 0

    def charge(self, seconds: float, nbytes: int) -> None:
        self.seconds += seconds
        self.bytes_moved += nbytes
        self.calls += 1


class SimMPI:
    """A communicator over ``comm_size`` simulated ranks."""

    def __init__(
        self,
        comm_size: int,
        alpha: float = DEFAULT_ALPHA,
        beta: float = DEFAULT_BETA,
    ) -> None:
        if comm_size < 1:
            raise ValueError("comm_size must be >= 1")
        self.comm_size = comm_size
        self.alpha = alpha
        self.beta = beta
        self.cost = CommCost()

    # -- cost model -----------------------------------------------------------
    def _charge(self, total_elements: int, rounds: int = 0) -> None:
        rounds = rounds or max(1, math.ceil(math.log2(max(2, self.comm_size))))
        nbytes = total_elements * _ELEMENT_BYTES
        self.cost.charge(self.alpha * rounds + self.beta * nbytes, nbytes)

    def _check(self, per_rank: Sequence[Any]) -> None:
        if len(per_rank) != self.comm_size:
            raise ValueError(
                f"expected {self.comm_size} per-rank entries, got {len(per_rank)}"
            )

    # -- collectives ---------------------------------------------------------
    def barrier(self) -> None:
        self._charge(0)

    def bcast(self, value: Any, root: int = 0) -> List[Any]:
        if not 0 <= root < self.comm_size:
            raise ValueError(f"bad root {root}")
        self._charge(_flat_len(value) * (self.comm_size - 1))
        return [value for _ in range(self.comm_size)]

    def gather(self, per_rank: Sequence[Any], root: int = 0) -> List[Any]:
        """Rank ``root`` receives the list; others receive ``None``."""
        self._check(per_rank)
        self._charge(sum(_flat_len(v) for v in per_rank))
        return [
            list(per_rank) if rank == root else None
            for rank in range(self.comm_size)
        ]

    def scatter(self, values: Sequence[Any], root: int = 0) -> List[Any]:
        self._check(values)
        self._charge(sum(_flat_len(v) for v in values))
        return list(values)

    def allgather(self, per_rank: Sequence[Any]) -> List[List[Any]]:
        self._check(per_rank)
        self._charge(sum(_flat_len(v) for v in per_rank) * 2)
        gathered = list(per_rank)
        return [list(gathered) for _ in range(self.comm_size)]

    def allgatherv(self, per_rank: Sequence[Sequence[Any]]) -> List[List[Any]]:
        """Variable-count allgather: every rank gets the concatenation."""
        self._check(per_rank)
        flat: List[Any] = []
        for chunk in per_rank:
            flat.extend(chunk)
        self._charge(len(flat) * 2)
        return [list(flat) for _ in range(self.comm_size)]

    def alltoall(self, per_rank: Sequence[Sequence[Sequence[Any]]]) -> List[List[List[Any]]]:
        """``per_rank[i][j]`` = data rank i sends to rank j."""
        self._check(per_rank)
        total = 0
        for sends in per_rank:
            if len(sends) != self.comm_size:
                raise ValueError("each rank must provide comm_size send lists")
            total += sum(len(chunk) for chunk in sends)
        self._charge(total, rounds=self.comm_size - 1 if self.comm_size > 1 else 1)
        return [
            [list(per_rank[src][dst]) for src in range(self.comm_size)]
            for dst in range(self.comm_size)
        ]

    def sendrecv(
        self, sends: Sequence[Tuple[int, Any]]
    ) -> List[List[Any]]:
        """Lockstep point-to-point exchange.

        ``sends[i] = (dest, payload)`` is rank *i*'s send; the result is a
        per-rank list of payloads received this step, ordered by source
        rank — matched send/recv semantics without deadlock modeling.
        """
        self._check(sends)
        received: List[List[Any]] = [[] for _ in range(self.comm_size)]
        total = 0
        for source, (dest, payload) in enumerate(sends):
            if not 0 <= dest < self.comm_size:
                raise ValueError(f"rank {source} sends to bad rank {dest}")
            received[dest].append(payload)
            total += _flat_len(payload)
        self._charge(total, rounds=1)
        return received

    def reduce(
        self,
        per_rank: Sequence[Any],
        op: Callable[[Any, Any], Any],
        root: int = 0,
    ) -> List[Any]:
        self._check(per_rank)
        self._charge(sum(_flat_len(v) for v in per_rank))
        accumulator = per_rank[0]
        for value in per_rank[1:]:
            accumulator = op(accumulator, value)
        return [
            accumulator if rank == root else None
            for rank in range(self.comm_size)
        ]

    def allreduce(
        self, per_rank: Sequence[Any], op: Callable[[Any, Any], Any]
    ) -> List[Any]:
        reduced = self.reduce(per_rank, op, root=0)[0]
        self._charge(_flat_len(reduced) * (self.comm_size - 1))
        return [reduced for _ in range(self.comm_size)]


def _flat_len(value: Any) -> int:
    if isinstance(value, (list, tuple)):
        return sum(_flat_len(v) for v in value)
    return 1
