"""The KaMPIng artifact-evaluation scripts and container image.

The real AE ships bash scripts inside
``ghcr.io/kamping-site/kamping-reproducibility``; each script runs one
experiment and prints its result. Here each artifact is a container-baked
command (implemented in Python, registered via
:func:`register_artifact_commands`) that CORRECT invokes as one workflow
step (§6.3). Every artifact verifies correctness against a sequential
reference and checks the paper's headline ordering:
``plain ≈ kamping ≪ naive serializing``.
"""

from __future__ import annotations

from typing import Callable, Dict, List, Tuple

from repro.apps.kamping.algorithms import (
    distributed_bfs,
    make_random_graph,
    sample_sort,
    sequential_bfs,
)
from repro.apps.kamping.bindings import (
    KampingBindings,
    NaiveSerializingBindings,
    PlainMPI,
)
from repro.apps.kamping.mpi import SimMPI
from repro.containers.image import ContainerImage
from repro.shellsim.result import CommandResult

KAMPING_IMAGE_REFERENCE = "ghcr.io/kamping-site/kamping-reproducibility:v1"

# the downscaled AE parameters (Chameleon-suitable, per the AE's README)
_AE_RANKS = 8
_AE_ELEMENTS_PER_RANK = 2000
_AE_GRAPH_NODES = 1200
_AE_GRAPH_DEGREE = 6


def _layers(comm: SimMPI):
    return (
        PlainMPI(comm),
        KampingBindings(comm),
        NaiveSerializingBindings(comm),
    )


def _overhead_table(rows: List[Tuple[str, float, float]]) -> List[str]:
    lines = [f"{'layer':<20} {'wrapper(s)':>12} {'wire(s)':>12}"]
    lines.extend(
        f"{name:<20} {wrapper:>12.6f} {wire:>12.6f}"
        for name, wrapper, wire in rows
    )
    return lines


def ae_unit_tests(session, args: List[str]) -> CommandResult:
    """Artifact 1: KaMPIng unit tests (collective correctness)."""
    session.handle.compute(30.0)
    comm = SimMPI(_AE_RANKS)
    bindings = KampingBindings(comm)
    checks = 0
    per_rank = [[rank * 10 + i for i in range(rank + 1)] for rank in range(_AE_RANKS)]
    gathered = bindings.allgatherv(per_rank)
    expected = [v for chunk in per_rank for v in chunk]
    assert all(result == expected for result in gathered)
    checks += 1
    reduced = bindings.allreduce(list(range(_AE_RANKS)), op=lambda a, b: a + b)
    assert reduced == [sum(range(_AE_RANKS))] * _AE_RANKS
    checks += 1
    sends = [[[src, dst] for dst in range(_AE_RANKS)] for src in range(_AE_RANKS)]
    received = comm.alltoall(sends)
    assert received[3][5] == [5, 3]
    checks += 1
    return CommandResult.success(
        f"[AE] unit tests: {checks} collective checks passed on "
        f"{_AE_RANKS} ranks"
    )


def ae_allgatherv_bench(session, args: List[str]) -> CommandResult:
    """Artifact 2: allgatherv micro-benchmark across binding layers."""
    session.handle.compute(60.0, threads=4)
    rows: List[Tuple[str, float, float]] = []
    reference = None
    for make in (
        lambda c: PlainMPI(c),
        lambda c: KampingBindings(c),
        lambda c: NaiveSerializingBindings(c),
    ):
        comm = SimMPI(_AE_RANKS)
        layer = make(comm)
        per_rank = [
            list(range(rank, rank + _AE_ELEMENTS_PER_RANK))
            for rank in range(_AE_RANKS)
        ]
        for _ in range(10):
            if isinstance(layer, PlainMPI):
                counts = [len(c) for c in per_rank]
                displacements = []
                total = 0
                for count in counts:
                    displacements.append(total)
                    total += count
                result = layer.allgatherv(per_rank, counts, displacements)
            else:
                result = layer.allgatherv(per_rank)
        if reference is None:
            reference = result[0]
        assert result[0] == reference
        rows.append((layer.name, layer.stats.overhead_seconds, comm.cost.seconds))
    plain, kamping, naive = rows
    lines = ["[AE] allgatherv benchmark (10 iterations)"]
    lines.extend(_overhead_table(rows))
    ok = (
        kamping[1] <= 3 * plain[1]  # near-zero overhead vs plain
        and naive[1] >= 10 * kamping[1]  # serializing wrapper loses big
    )
    lines.append(f"[AE] verdict: {'PASS' if ok else 'FAIL'} "
                 "(expected plain ~ kamping << naive)")
    return (
        CommandResult.success("\n".join(lines))
        if ok
        else CommandResult.failure("\n".join(lines), exit_code=1)
    )


def ae_sort_bench(session, args: List[str]) -> CommandResult:
    """Artifact 3: distributed sample sort, verified against sorted()."""
    session.handle.compute(120.0, threads=8)
    import random

    rng = random.Random(42)
    per_rank = [
        [rng.randrange(10**6) for _ in range(_AE_ELEMENTS_PER_RANK)]
        for _ in range(_AE_RANKS)
    ]
    flat_sorted = sorted(v for chunk in per_rank for v in chunk)
    lines = ["[AE] sample sort benchmark"]
    ok = True
    timings: Dict[str, float] = {}
    for make in (lambda c: KampingBindings(c), lambda c: NaiveSerializingBindings(c)):
        comm = SimMPI(_AE_RANKS)
        layer = make(comm)
        chunks = sample_sort(comm, layer, per_rank)
        merged = [v for chunk in chunks for v in chunk]
        if merged != flat_sorted:
            ok = False
            lines.append(f"[AE] {layer.name}: INCORRECT SORT")
        total = layer.stats.overhead_seconds + comm.cost.seconds
        timings[layer.name] = total
        lines.append(
            f"[AE] {layer.name}: total {total:.6f}s "
            f"(wrapper {layer.stats.overhead_seconds:.6f}s)"
        )
    if timings.get("kamping", 0) >= timings.get("naive-serializing", 0):
        ok = False
        lines.append("[AE] expected kamping to beat naive serializing")
    lines.append(f"[AE] verdict: {'PASS' if ok else 'FAIL'}")
    return (
        CommandResult.success("\n".join(lines))
        if ok
        else CommandResult.failure("\n".join(lines), exit_code=1)
    )


def ae_bfs_bench(session, args: List[str]) -> CommandResult:
    """Artifact 4: distributed BFS, verified against sequential BFS."""
    session.handle.compute(90.0, threads=8)
    graph = make_random_graph(_AE_GRAPH_NODES, _AE_GRAPH_DEGREE, seed=7)
    expected = sequential_bfs(graph, source=0)
    comm = SimMPI(_AE_RANKS)
    layer = KampingBindings(comm)
    distances = distributed_bfs(comm, layer, graph, source=0)
    ok = distances == expected
    lines = [
        "[AE] BFS benchmark",
        f"[AE] graph: {_AE_GRAPH_NODES} nodes, reached {len(distances)}",
        f"[AE] max level: {max(distances.values())}",
        f"[AE] comm time: {comm.cost.seconds:.6f}s over {comm.cost.calls} calls",
        f"[AE] verdict: {'PASS' if ok else 'FAIL'}",
    ]
    return (
        CommandResult.success("\n".join(lines))
        if ok
        else CommandResult.failure("\n".join(lines), exit_code=1)
    )


ARTIFACT_COMMANDS: Dict[str, Callable] = {
    "ae-unit-tests": ae_unit_tests,
    "ae-allgatherv-bench": ae_allgatherv_bench,
    "ae-sort-bench": ae_sort_bench,
    "ae-bfs-bench": ae_bfs_bench,
}


def kamping_image() -> ContainerImage:
    """The published reproducibility container."""
    return ContainerImage(
        reference=KAMPING_IMAGE_REFERENCE,
        files=(
            ("/opt/kamping/README.md", "KaMPIng artifact evaluation scripts\n"),
        ),
        commands=tuple(sorted(ARTIFACT_COMMANDS)),
        env=(("KAMPING_AE", "1"),),
        size_mb=850.0,
    )


def register_artifact_commands(target: Dict[str, Callable]) -> None:
    """Install the artifact implementations into an image-command registry
    (a :class:`~repro.world.World`'s ``services.image_commands``)."""
    target.update(ARTIFACT_COMMANDS)
