"""Heartbeat leases: clock-driven endpoint liveness with TTL + renewal.

A :class:`Lease` is a promise that an endpoint was alive at
``renewed_at`` and may be presumed alive until ``renewed_at + ttl``.
The :class:`LeaseRegistry` renews leases passively on task activity
(dispatch and completion both count as heartbeats) and schedules one
cancellable expiry check per lease — no periodic heartbeat events, so an
idle simulation still drains to quiescence and deadlock detection keeps
working. Expiry fires ``on_expire`` exactly once per lease; a recovered
coordinator uses journaled grant/renewal times to decide which endpoints
were already dead at the crash (see ``ReplayIndex.dead_endpoints``).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, List, Optional

from repro.util.clock import EventHandle, SimClock
from repro.util.events import EventLog


@dataclass
class Lease:
    """One endpoint's liveness promise."""

    endpoint_id: str
    ttl: float
    granted_at: float
    renewed_at: float

    @property
    def expires_at(self) -> float:
        return self.renewed_at + self.ttl

    def expired(self, now: float) -> bool:
        return now >= self.expires_at - 1e-9


class LeaseRegistry:
    """Grants, renews, and expires leases against the simulation clock."""

    def __init__(
        self,
        clock: SimClock,
        events: EventLog,
        ttl: float = 3600.0,
        on_expire: Optional[Callable[[str], None]] = None,
    ) -> None:
        if ttl <= 0:
            raise ValueError("lease ttl must be positive")
        self.clock = clock
        self.events = events
        self.ttl = ttl
        self.on_expire = on_expire
        self._leases: Dict[str, Lease] = {}
        self._checks: Dict[str, EventHandle] = {}
        self.expired_ids: List[str] = []

    def lease(self, endpoint_id: str) -> Optional[Lease]:
        return self._leases.get(endpoint_id)

    def active(self, endpoint_id: str) -> bool:
        lease = self._leases.get(endpoint_id)
        return lease is not None and not lease.expired(self.clock.now)

    def grant(self, endpoint_id: str) -> Lease:
        now = self.clock.now
        lease = Lease(
            endpoint_id=endpoint_id, ttl=self.ttl, granted_at=now, renewed_at=now
        )
        self._leases[endpoint_id] = lease
        self.events.emit(
            now, "durability", "lease.granted",
            endpoint=endpoint_id, ttl=self.ttl, expires_at=lease.expires_at,
        )
        self._schedule_check(endpoint_id)
        return lease

    def renew(self, endpoint_id: str) -> Optional[Lease]:
        """Heartbeat: push the expiry out by a full TTL.

        Returns ``None`` for unknown or already-expired leases — a dead
        endpoint must re-register (re-grant), not quietly resurrect.
        """
        lease = self._leases.get(endpoint_id)
        now = self.clock.now
        if lease is None or lease.expired(now):
            return None
        lease.renewed_at = now
        self.events.emit(
            now, "durability", "lease.renewed",
            endpoint=endpoint_id, expires_at=lease.expires_at,
        )
        self._schedule_check(endpoint_id)
        return lease

    # "heartbeat" is the wire-protocol name for the same operation.
    heartbeat = renew

    def revoke(self, endpoint_id: str) -> None:
        """Drop a lease without firing expiry (clean endpoint shutdown)."""
        handle = self._checks.pop(endpoint_id, None)
        if handle is not None:
            handle.cancel()
        self._leases.pop(endpoint_id, None)

    def _schedule_check(self, endpoint_id: str) -> None:
        handle = self._checks.get(endpoint_id)
        if handle is not None:
            handle.cancel()
        lease = self._leases[endpoint_id]
        self._checks[endpoint_id] = self.clock.call_at(
            lease.expires_at, lambda eid=endpoint_id: self._check(eid)
        )

    def _check(self, endpoint_id: str) -> None:
        lease = self._leases.get(endpoint_id)
        if lease is None:
            return
        now = self.clock.now
        if not lease.expired(now):
            # Renewed between scheduling and firing; the renewal already
            # rescheduled, but guard against a stale uncancelled check.
            return
        self._checks.pop(endpoint_id, None)
        self._leases.pop(endpoint_id, None)
        self.expired_ids.append(endpoint_id)
        self.events.emit(
            now, "durability", "lease.expired",
            endpoint=endpoint_id,
            granted_at=lease.granted_at, renewed_at=lease.renewed_at,
        )
        if self.on_expire is not None:
            self.on_expire(endpoint_id)
