"""Recovery: index a crash journal for replay, restore remote side effects.

:class:`ReplayIndex` is the read side of the write-ahead journal — it
verifies the chain and organises records into the questions recovery
asks: which idempotency keys completed successfully (never re-execute
those; replay their recorded results), which were submitted but never
finished (orphans, safe to re-submit), which journaled steps may be
skipped, and which endpoints' leases were already dead at the crash.

Replay substitutes a recorded result for a task body, but the body's
*side effects* on the endpoint filesystem are gone in the fresh world —
a replayed clone leaves no working tree for a later live pytest. The
restorer registry fixes that: functions with remote side effects
register a cheap re-materialisation hook (keyed by function name) that
replay runs before returning the recorded result.
"""

from __future__ import annotations

from typing import Any, Callable, Dict, List, Optional

# function name -> restorer(fctx, recorded_result, *args, **kwargs)
_RESTORERS: Dict[str, Callable[..., None]] = {}


def register_restorer(function_name: str, restorer: Callable[..., None]) -> None:
    """Register the replay-time side-effect restorer for a remote function."""
    _RESTORERS[function_name] = restorer


def restorer_for(function_name: str) -> Optional[Callable[..., None]]:
    return _RESTORERS.get(function_name)


class ReplayIndex:
    """A verified journal, indexed by what recovery needs to know."""

    def __init__(self, journal: Any) -> None:
        self.records = journal.replay()  # verifies the hash chain
        self.head_hash = journal.head_hash
        self.crash_record = len(self.records)
        self.crash_time = self.records[-1].time if self.records else 0.0
        # idempotency key -> journaled data (first submit / terminal completion)
        self.submitted: Dict[str, Dict[str, Any]] = {}
        self.completed: Dict[str, Dict[str, Any]] = {}
        self._lease_expiry: Dict[str, float] = {}
        self._lease_dead: set = set()
        for record in self.records:
            kind, data = record.kind, record.data
            key = data.get("key", "")
            if kind == "task.submitted" and key:
                self.submitted.setdefault(key, dict(data))
            elif kind == "task.completed" and key:
                self.completed[key] = dict(data)
            elif kind in ("lease.granted", "lease.renewed"):
                endpoint = data.get("endpoint", "")
                self._lease_expiry[endpoint] = float(data.get("expires_at", 0.0))
                self._lease_dead.discard(endpoint)
            elif kind == "lease.expired":
                self._lease_dead.add(data.get("endpoint", ""))

    def completed_success(self) -> Dict[str, Dict[str, Any]]:
        """Keys whose tasks finished SUCCESS — replayable, never re-run."""
        return {
            key: data
            for key, data in self.completed.items()
            if data.get("state") == "SUCCESS"
        }

    def replay_record(self, key: str) -> Optional[Dict[str, Any]]:
        """The journaled completion to replay for ``key``, if any.

        Only SUCCESS completions replay; a journaled FAILED task simply
        re-executes live (its failure may have been transient).
        """
        data = self.completed.get(key)
        if data is not None and data.get("state") == "SUCCESS":
            return data
        return None

    def orphans(self) -> Dict[str, Dict[str, Any]]:
        """Submitted-but-never-terminal keys, in journal order — the
        in-flight work a crashed coordinator owes its users."""
        return {
            key: data
            for key, data in self.submitted.items()
            if key not in self.completed
        }

    def dead_endpoints(self) -> List[str]:
        """Endpoints whose leases had expired (or fired expiry) by the
        crash — recovery marks these offline before re-dispatching."""
        dead = set(self._lease_dead)
        for endpoint, expires_at in self._lease_expiry.items():
            if endpoint not in dead and self.crash_time >= expires_at - 1e-9:
                dead.add(endpoint)
        return sorted(dead)

    def summary(self) -> Dict[str, int]:
        return {
            "records": self.crash_record,
            "completed": len(self.completed),
            "completed_success": len(self.completed_success()),
            "orphans": len(self.orphans()),
            "dead_endpoints": len(self.dead_endpoints()),
        }
