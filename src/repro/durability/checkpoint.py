"""RunCheckpointer: journals every lifecycle transition from the EventLog.

The checkpointer is a plain event subscriber — nothing in the engine or
FaaS hot path calls it directly, so an unjournaled world behaves (and
times) identically. It journals a fixed whitelist of event kinds on the
submit → dispatch → execute → result path, enriching task events with the
idempotency key, serialized result, and measured body cost straight from
the live :class:`~repro.faas.task.Task` (events themselves stay lean).

``fault/*`` events are deliberately *excluded* from the whitelist:
arming a crash plan emits fault events, and journaling them would shift
journal offsets between the baseline run and the crash run, making
"crash after record N" mean different things in each.

The checkpointer is also the crash point: :meth:`arm_crash` makes the
append of record N raise :class:`~repro.errors.CoordinatorCrashed`, a
``BaseException`` that unwinds the whole run — everything journaled up
to and including record N survives; nothing after it exists.
"""

from __future__ import annotations

from typing import Any, Dict, Optional

from repro.errors import CoordinatorCrashed
from repro.util.events import Event, EventLog
from repro.util.serialization import serialize, serialize_call

# Task-lifecycle kinds enriched with the idempotency key.
_TASK_KINDS = {
    "task.submitted",
    "task.dispatched",
    "task.retry",
    "task.failover",
    "task.timeout",
    "task.gave_up",
    "task.replayed",
    "task.completed",
}

# Kinds journaled verbatim (event data is already plain and complete).
# SLO alert transitions ride along so a replayed run's journal carries
# the same alert timeline as the crashed one (worlds that never enable
# observability emit none, keeping their crash offsets unchanged).
_PLAIN_KINDS = {
    "run.created",
    "run.resumed",
    "job.finished",
    "step.started",
    "step.finished",
    "step.replayed",
    "block.provisioned",
    "block.released",
    "endpoint.registered",
    "alert.fired",
    "alert.resolved",
}


class RunCheckpointer:
    """Subscribes to the event log and appends to the journal."""

    def __init__(
        self,
        journal: Any,
        events: EventLog,
        faas: Optional[Any] = None,
        catch_up: bool = True,
    ) -> None:
        self.journal = journal
        self.events = events
        self.faas = faas
        self.crashed = False
        self._crash_at: Optional[int] = None
        if catch_up:
            # Late attachment must not lose history already emitted
            # (endpoint registrations, provisioning) — replay it first.
            events.replay_to(self.on_event)
        self._unsubscribe = events.subscribe(self.on_event)

    def close(self) -> None:
        if self._unsubscribe is not None:
            self._unsubscribe()
            self._unsubscribe = None
        # A batched journal buffers store writes; closing the run is a
        # durability boundary, so drain whatever is pending.
        flush = getattr(self.journal, "flush", None)
        if flush is not None:
            flush()

    def arm_crash(self, at_record: int) -> None:
        """Die the moment journal record ``at_record`` (1-based) lands."""
        if at_record < 1:
            raise ValueError("crash point must be a positive record count")
        self._crash_at = at_record

    # -- the one subscriber --------------------------------------------------
    def on_event(self, event: Event) -> None:
        if self.crashed:
            return
        kind = event.kind
        data: Optional[Dict[str, Any]] = None
        if kind in _TASK_KINDS:
            data = self._task_data(event, terminal=(kind == "task.completed"))
        elif (
            kind in _PLAIN_KINDS
            or kind.startswith("breaker.")
            or kind.startswith("lease.")
        ):
            data = dict(event.data)
        if data is None:
            return
        self.journal.append(kind, event.time, data)
        if self._crash_at is not None and len(self.journal) >= self._crash_at:
            self.crashed = True
            raise CoordinatorCrashed(
                f"coordinator crashed after journal record {len(self.journal)}",
                at_record=len(self.journal),
            )

    def _task_data(self, event: Event, terminal: bool) -> Dict[str, Any]:
        data = dict(event.data)
        task = None
        if self.faas is not None:
            task = self.faas._tasks.get(data.get("task_id", ""))
        if task is None:
            return data
        data["key"] = task.idempotency_key
        if event.kind == "task.submitted":
            # Enough to re-submit an orphan after recovery.
            data["function_id"] = task.function_id
            data["payload"] = serialize_call(task.args, task.kwargs)
        if terminal:
            state = getattr(task.state, "value", str(task.state))
            data["result"] = serialize(task.result) if state == "SUCCESS" else ""
            data["body_elapsed"] = task.body_elapsed
            data["attempts"] = task.attempts
            data["replayed"] = task.replayed
            data["submitted_at"] = task.submitted_at
            data["started_at"] = task.started_at
            data["completed_at"] = task.completed_at
            data["exception"] = task.exception_text or ""
        return data
