"""Durability: write-ahead journal, checkpoint/resume, heartbeat leases.

The reproducibility claim, applied to the harness itself: a run that
dies halfway must *resume* — replaying journaled work instead of redoing
it — and produce byte-identical outputs to a run that never crashed.

* :mod:`~repro.durability.journal` — hash-chained append/replay records
  over in-memory or JSONL stores, plus the :func:`task_key` idempotency
  scheme.
* :mod:`~repro.durability.checkpoint` — the EventLog subscriber that
  journals every lifecycle transition (and hosts the crash point).
* :mod:`~repro.durability.recovery` — the journal's read side: replay
  index, orphan detection, dead-lease detection, restorer registry.
* :mod:`~repro.durability.lease` — TTL liveness leases renewed by task
  activity.
"""

from repro.durability.checkpoint import RunCheckpointer
from repro.durability.journal import (
    GENESIS_HASH,
    Journal,
    JournalRecord,
    JsonlJournalStore,
    MemoryJournalStore,
    record_hash,
    task_key,
)
from repro.durability.lease import Lease, LeaseRegistry
from repro.durability.recovery import ReplayIndex, register_restorer, restorer_for
from repro.errors import CoordinatorCrashed, JournalCorrupt

__all__ = [
    "GENESIS_HASH",
    "Journal",
    "JournalRecord",
    "JournalCorrupt",
    "JsonlJournalStore",
    "MemoryJournalStore",
    "record_hash",
    "task_key",
    "Lease",
    "LeaseRegistry",
    "RunCheckpointer",
    "ReplayIndex",
    "register_restorer",
    "restorer_for",
    "CoordinatorCrashed",
]
