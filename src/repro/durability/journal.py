"""The write-ahead journal: hash-chained records over a pluggable store.

A :class:`Journal` is an append-only sequence of :class:`JournalRecord`
entries. Each record carries a SHA-256 over its own canonicalized content
*and* the previous record's hash, so any tampering, truncation inside a
record, or bit-rot breaks the chain and :meth:`Journal.verify` raises
:class:`~repro.errors.JournalCorrupt` before recovery can replay garbage
(truncating whole records from the tail — what a crash actually does —
leaves a shorter but still valid chain).

Two stores ship: :class:`MemoryJournalStore` for tests and crash-point
experiments, :class:`JsonlJournalStore` persisting one JSON object per
line so a journal survives the (simulated) coordinator process.

Also home to :func:`task_key`, the idempotency key the FaaS layer stamps
on every task: SHA-256 over the function *name*, the canonical payload,
and a per-payload occurrence counter. Deliberately endpoint-independent —
a task failed over to another endpoint keeps its key, so recovery still
recognises its journaled completion.
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import asdict, dataclass
from typing import Any, Dict, List, Optional

from repro.errors import JournalCorrupt
from repro.util.serialization import serialize

GENESIS_HASH = "0" * 64


@dataclass(frozen=True)
class JournalRecord:
    """One journaled state transition.

    ``data`` is canonical plain-JSON (no tuples/bytes — richer values are
    stored pre-serialized as strings by the checkpointer), so a record
    hashes and round-trips identically in memory and on disk.
    """

    seq: int
    time: float
    kind: str
    data: Dict[str, Any]
    prev_hash: str
    hash: str


def record_hash(
    seq: int, time: float, kind: str, data: Dict[str, Any], prev_hash: str
) -> str:
    """Chained content hash: covers the record *and* its predecessor."""
    payload = serialize(
        {"seq": seq, "time": time, "kind": kind, "data": data, "prev": prev_hash}
    )
    return hashlib.sha256(payload.encode("utf-8")).hexdigest()


def task_key(
    function_name: str, args: tuple, kwargs: dict, occurrence: int = 0
) -> str:
    """Idempotency key for one logical task submission.

    ``occurrence`` disambiguates deliberate re-submissions of an identical
    payload within a run (the Nth identical submit is a distinct logical
    task; a *retry* of the same task is not).
    """
    payload = serialize({"args": list(args), "kwargs": dict(kwargs)})
    return task_key_for_payload(function_name, payload, occurrence)


def task_key_for_payload(
    function_name: str, payload: str, occurrence: int = 0
) -> str:
    """:func:`task_key` for a payload already in canonical form.

    The submit path serializes the payload once anyway (for the size
    limit); this variant lets it reuse that string instead of
    re-canonicalizing per key.
    """
    material = "\x1f".join([function_name, payload, str(occurrence)])
    return hashlib.sha256(material.encode("utf-8")).hexdigest()


class MemoryJournalStore:
    """In-memory backing store (crash experiments hand the live journal
    of the dead world straight to the resumed one)."""

    def __init__(self, entries: Optional[List[Dict[str, Any]]] = None) -> None:
        self._entries: List[Dict[str, Any]] = [dict(e) for e in entries or []]

    def append(self, entry: Dict[str, Any]) -> None:
        self._entries.append(dict(entry))

    def append_many(self, entries: List[Dict[str, Any]]) -> None:
        self._entries.extend(dict(e) for e in entries)

    def load(self) -> List[Dict[str, Any]]:
        return [dict(e) for e in self._entries]


class JsonlJournalStore:
    """On-disk backing store: one JSON object per line, fsync-free but
    opened/closed per append so every record is durable at crash time."""

    def __init__(self, path: str) -> None:
        self.path = path

    def append(self, entry: Dict[str, Any]) -> None:
        with open(self.path, "a", encoding="utf-8") as fh:
            fh.write(json.dumps(entry, sort_keys=True) + "\n")

    def append_many(self, entries: List[Dict[str, Any]]) -> None:
        # One open/close per batch instead of per record; the bytes
        # written are identical to N sequential append() calls.
        with open(self.path, "a", encoding="utf-8") as fh:
            fh.writelines(
                json.dumps(entry, sort_keys=True) + "\n" for entry in entries
            )

    def load(self) -> List[Dict[str, Any]]:
        try:
            with open(self.path, "r", encoding="utf-8") as fh:
                lines = [line for line in fh if line.strip()]
        except FileNotFoundError:
            return []
        return [json.loads(line) for line in lines]


class Journal:
    """Append/replay over a pluggable store, verified on load and demand.

    ``batch_size`` buffers store writes: with ``batch_size=N`` (N > 1),
    appended records reach the backing store in batches of N — via one
    ``append_many`` call — or at an explicit :meth:`flush`. The in-memory
    hash chain is *always* per-record (``len()``, ``truncated()``, and
    crash offsets are batching-independent), and the store bytes after a
    flush are identical to the unbatched ones; only the store-write
    granularity changes. The flush boundary is the durability boundary:
    a crash between flushes loses at most the unflushed tail, which is
    exactly the "truncate whole records from the tail" failure the chain
    already tolerates. Default (0 or 1) writes through per record, the
    historical behavior.
    """

    def __init__(self, store: Optional[Any] = None, batch_size: int = 0) -> None:
        if batch_size < 0:
            raise ValueError("batch_size must be >= 0")
        self.store = store if store is not None else MemoryJournalStore()
        self.batch_size = batch_size
        self._pending: List[Dict[str, Any]] = []
        self._records: List[JournalRecord] = [
            JournalRecord(**entry) for entry in self.store.load()
        ]
        if self._records:
            self.verify()

    @classmethod
    def open(cls, path: str) -> "Journal":
        return cls(JsonlJournalStore(path))

    @property
    def head_hash(self) -> str:
        return self._records[-1].hash if self._records else GENESIS_HASH

    @property
    def records(self) -> List[JournalRecord]:
        return list(self._records)

    def __len__(self) -> int:
        return len(self._records)

    def append(self, kind: str, time: float, data: Dict[str, Any]) -> JournalRecord:
        # Canonicalize to plain JSON so hashing and disk round-trips agree.
        clean = json.loads(serialize(dict(data)))
        seq = len(self._records)
        prev = self.head_hash
        record = JournalRecord(
            seq=seq,
            time=time,
            kind=kind,
            data=clean,
            prev_hash=prev,
            hash=record_hash(seq, time, kind, clean, prev),
        )
        self._records.append(record)
        if self.batch_size > 1:
            self._pending.append(asdict(record))
            if len(self._pending) >= self.batch_size:
                self.flush()
        else:
            self.store.append(asdict(record))
        return record

    def flush(self) -> int:
        """Push buffered records to the store; returns how many moved.

        Idempotent and cheap when nothing is pending — callers at run
        boundaries (checkpointer close, experiment teardown) flush
        unconditionally.
        """
        pending = self._pending
        if not pending:
            return 0
        self._pending = []
        append_many = getattr(self.store, "append_many", None)
        if append_many is not None:
            append_many(pending)
        else:  # third-party store without batch support
            for entry in pending:
                self.store.append(entry)
        return len(pending)

    @property
    def pending_store_writes(self) -> int:
        """Records appended but not yet flushed to the backing store."""
        return len(self._pending)

    def verify(self) -> None:
        """Walk the chain; raise :class:`JournalCorrupt` on any break."""
        prev = GENESIS_HASH
        for index, record in enumerate(self._records):
            if record.seq != index:
                raise JournalCorrupt(
                    f"journal record {index}: sequence says {record.seq}"
                )
            if record.prev_hash != prev:
                raise JournalCorrupt(
                    f"journal record {index}: chain broken "
                    f"(prev {record.prev_hash[:12]} != {prev[:12]})"
                )
            expected = record_hash(
                record.seq, record.time, record.kind, record.data, record.prev_hash
            )
            if record.hash != expected:
                raise JournalCorrupt(
                    f"journal record {index} ({record.kind}): content hash "
                    "mismatch — record was modified after being written"
                )
            prev = record.hash

    def replay(self) -> List[JournalRecord]:
        """Verified records, oldest first — the only safe read for recovery."""
        self.verify()
        return self.records

    def truncated(self, count: int) -> "Journal":
        """An in-memory journal holding only the first ``count`` records —
        what survives a crash that struck after record ``count``."""
        entries = [asdict(r) for r in self._records[:count]]
        return Journal(MemoryJournalStore(entries))
