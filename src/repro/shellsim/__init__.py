"""A miniature shell for simulated sites.

CORRECT's ``shell_cmd`` input ultimately runs a command line on a remote
node. :class:`ShellSession` interprets that command line against a
:class:`~repro.sites.site.NodeHandle`: builtin commands (``git``, ``pip``,
``conda``, ``pytest``, ``tox``, ``apptainer``...) operate on the simulated
filesystem, package index, and hub, charge realistic virtual time, and
produce stdout/stderr/exit codes that flow back to the GitHub runner.

Test suites are real Python: a repository carries a ``.repro-suite``
manifest naming a ``module:attribute`` that resolves to a
:class:`~repro.shellsim.suites.TestSuite`; the ``pytest`` command imports
and executes it, so pass/fail is decided by actual application code while
per-test durations come from the site's hardware model.
"""

from repro.shellsim.result import CommandResult
from repro.shellsim.session import ShellSession, ShellServices
from repro.shellsim.suites import TestCase, TestSuite, TestReport, TestOutcome

__all__ = [
    "CommandResult",
    "ShellSession",
    "ShellServices",
    "TestCase",
    "TestSuite",
    "TestReport",
    "TestOutcome",
]
