"""Builtin shell commands.

Two tiers:

* ``CORE_COMMANDS`` — always on PATH (coreutils, ``git``, ``conda``,
  ``pip``, ``module``, ``apptainer``).
* ``GATED_COMMANDS`` — must be provided by the active conda environment or
  the running container image (``pytest``, ``tox``): CI recipes must
  install their tooling first, exactly like on a real site.

Each command is ``(session, args) -> CommandResult`` and charges virtual
time through the session's node handle where the real operation would cost
time (clones, package downloads, test execution).
"""

from __future__ import annotations

from typing import Callable, Dict, List

from repro.errors import (
    FileSystemError,
    ImageNotFound,
    NetworkBlocked,
    PrivilegeError,
    ReproError,
    ShellError,
)
from repro.shellsim.result import CommandResult
from repro.shellsim.suites import (
    TestReport,
    format_pytest_output,
    load_suite,
    SuiteContext,
)

CommandFn = Callable[["ShellSession", List[str]], CommandResult]  # noqa: F821

REPORT_FILENAME = ".report.json"
SUITE_MANIFEST = ".repro-suite"


# ---------------------------------------------------------------------------
# coreutils
# ---------------------------------------------------------------------------


def cmd_echo(session, args: List[str]) -> CommandResult:
    return CommandResult.success(" ".join(args))


def cmd_true(session, args: List[str]) -> CommandResult:
    return CommandResult.success()


def cmd_false(session, args: List[str]) -> CommandResult:
    return CommandResult.failure("", exit_code=1)


def cmd_pwd(session, args: List[str]) -> CommandResult:
    return CommandResult.success(session.cwd)


def cmd_cd(session, args: List[str]) -> CommandResult:
    target = session.resolve_path(args[0]) if args else session.env.get("HOME", "/")
    if not session.handle.fs_isdir(target):
        return CommandResult.failure(f"cd: {target}: No such directory")
    session.cwd = target
    return CommandResult.success()


def cmd_ls(session, args: List[str]) -> CommandResult:
    target = session.resolve_path(args[0]) if args else session.cwd
    try:
        entries = session.handle.fs_listdir(target)
    except FileSystemError as exc:
        return CommandResult.failure(f"ls: {exc}", exit_code=2)
    return CommandResult.success("\n".join(entries))


def cmd_cat(session, args: List[str]) -> CommandResult:
    if not args:
        return CommandResult.failure("cat: missing operand")
    out = []
    for arg in args:
        path = session.resolve_path(arg)
        try:
            out.append(session.handle.fs_read(path))
        except FileSystemError:
            return CommandResult.failure(
                f"cat: {arg}: No such file or directory"
            )
    return CommandResult.success("\n".join(out))


def cmd_mkdir(session, args: List[str]) -> CommandResult:
    paths = [a for a in args if not a.startswith("-")]
    if not paths:
        return CommandResult.failure("mkdir: missing operand")
    for path in paths:
        try:
            session.handle.fs_mkdir(session.resolve_path(path))
        except FileSystemError as exc:
            return CommandResult.failure(f"mkdir: {exc}")
    return CommandResult.success()


def cmd_rm(session, args: List[str]) -> CommandResult:
    recursive = any(a in ("-r", "-rf", "-fr") for a in args)
    paths = [a for a in args if not a.startswith("-")]
    if not paths:
        return CommandResult.failure("rm: missing operand")
    for path in paths:
        try:
            session.handle.fs_remove(session.resolve_path(path), recursive=recursive)
        except FileSystemError as exc:
            return CommandResult.failure(f"rm: {exc}")
    return CommandResult.success()


def cmd_hostname(session, args: List[str]) -> CommandResult:
    return CommandResult.success(session.handle.node.name)


def cmd_whoami(session, args: List[str]) -> CommandResult:
    return CommandResult.success(session.handle.user)


def cmd_env(session, args: List[str]) -> CommandResult:
    lines = [f"{k}={v}" for k, v in sorted(session.env.items())]
    return CommandResult.success("\n".join(lines))


def cmd_export(session, args: List[str]) -> CommandResult:
    for arg in args:
        if "=" not in arg:
            return CommandResult.failure(f"export: bad assignment {arg!r}")
        key, value = arg.split("=", 1)
        session.env[key] = value
    return CommandResult.success()


def cmd_sleep(session, args: List[str]) -> CommandResult:
    if not args:
        return CommandResult.failure("sleep: missing operand")
    try:
        seconds = float(args[0])
    except ValueError:
        return CommandResult.failure(f"sleep: invalid time {args[0]!r}")
    session.handle.site.clock.advance(seconds)
    return CommandResult.success()


def cmd_uname(session, args: List[str]) -> CommandResult:
    node = session.handle.node
    return CommandResult.success(
        f"Linux {node.name} ({node.cores} cores, {node.memory_gb:.0f} GB, "
        f"class={node.node_class}, site={session.handle.site.name})"
    )


def cmd_module(session, args: List[str]) -> CommandResult:
    """HPC environment modules — tracked but inert."""
    if args and args[0] == "load":
        loaded = session.env.get("LOADEDMODULES", "")
        mods = [m for m in loaded.split(":") if m] + args[1:]
        session.env["LOADEDMODULES"] = ":".join(mods)
        return CommandResult.success()
    if args and args[0] == "list":
        return CommandResult.success(session.env.get("LOADEDMODULES", ""))
    return CommandResult.failure(f"module: unsupported: {' '.join(args)}")


# ---------------------------------------------------------------------------
# git
# ---------------------------------------------------------------------------


def _repo_slug_from_url(url: str) -> str:
    for prefix in ("https://github.com/", "http://github.com/", "hub://", "git@github.com:"):
        if url.startswith(prefix):
            slug = url[len(prefix):]
            break
    else:
        raise ShellError(f"unrecognized repository URL {url!r}")
    if slug.endswith(".git"):
        slug = slug[:-4]
    return slug.strip("/")


def cmd_git(session, args: List[str]) -> CommandResult:
    if not args:
        return CommandResult.failure("git: usage: git <command>")
    sub, rest = args[0], args[1:]
    if sub == "clone":
        return _git_clone(session, rest)
    if sub == "rev-parse":
        head = session.env.get("GIT_HEAD", "")
        if head:
            return CommandResult.success(head)
        return CommandResult.failure("git: not a repository")
    return CommandResult.failure(f"git: unsupported subcommand {sub!r}")


def _git_clone(session, args: List[str]) -> CommandResult:
    branch = None
    positional: List[str] = []
    i = 0
    while i < len(args):
        if args[i] in ("-b", "--branch"):
            if i + 1 >= len(args):
                return CommandResult.failure("git clone: missing branch name")
            branch = args[i + 1]
            i += 2
            continue
        if args[i] == "--depth":
            i += 2
            continue
        positional.append(args[i])
        i += 1
    if not positional:
        return CommandResult.failure("git clone: missing repository URL")
    url = positional[0]
    hub = session.services.hub
    if hub is None:
        return CommandResult.failure("git clone: no network route to hub")
    try:
        session.handle.check_outbound("git clone")
    except NetworkBlocked as exc:
        return CommandResult.failure(f"git clone: {exc}", exit_code=128)
    try:
        slug = _repo_slug_from_url(url)
        hosted = hub.repo(slug)
    except ReproError as exc:
        return CommandResult.failure(f"git clone: {exc}", exit_code=128)
    repo = hosted.repository
    ref = branch or repo.default_branch
    try:
        files = repo.files_at(ref)
        head = repo.resolve(ref)
    except ReproError as exc:
        return CommandResult.failure(f"git clone: {exc}", exit_code=128)
    dest_name = (
        positional[1] if len(positional) > 1 else slug.rsplit("/", 1)[-1]
    )
    dest = session.resolve_path(dest_name)
    if session.handle.fs_exists(dest) and session.handle.fs_listdir(dest):
        return CommandResult.failure(
            f"git clone: destination path '{dest_name}' already exists "
            "and is not an empty directory",
            exit_code=128,
        )
    repo_mb = max(0.1, sum(len(c) for c in files.values()) / 1e6 + 1.0)
    session.handle.site.clock.advance(
        session.handle.site.network.clone_seconds(repo_mb)
    )
    session.handle.fs_write_tree(dest, files)
    session.env["GIT_HEAD"] = head
    return CommandResult.success(f"Cloning into '{dest_name}'...\ndone.")


# ---------------------------------------------------------------------------
# conda / pip
# ---------------------------------------------------------------------------


def cmd_conda(session, args: List[str]) -> CommandResult:
    if not args:
        return CommandResult.failure("conda: usage: conda <command>")
    sub, rest = args[0], args[1:]
    manager = session.handle.conda()
    if sub == "create":
        name = _flag_value(rest, "-n") or _flag_value(rest, "--name")
        if not name:
            return CommandResult.failure("conda create: missing -n NAME")
        try:
            manager.create(name)
        except ReproError as exc:
            return CommandResult.failure(f"conda create: {exc}")
        return CommandResult.success(f"# environment created: {name}")
    if sub == "activate":
        if not rest:
            return CommandResult.failure("conda activate: missing environment")
        try:
            manager.env(rest[0])
        except ReproError as exc:
            return CommandResult.failure(f"conda activate: {exc}")
        session.env["CONDA_DEFAULT_ENV"] = rest[0]
        return CommandResult.success()
    if sub == "install":
        name = _flag_value(rest, "-n") or session.active_env
        specs = [a for a in rest if not a.startswith("-") and a != name]
        return _install_packages(session, name, specs, tool="conda")
    if sub == "env" and rest[:1] == ["list"]:
        return CommandResult.success("\n".join(manager.environments()))
    return CommandResult.failure(f"conda: unsupported: {' '.join(args)}")


def cmd_pip(session, args: List[str]) -> CommandResult:
    if not args:
        return CommandResult.failure("pip: usage: pip <command>")
    sub, rest = args[0], args[1:]
    if sub == "freeze":
        env = session.handle.conda().env(session.active_env)
        return CommandResult.success("\n".join(env.freeze()))
    if sub != "install":
        return CommandResult.failure(f"pip: unsupported: {sub}")
    specs: List[str] = []
    i = 0
    while i < len(rest):
        if rest[i] in ("-r", "--requirement"):
            if i + 1 >= len(rest):
                return CommandResult.failure("pip install: -r needs a file")
            req_path = session.resolve_path(rest[i + 1])
            try:
                content = session.handle.fs_read(req_path)
            except FileSystemError:
                return CommandResult.failure(
                    f"pip install: cannot open requirements file {rest[i+1]!r}"
                )
            specs.extend(
                line.strip()
                for line in content.splitlines()
                if line.strip() and not line.strip().startswith("#")
            )
            i += 2
            continue
        if rest[i].startswith("-"):
            i += 1
            continue
        specs.append(rest[i])
        i += 1
    return _install_packages(session, session.active_env, specs, tool="pip")


def _parse_spec(spec: str):
    for i, ch in enumerate(spec):
        if ch in "=<>!":
            name = spec[:i]
            constraint = spec[i:]
            if constraint.startswith("=") and not constraint.startswith("=="):
                constraint = "=" + constraint  # conda "pkg=1.2" style
            return name.strip(), constraint.strip()
    return spec.strip(), "*"


def _install_packages(session, env_name: str, specs: List[str], tool: str) -> CommandResult:
    manager = session.handle.conda()
    try:
        env = manager.env(env_name)
    except ReproError as exc:
        return CommandResult.failure(f"{tool} install: {exc}")
    requests = dict(_parse_spec(s) for s in specs if s)
    if not requests:
        return CommandResult.failure(f"{tool} install: nothing to install")
    lines: List[str] = []
    already = {
        name for name in requests
        if name in env.packages
    }
    try:
        downloaded = manager.install(env_name, requests)
    except ReproError as exc:
        return CommandResult.failure(f"{tool} install: {exc}")
    session.handle.io(downloaded)
    for name in sorted(requests):
        pkg = env.packages.get(name)
        if pkg is None:
            continue
        if name in already:
            lines.append(f"Requirement already satisfied: {pkg.spec}")
        else:
            lines.append(f"Successfully installed {pkg.spec}")
    return CommandResult.success("\n".join(lines))


def _flag_value(args: List[str], flag: str):
    for i, arg in enumerate(args):
        if arg == flag and i + 1 < len(args):
            return args[i + 1]
    return None


# ---------------------------------------------------------------------------
# pytest / tox (gated)
# ---------------------------------------------------------------------------


def cmd_pytest(session, args: List[str]) -> CommandResult:
    keyword = _flag_value(args, "-k")
    positional = [
        a for i, a in enumerate(args)
        if not a.startswith("-") and (i == 0 or args[i - 1] != "-k")
    ]
    target_dir = (
        session.resolve_path(positional[0]) if positional else session.cwd
    )
    if not session.handle.fs_isdir(target_dir):
        return CommandResult.failure(f"pytest: no such directory {target_dir}")
    manifest_path = f"{target_dir}/{SUITE_MANIFEST}"
    if not session.handle.fs_exists(manifest_path):
        return CommandResult.failure(
            f"pytest: no tests found ({SUITE_MANIFEST} missing in {target_dir})",
            exit_code=4,
        )
    spec = session.handle.fs_read(manifest_path).strip()
    try:
        suite = load_suite(spec)
    except ShellError as exc:
        return CommandResult.failure(f"pytest: {exc}", exit_code=4)
    ctx = SuiteContext(handle=session.handle, cwd=target_dir, env=session.env)
    report = suite.run(ctx, keyword=keyword)
    report_path = f"{target_dir}/{REPORT_FILENAME}"
    session.handle.fs_write(report_path, report.to_json())
    session.last_report_path = report_path
    output = format_pytest_output(report)
    if report.failed:
        return CommandResult.failure(
            stderr="", exit_code=1, stdout=output
        )
    if not report.results:
        return CommandResult.failure("pytest: no tests ran", exit_code=5)
    return CommandResult.success(output)


def cmd_tox(session, args: List[str]) -> CommandResult:
    """tox: create an isolated env, install deps, run the suite."""
    ini_path = f"{session.cwd}/tox.ini"
    if not session.handle.fs_exists(ini_path):
        return CommandResult.failure("tox: tox.ini not found")
    deps: List[str] = []
    in_deps = False
    for line in session.handle.fs_read(ini_path).splitlines():
        stripped = line.strip()
        if stripped.startswith("deps"):
            in_deps = True
            after = stripped.split("=", 1)[1].strip() if "=" in stripped else ""
            if after:
                deps.append(after)
            continue
        if in_deps:
            if stripped and (line.startswith(" ") or line.startswith("\t")):
                deps.append(stripped)
            else:
                in_deps = False
    manager = session.handle.conda()
    env_name = f"tox-{session.handle.user}"
    if env_name not in manager.environments():
        manager.create(env_name)
    previous = session.active_env
    session.env["CONDA_DEFAULT_ENV"] = env_name
    try:
        if deps:
            result = _install_packages(session, env_name, deps, tool="pip")
            if not result.ok:
                return result
        test_result = cmd_pytest(session, [])
        prefix = f"tox: using environment {env_name}\n"
        return CommandResult(
            exit_code=test_result.exit_code,
            stdout=prefix + test_result.stdout,
            stderr=test_result.stderr,
            duration=test_result.duration,
        )
    finally:
        session.env["CONDA_DEFAULT_ENV"] = previous


# ---------------------------------------------------------------------------
# batch scheduler (sbatch / squeue / scancel)
# ---------------------------------------------------------------------------


def _scheduler_for(session):
    scheduler = session.handle.site.scheduler
    if scheduler is None:
        raise ShellError("this system has no batch scheduler")
    return scheduler


def cmd_sbatch(session, args: List[str]) -> CommandResult:
    """Submit a batch job: ``sbatch [-N n] [-p part] [-t secs] script``.

    The "script" is a simulated-shell command line executed on the
    allocated node when the job starts; its cost is the job's duration
    estimate passed with ``-t`` (required, as sites enforce walltimes).
    """
    from repro.scheduler.jobs import Job

    try:
        scheduler = _scheduler_for(session)
    except ShellError as exc:
        return CommandResult.failure(f"sbatch: {exc}")
    nodes = int(_flag_value(args, "-N") or 1)
    partition = _flag_value(args, "-p")
    walltime = _flag_value(args, "-t")
    script_parts = []
    skip_next = False
    for i, arg in enumerate(args):
        if skip_next:
            skip_next = False
            continue
        if arg in ("-N", "-p", "-t"):
            skip_next = True
            continue
        script_parts.append(arg)
    if not script_parts:
        return CommandResult.failure("sbatch: no script given")
    if partition is None:
        partition = next(iter(scheduler._partitions))
    try:
        duration = float(walltime) if walltime else 60.0
    except ValueError:
        return CommandResult.failure(f"sbatch: bad time limit {walltime!r}")
    job = Job(
        user=session.handle.user,
        partition=partition,
        num_nodes=nodes,
        walltime=duration,
        duration=duration,
        name=script_parts[0],
    )
    try:
        job_id = scheduler.submit(job)
    except ReproError as exc:
        return CommandResult.failure(f"sbatch: {exc}")
    return CommandResult.success(f"Submitted batch job {job_id}")


def cmd_squeue(session, args: List[str]) -> CommandResult:
    try:
        scheduler = _scheduler_for(session)
    except ShellError as exc:
        return CommandResult.failure(f"squeue: {exc}")
    mine_only = "--me" in args
    lines = [f"{'JOBID':<22} {'PARTITION':<10} {'USER':<12} {'ST':<3} NODES"]
    for job in scheduler.queue():
        if mine_only and job.user != session.handle.user:
            continue
        state = {"PENDING": "PD", "RUNNING": "R"}.get(job.state.value, "?")
        lines.append(
            f"{job.job_id:<22} {job.partition:<10} {job.user:<12} "
            f"{state:<3} {job.num_nodes}"
        )
    return CommandResult.success("\n".join(lines))


def cmd_scancel(session, args: List[str]) -> CommandResult:
    try:
        scheduler = _scheduler_for(session)
    except ShellError as exc:
        return CommandResult.failure(f"scancel: {exc}")
    if not args:
        return CommandResult.failure("scancel: missing job id")
    try:
        job = scheduler.job(args[0])
    except ReproError:
        return CommandResult.failure(f"scancel: no job {args[0]}")
    if job.user != session.handle.user:
        return CommandResult.failure(
            f"scancel: job {args[0]} belongs to {job.user}", exit_code=1
        )
    scheduler.cancel(args[0])
    return CommandResult.success()


# ---------------------------------------------------------------------------
# containers
# ---------------------------------------------------------------------------


def cmd_apptainer(session, args: List[str]) -> CommandResult:
    return _container_cmd(session, args, runtime_name="apptainer")


def cmd_docker(session, args: List[str]) -> CommandResult:
    return _container_cmd(session, args, runtime_name="docker")


def _container_cmd(session, args: List[str], runtime_name: str) -> CommandResult:
    if not args:
        return CommandResult.failure(f"{runtime_name}: usage: {runtime_name} <command>")
    site = session.handle.site
    try:
        runtime = site.runtime(runtime_name)
    except ReproError as exc:
        return CommandResult.failure(f"{runtime_name}: {exc}", exit_code=125)
    sub, rest = args[0], args[1:]
    if sub == "pull":
        if not rest:
            return CommandResult.failure(f"{runtime_name} pull: missing image")
        try:
            session.handle.check_outbound("image pull")
            image = runtime.pull(rest[0])
        except (NetworkBlocked, ImageNotFound) as exc:
            return CommandResult.failure(f"{runtime_name} pull: {exc}")
        session.handle.io(runtime.last_pull_mb())
        return CommandResult.success(f"Pulled {image.reference} ({image.digest[:12]})")
    if sub in ("exec", "run"):
        if not rest:
            return CommandResult.failure(f"{runtime_name} {sub}: missing image")
        reference = rest[0]
        inner = rest[1:]
        try:
            if not runtime._cache.get(reference):
                session.handle.check_outbound("image pull")
            image = runtime.pull(reference)
            session.handle.io(runtime.last_pull_mb())
            container = runtime.start(
                image,
                user=session.handle.user,
                privileged_daemon_allowed=site.allow_privileged_daemon,
            )
        except (NetworkBlocked, ImageNotFound, PrivilegeError) as exc:
            return CommandResult.failure(f"{runtime_name} {sub}: {exc}", exit_code=125)
        previous = session.container
        session.container = container
        try:
            if inner:
                # rejoin with plain spaces so `&&` chains still chain;
                # quoting was already resolved by the outer tokenizer
                return session.run(" ".join(inner))
            return CommandResult.success(f"container {container.container_id} ran")
        finally:
            container.stop()
            session.container = previous
    return CommandResult.failure(f"{runtime_name}: unsupported: {sub}")


CORE_COMMANDS: Dict[str, CommandFn] = {
    "echo": cmd_echo,
    "true": cmd_true,
    "false": cmd_false,
    "pwd": cmd_pwd,
    "cd": cmd_cd,
    "ls": cmd_ls,
    "cat": cmd_cat,
    "mkdir": cmd_mkdir,
    "rm": cmd_rm,
    "hostname": cmd_hostname,
    "whoami": cmd_whoami,
    "env": cmd_env,
    "export": cmd_export,
    "sleep": cmd_sleep,
    "uname": cmd_uname,
    "module": cmd_module,
    "git": cmd_git,
    "conda": cmd_conda,
    "pip": cmd_pip,
    "sbatch": cmd_sbatch,
    "squeue": cmd_squeue,
    "scancel": cmd_scancel,
    "apptainer": cmd_apptainer,
    "singularity": cmd_apptainer,  # alias: renamed project, same tool
    "docker": cmd_docker,
}

GATED_COMMANDS: Dict[str, CommandFn] = {
    "pytest": cmd_pytest,
    "tox": cmd_tox,
}
