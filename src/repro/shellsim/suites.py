"""Executable test suites.

A :class:`TestSuite` is the simulation's equivalent of a pytest test
directory: an ordered list of :class:`TestCase` items, each of which runs
real Python against a :class:`SuiteContext` and either returns (pass) or
raises (fail). Virtual duration per test is ``launch share + work /
site speed``, so the same suite yields different timings on different
sites — the mechanism behind Fig. 4.
"""

from __future__ import annotations

import enum
import importlib
import json
import traceback
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional

from repro.errors import ShellError
from repro.faults.injector import injector_of


@dataclass
class SuiteContext:
    """What a test case may touch: the node handle, cwd files, shell env."""

    handle: object  # NodeHandle; typed loosely to avoid an import cycle
    cwd: str
    env: Dict[str, str]

    def read_file(self, relpath: str) -> str:
        return self.handle.fs_read(f"{self.cwd}/{relpath}")

    def file_exists(self, relpath: str) -> bool:
        return self.handle.fs_exists(f"{self.cwd}/{relpath}")


@dataclass
class TestCase:
    """One test: a name, an abstract cost, and a real check function.

    ``work`` is in reference-core seconds; ``fn`` receives a
    :class:`SuiteContext` and raises on failure (``AssertionError`` or any
    exception). ``threads`` lets heavyweight cases exploit node cores.
    """

    name: str
    work: float
    fn: Callable[[SuiteContext], None]
    threads: int = 1
    markers: tuple = ()


class TestOutcome(enum.Enum):
    PASSED = "PASSED"
    FAILED = "FAILED"
    ERROR = "ERROR"
    SKIPPED = "SKIPPED"


@dataclass
class TestResult:
    name: str
    outcome: TestOutcome
    duration: float
    message: str = ""


@dataclass
class TestReport:
    """Aggregated suite outcome, serializable for artifact storage."""

    suite: str
    results: List[TestResult] = field(default_factory=list)

    @property
    def passed(self) -> int:
        return sum(1 for r in self.results if r.outcome is TestOutcome.PASSED)

    @property
    def failed(self) -> int:
        return sum(
            1
            for r in self.results
            if r.outcome in (TestOutcome.FAILED, TestOutcome.ERROR)
        )

    @property
    def total_duration(self) -> float:
        return sum(r.duration for r in self.results)

    @property
    def ok(self) -> bool:
        return self.failed == 0 and bool(self.results)

    def durations(self) -> Dict[str, float]:
        return {r.name: r.duration for r in self.results}

    def to_json(self) -> str:
        return json.dumps(
            {
                "suite": self.suite,
                "results": [
                    {
                        "name": r.name,
                        "outcome": r.outcome.value,
                        "duration": r.duration,
                        "message": r.message,
                    }
                    for r in self.results
                ],
            },
            indent=2,
            sort_keys=True,
        )

    @classmethod
    def from_json(cls, text: str) -> "TestReport":
        data = json.loads(text)
        report = cls(suite=data["suite"])
        report.results.extend(
            TestResult(
                name=r["name"],
                outcome=TestOutcome(r["outcome"]),
                duration=r["duration"],
                message=r.get("message", ""),
            )
            for r in data["results"]
        )
        return report


@dataclass
class TestSuite:
    """An ordered collection of test cases."""

    name: str
    cases: List[TestCase] = field(default_factory=list)

    def add(
        self,
        name: str,
        work: float,
        fn: Callable[[SuiteContext], None],
        threads: int = 1,
        markers: tuple = (),
    ) -> None:
        if any(c.name == name for c in self.cases):
            raise ValueError(f"duplicate test case {name!r} in {self.name}")
        self.cases.append(TestCase(name, work, fn, threads=threads, markers=markers))

    def select(self, keyword: Optional[str] = None) -> List[TestCase]:
        """Cases matching a pytest-style ``-k`` expression.

        A bare keyword is a substring match; ``"a or b"`` selects cases
        matching any alternative. Case order is preserved either way.
        """
        if keyword is None:
            return list(self.cases)
        alternatives = [k.strip() for k in keyword.split(" or ") if k.strip()]
        return [
            c for c in self.cases
            if any(alt in c.name for alt in alternatives)
        ]

    def run(self, ctx: SuiteContext, keyword: Optional[str] = None) -> TestReport:
        """Execute test cases against ``ctx``, charging virtual time."""
        report = TestReport(suite=self.name)
        injector = injector_of(ctx.handle.site.clock)
        for case in self.select(keyword):
            start = ctx.handle.site.clock.now
            ctx.handle.process_launch()
            # an armed TestFailure fault replaces the case body with the
            # planned exception — same position, so charged time and the
            # rendered message match a genuinely-broken test byte for byte
            injected = injector.test_error_for(self.name, case.name)
            try:
                if injected is not None:
                    raise injected
                case.fn(ctx)
                ctx.handle.compute(case.work, threads=case.threads)
                outcome, message = TestOutcome.PASSED, ""
            except AssertionError as exc:
                ctx.handle.compute(case.work, threads=case.threads)
                outcome, message = TestOutcome.FAILED, str(exc) or "assertion failed"
            except Exception as exc:  # noqa: BLE001 - suite isolation
                outcome = TestOutcome.ERROR
                message = "".join(
                    traceback.format_exception_only(type(exc), exc)
                ).strip()
            duration = ctx.handle.site.clock.now - start
            report.results.append(
                TestResult(case.name, outcome, duration, message)
            )
        return report


def load_suite(spec: str) -> TestSuite:
    """Resolve a ``module:attribute`` suite reference from a manifest."""
    if ":" not in spec:
        raise ShellError(f"bad suite spec {spec!r}; expected 'module:attr'")
    module_name, attr = spec.split(":", 1)
    try:
        module = importlib.import_module(module_name)
    except ImportError as exc:
        raise ShellError(f"cannot import suite module {module_name!r}: {exc}")
    try:
        suite = getattr(module, attr)
    except AttributeError:
        raise ShellError(f"{module_name} has no attribute {attr!r}") from None
    if callable(suite) and not isinstance(suite, TestSuite):
        suite = suite()
    if not isinstance(suite, TestSuite):
        raise ShellError(f"{spec} did not resolve to a TestSuite")
    return suite


def format_pytest_output(report: TestReport) -> str:
    """Render a report in pytest's familiar console style."""
    lines = [
        "============================= test session starts =============================",
        f"collected {len(report.results)} items",
        "",
    ]
    lines.extend(
        f"{report.suite}::{r.name} {r.outcome.value} [{r.duration:.2f}s]"
        for r in report.results
    )
    failures = [
        r for r in report.results
        if r.outcome in (TestOutcome.FAILED, TestOutcome.ERROR)
    ]
    if failures:
        lines.append("")
        lines.append("=================================== FAILURES ===================================")
        lines.extend(
            f"FAILED {report.suite}::{r.name} - {r.message}" for r in failures
        )
    summary = []
    if report.passed:
        summary.append(f"{report.passed} passed")
    if report.failed:
        summary.append(f"{report.failed} failed")
    lines.append("")
    lines.append(
        f"========================= {', '.join(summary) or 'no tests ran'} "
        f"in {report.total_duration:.2f}s ========================="
    )
    return "\n".join(lines)
