"""The shell session: state + command dispatch."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, TYPE_CHECKING

from repro.containers.runtime import RunningContainer
from repro.errors import CommandNotFound, ShellError
from repro.shellsim.parsing import (
    expand_variables,
    extract_assignments,
    split_chain,
    tokenize,
)
from repro.shellsim.result import CommandResult

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.sites.site import NodeHandle


@dataclass
class ShellServices:
    """External services a shell can reach (subject to network policy).

    ``hub`` is the hosting service for ``git clone``; ``image_commands``
    maps container-provided command names to Python implementations
    (registered by application modules such as the KaMPIng artifacts).
    """

    hub: Optional[object] = None
    image_commands: Dict[str, Callable] = field(default_factory=dict)


class ShellSession:
    """An interactive-shell stand-in bound to one node and user.

    Commands are plain Python callables ``(session, args) -> CommandResult``.
    Core commands are always on PATH; tool commands (``pytest``, ``tox``...)
    must be provided by the active conda environment or by the running
    container image — mirroring why CI recipes start with installs.
    """

    def __init__(
        self,
        handle: "NodeHandle",
        services: Optional[ShellServices] = None,
        env: Optional[Dict[str, str]] = None,
        cwd: Optional[str] = None,
        container: Optional[RunningContainer] = None,
    ) -> None:
        self.handle = handle
        self.services = services or ShellServices()
        self.env: Dict[str, str] = {
            "HOME": handle.home(),
            "USER": handle.user,
            "HOSTNAME": handle.node.name,
            "CONDA_DEFAULT_ENV": "base",
        }
        self.env.update(env or {})
        self.cwd = cwd or handle.home()
        self.container = container
        self.history: List[str] = []
        self.last_report_path: Optional[str] = None
        from repro.shellsim import commands as _commands

        self._core = dict(_commands.CORE_COMMANDS)
        self._gated = dict(_commands.GATED_COMMANDS)

    # -- path helpers -----------------------------------------------------------
    def resolve_path(self, path: str) -> str:
        if path.startswith("~"):
            path = self.env.get("HOME", "/") + path[1:]
        if not path.startswith("/"):
            path = f"{self.cwd.rstrip('/')}/{path}"
        parts: List[str] = []
        for part in path.split("/"):
            if part in ("", "."):
                continue
            if part == "..":
                if parts:
                    parts.pop()
                continue
            parts.append(part)
        return "/" + "/".join(parts)

    # -- environment helpers -------------------------------------------------------
    @property
    def active_env(self) -> str:
        return self.env.get("CONDA_DEFAULT_ENV", "base")

    def available_tool_commands(self) -> Dict[str, str]:
        """Tool commands currently on PATH and where they come from."""
        out: Dict[str, str] = {}
        try:
            env = self.handle.conda().env(self.active_env)
            for cmd in env.commands():
                out[cmd] = f"conda:{self.active_env}"
        except Exception:  # noqa: BLE001 - env may not exist yet
            pass
        if self.container is not None and self.container.running:
            for cmd in self.container.image.commands:
                out[cmd] = f"container:{self.container.image.reference}"
        return out

    # -- execution --------------------------------------------------------------
    def run(self, command_line: str) -> CommandResult:
        """Run a (possibly chained) command line."""
        self.history.append(command_line)
        start = self.handle.site.clock.now
        stdout_parts: List[str] = []
        stderr_parts: List[str] = []
        exit_code = 0
        for op, simple in split_chain(command_line):
            if op == "&&" and exit_code != 0:
                break
            result = self._run_simple(simple)
            if result.stdout:
                stdout_parts.append(result.stdout)
            if result.stderr:
                stderr_parts.append(result.stderr)
            exit_code = result.exit_code
        return CommandResult(
            exit_code=exit_code,
            stdout="\n".join(stdout_parts),
            stderr="\n".join(stderr_parts),
            duration=self.handle.site.clock.now - start,
        )

    def _run_simple(self, command: str) -> CommandResult:
        try:
            tokens = tokenize(command)
        except ShellError as exc:
            return CommandResult.failure(f"shell: {exc}", exit_code=2)
        tokens = [expand_variables(t, self.env) for t in tokens]
        assignments, tokens = extract_assignments(tokens)
        if not tokens:
            self.env.update(assignments)
            return CommandResult.success()
        name, args = tokens[0], tokens[1:]
        saved_env = None
        if assignments:
            saved_env = dict(self.env)
            self.env.update(assignments)
        try:
            return self._dispatch(name, args)
        except ShellError as exc:
            return CommandResult.failure(f"{name}: {exc}", exit_code=1)
        finally:
            if saved_env is not None:
                self.env = saved_env

    def _dispatch(self, name: str, args: List[str]) -> CommandResult:
        # container-provided commands take precedence while inside one
        if self.container is not None and self.container.running:
            if name in self.container.image.commands:
                impl = self.services.image_commands.get(name)
                if impl is None:
                    raise ShellError(
                        f"container command {name!r} has no registered "
                        "implementation"
                    )
                return impl(self, args)
        if name in self._core:
            return self._core[name](self, args)
        if name in self._gated:
            available = self.available_tool_commands()
            if name not in available:
                return CommandResult.failure(
                    f"bash: {name}: command not found (activate an "
                    f"environment providing it; active: {self.active_env})",
                    exit_code=127,
                )
            return self._gated[name](self, args)
        return CommandResult.failure(
            f"bash: {name}: command not found", exit_code=127
        )
