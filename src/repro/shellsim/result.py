"""Command results."""

from __future__ import annotations

from dataclasses import dataclass


@dataclass
class CommandResult:
    """Outcome of one command line (or chained command list)."""

    exit_code: int
    stdout: str = ""
    stderr: str = ""
    duration: float = 0.0

    @property
    def ok(self) -> bool:
        return self.exit_code == 0

    def combined_output(self) -> str:
        """stdout followed by stderr, as CI logs typically interleave."""
        parts = [p for p in (self.stdout, self.stderr) if p]
        return "\n".join(parts)

    @staticmethod
    def success(stdout: str = "", duration: float = 0.0) -> "CommandResult":
        return CommandResult(0, stdout=stdout, duration=duration)

    @staticmethod
    def failure(
        stderr: str, exit_code: int = 1, stdout: str = "", duration: float = 0.0
    ) -> "CommandResult":
        return CommandResult(exit_code, stdout=stdout, stderr=stderr, duration=duration)
