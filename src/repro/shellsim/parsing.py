"""Command-line tokenization and splitting.

Supports the grammar CI shell commands actually use: whitespace-separated
tokens with single/double quotes, ``&&`` / ``;`` chaining, and leading
``VAR=value`` environment assignments. Pipes, globs, and redirection are
out of scope and rejected loudly rather than misinterpreted.
"""

from __future__ import annotations

from typing import Dict, List, Tuple

from repro.errors import ShellError


def tokenize(command: str) -> List[str]:
    """Split one simple command into tokens, honoring quotes."""
    tokens: List[str] = []
    current: List[str] = []
    quote = None
    has_content = False
    for ch in command:
        if quote:
            if ch == quote:
                quote = None
            else:
                current.append(ch)
        elif ch in "'\"":
            quote = ch
            has_content = True
        elif ch.isspace():
            if current or has_content:
                tokens.append("".join(current))
                current = []
                has_content = False
        elif ch in "|<>*":
            raise ShellError(
                f"unsupported shell syntax {ch!r} in {command!r} "
                "(pipes/redirection/globs are not modeled)"
            )
        else:
            current.append(ch)
    if quote:
        raise ShellError(f"unterminated quote in {command!r}")
    if current or has_content:
        tokens.append("".join(current))
    return tokens


def split_chain(command_line: str) -> List[Tuple[str, str]]:
    """Split on ``&&`` and ``;`` (outside quotes).

    Returns [(operator, simple_command)] where operator is ``"&&"``,
    ``";"``, or ``""`` for the first element.
    """
    parts: List[Tuple[str, str]] = []
    current: List[str] = []
    quote = None
    op = ""
    i = 0
    while i < len(command_line):
        ch = command_line[i]
        if quote:
            current.append(ch)
            if ch == quote:
                quote = None
            i += 1
            continue
        if ch in "'\"":
            quote = ch
            current.append(ch)
            i += 1
            continue
        if command_line.startswith("&&", i):
            parts.append((op, "".join(current).strip()))
            current = []
            op = "&&"
            i += 2
            continue
        if ch == ";":
            parts.append((op, "".join(current).strip()))
            current = []
            op = ";"
            i += 1
            continue
        current.append(ch)
        i += 1
    parts.append((op, "".join(current).strip()))
    return [(o, c) for o, c in parts if c]


def extract_assignments(tokens: List[str]) -> Tuple[Dict[str, str], List[str]]:
    """Pull leading ``VAR=value`` assignments off the token list."""
    assignments: Dict[str, str] = {}
    rest = list(tokens)
    while rest:
        token = rest[0]
        eq = token.find("=")
        if eq <= 0 or not token[:eq].isidentifier():
            break
        assignments[token[:eq]] = token[eq + 1 :]
        rest.pop(0)
    return assignments, rest


def expand_variables(token: str, env: Dict[str, str]) -> str:
    """Expand ``$VAR`` and ``${VAR}`` references."""
    out: List[str] = []
    i = 0
    while i < len(token):
        ch = token[i]
        if ch == "$" and i + 1 < len(token):
            if token[i + 1] == "{":
                end = token.find("}", i + 2)
                if end == -1:
                    raise ShellError(f"unterminated ${{ in {token!r}")
                name = token[i + 2 : end]
                out.append(env.get(name, ""))
                i = end + 1
                continue
            j = i + 1
            while j < len(token) and (token[j].isalnum() or token[j] == "_"):
                j += 1
            if j > i + 1:
                out.append(env.get(token[i + 1 : j], ""))
                i = j
                continue
        out.append(ch)
        i += 1
    return "".join(out)
