"""Structured event log shared by all subsystems.

Every significant state change (workflow triggered, task submitted, job
started, secret accessed...) is appended to an :class:`EventLog`. The log is
the backbone of provenance capture: a CORRECT run's provenance record is a
filtered view of these events.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable, Dict, Iterator, List, Optional


@dataclass(frozen=True)
class Event:
    """One immutable log entry.

    Attributes
    ----------
    time:
        Virtual time at which the event occurred.
    source:
        Subsystem that emitted it (``"actions"``, ``"faas"``, ``"slurm"``...).
    kind:
        Machine-readable event name (``"task.submitted"``...).
    data:
        Arbitrary JSON-like payload.
    """

    time: float
    source: str
    kind: str
    data: Dict[str, Any] = field(default_factory=dict)


class EventLog:
    """Append-only event log with subscription and filtered queries."""

    def __init__(self) -> None:
        self._events: List[Event] = []
        self._subscribers: List[Callable[[Event], None]] = []

    def emit(self, time: float, source: str, kind: str, **data: Any) -> Event:
        """Record an event and notify subscribers."""
        event = Event(time=time, source=source, kind=kind, data=dict(data))
        self._events.append(event)
        for sub in list(self._subscribers):
            sub(event)
        return event

    def subscribe(self, callback: Callable[[Event], None]) -> Callable[[], None]:
        """Register ``callback`` for future events; returns an unsubscriber."""
        self._subscribers.append(callback)

        def unsubscribe() -> None:
            if callback in self._subscribers:
                self._subscribers.remove(callback)

        return unsubscribe

    def query(
        self,
        source: Optional[str] = None,
        kind: Optional[str] = None,
        since: float = float("-inf"),
        until: float = float("inf"),
    ) -> List[Event]:
        """Return events matching all provided filters, in order."""
        return [
            e
            for e in self._events
            if (source is None or e.source == source)
            and (kind is None or e.kind == kind)
            and since <= e.time <= until
        ]

    def __len__(self) -> int:
        return len(self._events)

    def __iter__(self) -> Iterator[Event]:
        return iter(self._events)

    def last(self, kind: Optional[str] = None) -> Optional[Event]:
        """Most recent event, optionally restricted to one kind."""
        for event in reversed(self._events):
            if kind is None or event.kind == kind:
                return event
        return None
