"""Structured event log shared by all subsystems.

Every significant state change (workflow triggered, task submitted, job
started, secret accessed...) is appended to an :class:`EventLog`. The log is
the backbone of provenance capture: a CORRECT run's provenance record is a
filtered view of these events, and the telemetry layer's metrics are
derived entirely from subscriptions to it.
"""

from __future__ import annotations

import functools
import itertools
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, Iterator, List, Optional


@functools.total_ordering
@dataclass(frozen=True)
class Event:
    """One immutable log entry.

    Attributes
    ----------
    time:
        Virtual time at which the event occurred.
    source:
        Subsystem that emitted it (``"actions"``, ``"faas"``, ``"slurm"``...).
    kind:
        Machine-readable event name (``"task.submitted"``...).
    data:
        Arbitrary JSON-like payload.
    seq:
        Monotonic emission sequence number, assigned by the log. Events
        emitted at the same virtual timestamp are totally ordered by
        ``seq``, so trace assembly and sorted queries are deterministic
        rather than relying on list-append accident.
    """

    time: float
    source: str
    kind: str
    data: Dict[str, Any] = field(default_factory=dict)
    seq: int = 0

    @property
    def sort_key(self) -> tuple:
        return (self.time, self.seq)

    def __lt__(self, other: "Event") -> bool:
        if not isinstance(other, Event):
            return NotImplemented
        return self.sort_key < other.sort_key


class EventLog:
    """Append-only event log with subscription and filtered queries.

    Subscriber callbacks are isolated: one raising does not abort
    delivery to the others, nor does the error propagate into the
    emitting subsystem. Each failure is recorded as a
    ``telemetry``/``subscriber_error`` event instead.
    """

    def __init__(self) -> None:
        self._events: List[Event] = []
        self._subscribers: List[Callable[[Event], None]] = []
        self._seq = itertools.count()

    def emit(self, time: float, source: str, kind: str, **data: Any) -> Event:
        """Record an event and notify subscribers."""
        event = Event(
            time=time, source=source, kind=kind, data=dict(data),
            seq=next(self._seq),
        )
        self._events.append(event)
        self._deliver(event, record_errors=True)
        return event

    def _deliver(self, event: Event, record_errors: bool) -> None:
        """Fan out to subscribers, isolating each callback.

        A failure while delivering a ``subscriber_error`` event is
        swallowed (``record_errors=False``) so a subscriber that raises
        on *every* event cannot recurse the log into the ground.
        """
        for sub in list(self._subscribers):
            try:
                sub(event)
            except Exception as exc:  # noqa: BLE001 - subscriber isolation
                if not record_errors:
                    continue
                self._record_subscriber_error(sub, event, exc)

    def _record_subscriber_error(
        self, sub: Callable[[Event], None], event: Event, exc: Exception
    ) -> None:
        error_event = Event(
            time=event.time,
            source="telemetry",
            kind="subscriber_error",
            data={
                "subscriber": getattr(sub, "__qualname__", repr(sub)),
                "error": f"{type(exc).__name__}: {exc}",
                "during": f"{event.source}/{event.kind}",
            },
            seq=next(self._seq),
        )
        self._events.append(error_event)
        self._deliver(error_event, record_errors=False)

    def replay_to(
        self,
        callback: Callable[[Event], None],
        source: Optional[str] = None,
        kind: Optional[str] = None,
    ) -> int:
        """Deliver already-recorded history to a late subscriber.

        :meth:`subscribe` only sees *future* events; a subscriber that
        also needs the past (the durability checkpointer attaching after
        endpoints registered, a late metrics bridge) replays it
        explicitly. Events are delivered in emission order with the same
        error isolation as live delivery. Returns the number delivered.
        """
        delivered = 0
        for event in list(self._events):
            if source is not None and event.source != source:
                continue
            if kind is not None and event.kind != kind:
                continue
            delivered += 1
            try:
                callback(event)
            except Exception as exc:  # noqa: BLE001 - subscriber isolation
                self._record_subscriber_error(callback, event, exc)
        return delivered

    def subscribe(self, callback: Callable[[Event], None]) -> Callable[[], None]:
        """Register ``callback`` for future events; returns an unsubscriber."""
        self._subscribers.append(callback)

        def unsubscribe() -> None:
            if callback in self._subscribers:
                self._subscribers.remove(callback)

        return unsubscribe

    def query(
        self,
        source: Optional[str] = None,
        kind: Optional[str] = None,
        since: float = float("-inf"),
        until: float = float("inf"),
    ) -> List[Event]:
        """Return events matching all provided filters, in emission order."""
        return [
            e
            for e in self._events
            if (source is None or e.source == source)
            and (kind is None or e.kind == kind)
            and since <= e.time <= until
        ]

    def __len__(self) -> int:
        return len(self._events)

    def __iter__(self) -> Iterator[Event]:
        return iter(self._events)

    def last(self, kind: Optional[str] = None) -> Optional[Event]:
        """Most recent event, optionally restricted to one kind."""
        for event in reversed(self._events):
            if kind is None or event.kind == kind:
                return event
        return None
