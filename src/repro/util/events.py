"""Structured event log shared by all subsystems.

Every significant state change (workflow triggered, task submitted, job
started, secret accessed...) is appended to an :class:`EventLog`. The log is
the backbone of provenance capture: a CORRECT run's provenance record is a
filtered view of these events, and the telemetry layer's metrics are
derived entirely from subscriptions to it.

The log is also on the engine's hottest path — a million-task run emits
several million events — so it is built to be queried without scanning:
emission maintains per-``source``, per-``kind``, and per-``(source,
kind)`` indexes (plain lists in emission order, so filtered views cost
O(matches) instead of O(all events)), plus a last-seen event per kind.
:meth:`emit` itself allocates one slotted :class:`Event` and nothing
else: the keyword payload is adopted as-is, never copied.
"""

from __future__ import annotations

import functools
from typing import Any, Callable, Dict, Iterator, List, Optional, Tuple

_NEG_INF = float("-inf")
_POS_INF = float("inf")


@functools.total_ordering
class Event:
    """One immutable log entry.

    Attributes
    ----------
    time:
        Virtual time at which the event occurred.
    source:
        Subsystem that emitted it (``"actions"``, ``"faas"``, ``"slurm"``...).
    kind:
        Machine-readable event name (``"task.submitted"``...).
    data:
        Arbitrary JSON-like payload.
    seq:
        Monotonic emission sequence number, assigned by the log. Events
        emitted at the same virtual timestamp are totally ordered by
        ``seq``, so trace assembly and sorted queries are deterministic
        rather than relying on list-append accident.
    """

    __slots__ = ("time", "source", "kind", "data", "seq")

    def __init__(
        self,
        time: float,
        source: str,
        kind: str,
        data: Optional[Dict[str, Any]] = None,
        seq: int = 0,
    ) -> None:
        _set = object.__setattr__
        _set(self, "time", time)
        _set(self, "source", source)
        _set(self, "kind", kind)
        _set(self, "data", data if data is not None else {})
        _set(self, "seq", seq)

    def __setattr__(self, name: str, value: Any) -> None:
        raise AttributeError(f"Event is immutable (tried to set {name!r})")

    @property
    def sort_key(self) -> tuple:
        return (self.time, self.seq)

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Event):
            return NotImplemented
        return (
            self.time == other.time
            and self.source == other.source
            and self.kind == other.kind
            and self.seq == other.seq
            and self.data == other.data
        )

    def __lt__(self, other: "Event") -> bool:
        if not isinstance(other, Event):
            return NotImplemented
        return self.sort_key < other.sort_key

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"Event(t={self.time:.3f}, {self.source}/{self.kind}, "
            f"seq={self.seq})"
        )


class EventLog:
    """Append-only event log with subscription and indexed queries.

    Subscriber callbacks are isolated: one raising does not abort
    delivery to the others, nor does the error propagate into the
    emitting subsystem. Each failure is recorded as a
    ``telemetry``/``subscriber_error`` event instead.
    """

    def __init__(self) -> None:
        self._events: List[Event] = []
        self._subscribers: List[Callable[[Event], None]] = []
        self._seq = 0
        # emission-ordered index lists; query() picks the narrowest
        self._by_source: Dict[str, List[Event]] = {}
        self._by_kind: Dict[str, List[Event]] = {}
        self._by_source_kind: Dict[Tuple[str, str], List[Event]] = {}
        self._last_by_kind: Dict[str, Event] = {}
        # (source, kind) -> the three index lists above, resolved once:
        # steady-state appends then cost one dict hit instead of three
        self._index_lists: Dict[Tuple[str, str], tuple] = {}

    def _append(self, event: Event) -> None:
        """Record ``event`` and keep every index current."""
        self._events.append(event)
        source, kind = event.source, event.kind
        pair = (source, kind)
        lists = self._index_lists.get(pair)
        if lists is None:
            by_source = self._by_source.get(source)
            if by_source is None:
                by_source = self._by_source[source] = []
            by_kind = self._by_kind.get(kind)
            if by_kind is None:
                by_kind = self._by_kind[kind] = []
            by_pair = self._by_source_kind.get(pair)
            if by_pair is None:
                by_pair = self._by_source_kind[pair] = []
            lists = self._index_lists[pair] = (by_source, by_kind, by_pair)
        lists[0].append(event)
        lists[1].append(event)
        lists[2].append(event)
        self._last_by_kind[kind] = event

    def emit(self, time: float, source: str, kind: str, **data: Any) -> Event:
        """Record an event and notify subscribers.

        The fast path of the whole engine: the ``data`` keyword mapping
        is already a fresh dict owned by this call, so it is adopted
        directly — no defensive copy — and subscriber fan-out is skipped
        entirely when nobody is listening.
        """
        seq = self._seq
        self._seq = seq + 1
        event = Event(time, source, kind, data, seq)
        self._append(event)
        if self._subscribers:
            self._deliver(event, record_errors=True)
        return event

    def _deliver(self, event: Event, record_errors: bool) -> None:
        """Fan out to subscribers, isolating each callback.

        A failure while delivering a ``subscriber_error`` event is
        swallowed (``record_errors=False``) so a subscriber that raises
        on *every* event cannot recurse the log into the ground.
        """
        for sub in list(self._subscribers):
            try:
                sub(event)
            except Exception as exc:  # noqa: BLE001 - subscriber isolation
                if not record_errors:
                    continue
                self._record_subscriber_error(sub, event, exc)

    def _record_subscriber_error(
        self, sub: Callable[[Event], None], event: Event, exc: Exception
    ) -> None:
        seq = self._seq
        self._seq = seq + 1
        error_event = Event(
            time=event.time,
            source="telemetry",
            kind="subscriber_error",
            data={
                "subscriber": getattr(sub, "__qualname__", repr(sub)),
                "error": f"{type(exc).__name__}: {exc}",
                "during": f"{event.source}/{event.kind}",
            },
            seq=seq,
        )
        self._append(error_event)
        self._deliver(error_event, record_errors=False)

    def replay_to(
        self,
        callback: Callable[[Event], None],
        source: Optional[str] = None,
        kind: Optional[str] = None,
    ) -> int:
        """Deliver already-recorded history to a late subscriber.

        :meth:`subscribe` only sees *future* events; a subscriber that
        also needs the past (the durability checkpointer attaching after
        endpoints registered, a late metrics bridge) replays it
        explicitly. Events are delivered in emission order with the same
        error isolation as live delivery. Returns the number delivered.
        """
        delivered = 0
        for event in list(self._candidates(source, kind)):
            delivered += 1
            try:
                callback(event)
            except Exception as exc:  # noqa: BLE001 - subscriber isolation
                self._record_subscriber_error(callback, event, exc)
        return delivered

    def subscribe(self, callback: Callable[[Event], None]) -> Callable[[], None]:
        """Register ``callback`` for future events; returns an unsubscriber."""
        self._subscribers.append(callback)

        def unsubscribe() -> None:
            if callback in self._subscribers:
                self._subscribers.remove(callback)

        return unsubscribe

    def _candidates(
        self, source: Optional[str], kind: Optional[str]
    ) -> List[Event]:
        """The narrowest index list covering the filters (emission order).

        May be an internal index list — callers must not mutate it, and
        must copy before returning it to user code.
        """
        if source is not None and kind is not None:
            return self._by_source_kind.get((source, kind), [])
        if source is not None:
            return self._by_source.get(source, [])
        if kind is not None:
            return self._by_kind.get(kind, [])
        return self._events

    def query(
        self,
        source: Optional[str] = None,
        kind: Optional[str] = None,
        since: float = _NEG_INF,
        until: float = _POS_INF,
    ) -> List[Event]:
        """Return events matching all provided filters, in emission order.

        Indexed: a ``source``/``kind`` filter walks only the matching
        events, not the whole log. The time window still filters linearly
        *within* the candidate list — event times are not monotone (a
        measured region rewinds the clock), so no bisection is possible.
        """
        candidates = self._candidates(source, kind)
        if since == _NEG_INF and until == _POS_INF:
            return list(candidates)
        return [e for e in candidates if since <= e.time <= until]

    def __len__(self) -> int:
        return len(self._events)

    def __iter__(self) -> Iterator[Event]:
        return iter(self._events)

    def last(self, kind: Optional[str] = None) -> Optional[Event]:
        """Most recent event, optionally restricted to one kind. O(1)."""
        if kind is None:
            return self._events[-1] if self._events else None
        return self._last_by_kind.get(kind)
