"""Content hashing for the content-addressed VCS object store."""

from __future__ import annotations

import hashlib
from typing import Union


def content_hash(kind: str, payload: Union[str, bytes]) -> str:
    """Hash ``payload`` with a ``kind`` prefix, git-style.

    Git hashes ``b"blob <len>\\0" + data``; we follow the same scheme so two
    objects of different kinds with identical bytes never collide.
    """
    if isinstance(payload, str):
        payload = payload.encode("utf-8")
    header = f"{kind} {len(payload)}".encode("ascii") + b"\x00"
    return hashlib.sha256(header + payload).hexdigest()
