"""Shared utilities: virtual clock, ids, hashing, event log, serialization,
mini-YAML parsing, and plain-text table/series rendering."""

from repro.util.clock import MeasuredRegion, SimClock
from repro.util.ids import IdFactory, deterministic_uuid
from repro.util.events import EventLog, Event
from repro.util.hashing import content_hash
from repro.util.serialization import serialize, deserialize, serialized_size

__all__ = [
    "MeasuredRegion",
    "SimClock",
    "IdFactory",
    "deterministic_uuid",
    "EventLog",
    "Event",
    "content_hash",
    "serialize",
    "deserialize",
    "serialized_size",
]
