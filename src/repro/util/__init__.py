"""Shared utilities: virtual clock, ids, hashing, event log, serialization,
mini-YAML parsing, and plain-text table/series rendering."""

from repro.util.clock import MeasuredRegion, SimClock
from repro.util.ids import IdFactory, deterministic_uuid
from repro.util.events import EventLog, Event
from repro.util.hashing import content_hash
from repro.util.serialization import serialize, deserialize, serialized_size

__all__ = [
    "MeasuredRegion",
    "SimClock",
    "Span",  # deprecated alias of MeasuredRegion
    "IdFactory",
    "deterministic_uuid",
    "EventLog",
    "Event",
    "content_hash",
    "serialize",
    "deserialize",
    "serialized_size",
]


def __getattr__(name: str):
    # Lazy forward so importing repro.util does not itself trigger the
    # DeprecationWarning that accessing the Span alias now emits.
    if name == "Span":
        from repro.util import clock

        return clock.Span
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")
