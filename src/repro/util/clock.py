"""Virtual time for the whole simulation.

Every component that needs to "take time" advances a shared
:class:`SimClock` instead of sleeping. This keeps experiments deterministic
and lets a full multi-site CI run complete in milliseconds of wall time
while still reporting realistic virtual durations.

The clock also provides a tiny discrete-event facility: callbacks can be
scheduled at absolute virtual times and are fired in order whenever the
clock moves past them (via :meth:`advance` or :meth:`run_until`). The batch
scheduler uses this to model job start/finish events.
"""

from __future__ import annotations

import contextlib
import heapq
import itertools
from dataclasses import dataclass, field
from typing import Callable, Iterator, List, Optional, Tuple


@dataclass(order=True)
class _ScheduledEvent:
    time: float
    seq: int
    callback: Callable[[], None] = field(compare=False)
    cancelled: bool = field(default=False, compare=False)


class EventHandle:
    """Handle returned by :meth:`SimClock.call_at`; supports cancellation."""

    def __init__(self, event: _ScheduledEvent) -> None:
        self._event = event

    def cancel(self) -> None:
        """Prevent the callback from firing. Idempotent."""
        self._event.cancelled = True

    @property
    def time(self) -> float:
        return self._event.time

    @property
    def cancelled(self) -> bool:
        return self._event.cancelled


class MeasuredRegion:
    """The outcome of a :meth:`SimClock.measure` region.

    ``elapsed`` is the virtual time the region consumed. It is only
    meaningful after the region exits.

    Not to be confused with :class:`repro.telemetry.Span`: a measured
    region is a nameless cost-accounting device (no end time, no parent,
    no status), while a telemetry span is a node in a trace tree.
    """

    def __init__(self, start: float) -> None:
        self.start = start
        self.elapsed = 0.0


class SimClock:
    """A monotonically increasing virtual clock with scheduled callbacks.

    Parameters
    ----------
    start:
        Initial virtual time, in seconds. Experiments usually keep the
        default of ``0.0``; the badge-history model sets it to an epoch.
    """

    def __init__(self, start: float = 0.0) -> None:
        self._now = float(start)
        self._queue: List[_ScheduledEvent] = []
        self._counter = itertools.count()
        self._regions: List[MeasuredRegion] = []
        # Ambient telemetry: a repro.telemetry.Tracer registers itself
        # here so components reach trace context through the one object
        # every subsystem already shares. None means "not traced".
        self.tracer = None

    @property
    def now(self) -> float:
        """Current virtual time in seconds."""
        return self._now

    def call_at(self, when: float, callback: Callable[[], None]) -> EventHandle:
        """Schedule ``callback`` to run when virtual time reaches ``when``.

        Scheduling in the past is an error: the caller's bookkeeping is
        already inconsistent and silently clamping would hide the bug.
        """
        if when < self._now - 1e-9:
            raise ValueError(
                f"cannot schedule event at t={when:.6f}, clock is at {self._now:.6f}"
            )
        event = _ScheduledEvent(max(when, self._now), next(self._counter), callback)
        heapq.heappush(self._queue, event)
        return EventHandle(event)

    def call_after(self, delay: float, callback: Callable[[], None]) -> EventHandle:
        """Schedule ``callback`` ``delay`` seconds from now."""
        if delay < 0:
            raise ValueError(f"negative delay: {delay}")
        return self.call_at(self._now + delay, callback)

    def advance(self, duration: float) -> None:
        """Move the clock forward by ``duration`` seconds, firing events.

        Events scheduled within the window fire in time order, and the
        clock is set to each event's time while its callback runs, so
        callbacks observing :attr:`now` see consistent values.
        """
        if duration < 0:
            raise ValueError(f"cannot advance by negative duration: {duration}")
        self.run_until(self._now + duration)

    def run_until(self, target: float) -> None:
        """Advance to ``target``, firing all events scheduled before it."""
        if target < self._now - 1e-9:
            raise ValueError(
                f"cannot run clock backwards to {target:.6f} from {self._now:.6f}"
            )
        while self._queue and self._queue[0].time <= target + 1e-12:
            event = heapq.heappop(self._queue)
            if event.cancelled:
                continue
            self._now = max(self._now, event.time)
            event.callback()
            # a nested measure region may have rewound the clock; events
            # it consumed are gone, so the loop stays monotone
        self._now = max(self._now, target)

    def run_until_idle(self, limit: float = float("inf")) -> None:
        """Fire every pending event (events may schedule more events).

        ``limit`` bounds the final time to protect against runaway
        self-rescheduling loops.
        """
        if self._regions:
            raise RuntimeError("cannot drain events inside a measure() region")
        while self._queue:
            head = self._queue[0]
            if head.cancelled:
                heapq.heappop(self._queue)
                continue
            if head.time > limit:
                break
            self.run_until(head.time)

    @contextlib.contextmanager
    def measure(self) -> Iterator[MeasuredRegion]:
        """Run a region of code, capture its cost, and rewind the clock.

        Inside the region the clock behaves exactly as usual — the body
        advances it, scheduled events (its own batch jobs, background
        load, other tasks' dispatches) fire in time order. On exit, the
        elapsed virtual time is available as ``span.elapsed`` and the
        clock is rewound to the region's start: the caller then schedules
        a completion event ``elapsed`` seconds out instead of having
        blocked the timeline. This is what lets task bodies on different
        endpoints overlap in virtual time — each body is costed where it
        started, and only its start/finish events constrain the others.

        Regions nest: an event fired while a body advances the clock may
        dispatch another task, whose own region rewinds its cost away so
        it is never charged to the outer span.
        """
        span = MeasuredRegion(self._now)
        self._regions.append(span)
        try:
            yield span
        finally:
            self._regions.pop()
            span.elapsed = self._now - span.start
            self._now = span.start

    def pending_events(self) -> int:
        """Number of scheduled, non-cancelled events."""
        return sum(1 for e in self._queue if not e.cancelled)

    def next_event_time(self) -> Optional[float]:
        """Virtual time of the earliest pending event, or ``None``."""
        live: List[Tuple[float, int]] = [
            (e.time, e.seq) for e in self._queue if not e.cancelled
        ]
        return min(live)[0] if live else None

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"SimClock(now={self._now:.3f}, pending={self.pending_events()})"
