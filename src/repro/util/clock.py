"""Virtual time for the whole simulation.

Every component that needs to "take time" advances a shared
:class:`SimClock` instead of sleeping. This keeps experiments deterministic
and lets a full multi-site CI run complete in milliseconds of wall time
while still reporting realistic virtual durations.

The clock also provides a tiny discrete-event facility: callbacks can be
scheduled at absolute virtual times and are fired in order whenever the
clock moves past them (via :meth:`advance` or :meth:`run_until`). The batch
scheduler uses this to model job start/finish events.

Cancellation is *lazy*: a cancelled entry stays in the heap until it
reaches the head (or a compaction sweep removes it), so :meth:`call_at`,
:meth:`EventHandle.cancel`, :meth:`pending_events` and
:meth:`next_event_time` are all O(1)/O(log n) — a million-task run never
pays a linear scan per query. A live-entry counter keeps the bookkeeping
exact, and the heap is compacted whenever cancelled entries outnumber
live ones.
"""

from __future__ import annotations

import heapq
import sys
from typing import Callable, List, Optional

# compaction triggers only beyond this queue size; tiny queues never pay
_COMPACT_MIN = 64

# Recursion headroom while draining the queue. Task bodies advance the
# clock from inside measure() regions, so each task whose compute window
# overlaps another's start nests one more run_until frame set (~10
# Python frames). Under a saturating workload those chains grow with
# the backlog, and CPython's default limit of 1000 is reached mid-drain
# — worse, the RecursionError surfaces inside heappop, which has
# already removed the head entry, so the event is silently lost and
# the run's outcome starts depending on the interpreter's stack
# configuration instead of the seed. Raising the limit for the drain
# (3.11+ allocates pure-Python frames on the heap, so this is cheap)
# keeps deep cascades deterministic.
_DRAIN_RECURSION_LIMIT = 100_000


class _ScheduledEvent:
    """One scheduled callback's state. The heap itself holds
    ``(time, seq, event)`` tuples — ``seq`` is unique, so comparisons
    resolve entirely in C tuple comparison and never reach the event
    object. Heap sifts compare millions of entries in a large run; not
    paying a Python-level ``__lt__`` per comparison is worth the tuple."""

    __slots__ = ("time", "seq", "callback", "cancelled", "in_queue")

    def __init__(self, time: float, seq: int, callback: Callable[[], None]):
        self.time = time
        self.seq = seq
        self.callback = callback
        self.cancelled = False
        self.in_queue = True


class EventHandle:
    """Handle returned by :meth:`SimClock.call_at`; supports cancellation."""

    __slots__ = ("_event", "_clock")

    def __init__(self, clock: "SimClock", event: _ScheduledEvent) -> None:
        self._event = event
        self._clock = clock

    def cancel(self) -> None:
        """Prevent the callback from firing. Idempotent.

        O(1): the entry is only flagged; the heap drops it lazily when it
        surfaces, or in the next compaction sweep.
        """
        event = self._event
        if not event.cancelled:
            event.cancelled = True
            if event.in_queue:
                self._clock._note_cancelled()

    @property
    def time(self) -> float:
        return self._event.time

    @property
    def cancelled(self) -> bool:
        return self._event.cancelled


class MeasuredRegion:
    """The outcome of a :meth:`SimClock.measure` region.

    ``elapsed`` is the virtual time the region consumed. It is only
    meaningful after the region exits.

    Not to be confused with :class:`repro.telemetry.Span`: a measured
    region is a nameless cost-accounting device (no end time, no parent,
    no status), while a telemetry span is a node in a trace tree.
    """

    __slots__ = ("start", "elapsed")

    def __init__(self, start: float) -> None:
        self.start = start
        self.elapsed = 0.0


class _Measure:
    """Context manager for :meth:`SimClock.measure`.

    A plain slotted class rather than ``@contextlib.contextmanager``:
    every simulated compute call opens a region, and the generator
    protocol's per-entry overhead is measurable at millions of tasks.
    """

    __slots__ = ("_clock", "_region")

    def __init__(self, clock: "SimClock") -> None:
        self._clock = clock
        self._region: Optional[MeasuredRegion] = None

    def __enter__(self) -> MeasuredRegion:
        clock = self._clock
        region = MeasuredRegion(clock._now)
        self._region = region
        clock._regions.append(region)
        return region

    def __exit__(self, exc_type, exc, tb) -> None:
        clock = self._clock
        region = self._region
        clock._regions.pop()
        region.elapsed = clock._now - region.start
        clock._now = region.start


class SimClock:
    """A monotonically increasing virtual clock with scheduled callbacks.

    Parameters
    ----------
    start:
        Initial virtual time, in seconds. Experiments usually keep the
        default of ``0.0``; the badge-history model sets it to an epoch.
    """

    def __init__(self, start: float = 0.0) -> None:
        self._now = float(start)
        self._queue: List[tuple] = []  # (time, seq, _ScheduledEvent)
        self._seq = 0
        # cancelled entries still sitting in the heap; live count is
        # len(_queue) - _cancelled, maintained at every push/pop/cancel
        self._cancelled = 0
        self._regions: List[MeasuredRegion] = []
        # Ambient telemetry: a repro.telemetry.Tracer registers itself
        # here so components reach trace context through the one object
        # every subsystem already shares. None means "not traced".
        self.tracer = None

    @property
    def now(self) -> float:
        """Current virtual time in seconds."""
        return self._now

    @property
    def in_measured_region(self) -> bool:
        """True while a :meth:`measure` region is advancing the clock.

        Events that fire inside a region observe *speculative* time: the
        region rewinds on exit, so ``now`` may move backwards afterwards.
        Callbacks whose decision depends on "has X happened by now" (a
        hedge deadline, a watchdog) can consult this to re-arm instead of
        acting on a timeline that will be rewound.
        """
        return bool(self._regions)

    def call_at(self, when: float, callback: Callable[[], None]) -> EventHandle:
        """Schedule ``callback`` to run when virtual time reaches ``when``.

        Scheduling in the past is an error: the caller's bookkeeping is
        already inconsistent and silently clamping would hide the bug.
        """
        if when < self._now - 1e-9:
            raise ValueError(
                f"cannot schedule event at t={when:.6f}, clock is at {self._now:.6f}"
            )
        self._seq += 1
        event = _ScheduledEvent(
            when if when > self._now else self._now, self._seq, callback
        )
        heapq.heappush(self._queue, (event.time, event.seq, event))
        return EventHandle(self, event)

    def call_after(self, delay: float, callback: Callable[[], None]) -> EventHandle:
        """Schedule ``callback`` ``delay`` seconds from now."""
        if delay < 0:
            raise ValueError(f"negative delay: {delay}")
        return self.call_at(self._now + delay, callback)

    # -- lazy-deletion bookkeeping ------------------------------------------
    def _note_cancelled(self) -> None:
        """An in-queue entry was just cancelled; compact when the dead
        outnumber the living (classic lazy-deletion amortization)."""
        self._cancelled += 1
        queue = self._queue
        if self._cancelled > _COMPACT_MIN and self._cancelled * 2 > len(queue):
            self._compact()

    def _compact(self) -> None:
        """Drop every cancelled entry and re-heapify. O(live) — amortized
        free, since at least as many entries die as survive."""
        live: List[tuple] = []
        for item in self._queue:
            if item[2].cancelled:
                item[2].in_queue = False
            else:
                live.append(item)
        heapq.heapify(live)
        self._queue = live
        self._cancelled = 0

    def _peek_live(self) -> Optional[_ScheduledEvent]:
        """The earliest non-cancelled entry, popping cancelled heads."""
        queue = self._queue
        while queue:
            head = queue[0][2]
            if not head.cancelled:
                return head
            heapq.heappop(queue)
            head.in_queue = False
            self._cancelled -= 1
        return None

    def advance(self, duration: float) -> None:
        """Move the clock forward by ``duration`` seconds, firing events.

        Events scheduled within the window fire in time order, and the
        clock is set to each event's time while its callback runs, so
        callbacks observing :attr:`now` see consistent values.
        """
        if duration < 0:
            raise ValueError(f"cannot advance by negative duration: {duration}")
        self.run_until(self._now + duration)

    def run_until(self, target: float) -> None:
        """Advance to ``target``, firing all events scheduled before it."""
        if target < self._now - 1e-9:
            raise ValueError(
                f"cannot run clock backwards to {target:.6f} from {self._now:.6f}"
            )
        queue = self._queue
        limit = target + 1e-12
        while queue and queue[0][0] <= limit:
            event = heapq.heappop(queue)[2]
            event.in_queue = False
            if event.cancelled:
                self._cancelled -= 1
                continue
            if event.time > self._now:
                self._now = event.time
            event.callback()
            # a nested measure region may have rewound the clock; events
            # it consumed are gone, so the loop stays monotone
        if target > self._now:
            self._now = target

    def run_until_idle(self, limit: float = float("inf")) -> None:
        """Fire every pending event (events may schedule more events).

        ``limit`` bounds the final time to protect against runaway
        self-rescheduling loops.
        """
        if self._regions:
            raise RuntimeError("cannot drain events inside a measure() region")
        old_limit = sys.getrecursionlimit()
        if old_limit < _DRAIN_RECURSION_LIMIT:
            sys.setrecursionlimit(_DRAIN_RECURSION_LIMIT)
        try:
            while True:
                head = self._peek_live()
                if head is None or head.time > limit:
                    break
                self.run_until(head.time)
        finally:
            if old_limit < _DRAIN_RECURSION_LIMIT:
                sys.setrecursionlimit(old_limit)

    def measure(self) -> _Measure:
        """Run a region of code, capture its cost, and rewind the clock.

        Inside the region the clock behaves exactly as usual — the body
        advances it, scheduled events (its own batch jobs, background
        load, other tasks' dispatches) fire in time order. On exit, the
        elapsed virtual time is available as ``span.elapsed`` and the
        clock is rewound to the region's start: the caller then schedules
        a completion event ``elapsed`` seconds out instead of having
        blocked the timeline. This is what lets task bodies on different
        endpoints overlap in virtual time — each body is costed where it
        started, and only its start/finish events constrain the others.

        Regions nest: an event fired while a body advances the clock may
        dispatch another task, whose own region rewinds its cost away so
        it is never charged to the outer span.
        """
        return _Measure(self)

    def pending_events(self) -> int:
        """Number of scheduled, non-cancelled events. O(1)."""
        return len(self._queue) - self._cancelled

    def next_event_time(self) -> Optional[float]:
        """Virtual time of the earliest pending event, or ``None``.

        Amortized O(log n): cancelled entries at the heap head are popped
        on the way past, never rescanned.
        """
        head = self._peek_live()
        return head.time if head is not None else None

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"SimClock(now={self._now:.3f}, pending={self.pending_events()})"
