"""Payload serialization with size accounting.

Globus Compute limits the size of serialized task arguments and results
(about 10 MB at the time of the paper). We model that limit: payloads are
serialized to a JSON-like canonical text, their size measured, and the FaaS
layer rejects oversized payloads with :class:`repro.errors.PayloadTooLarge`.

Only JSON-compatible data plus tuples/bytes are supported; remote functions
in this simulation exchange plain data, mirroring how CORRECT passes shell
commands in and stdout/stderr text out.
"""

from __future__ import annotations

import base64
import json
from typing import Any

# Matches Globus Compute's documented task/result payload ceiling.
DEFAULT_PAYLOAD_LIMIT = 10 * 1024 * 1024

_INF = float("inf")
_NEG_INF = float("-inf")


def _encode(value: Any) -> Any:
    """Pre-transform values json would mis-serialize (tuples become lists
    natively, so an encoder ``default`` hook never sees them)."""
    if isinstance(value, bytes):
        return {"__bytes__": base64.b64encode(value).decode("ascii")}
    if isinstance(value, tuple):
        return {"__tuple__": [_encode(v) for v in value]}
    if isinstance(value, set):
        return {"__set__": [_encode(v) for v in sorted(value, key=repr)]}
    if isinstance(value, list):
        return [_encode(v) for v in value]
    if isinstance(value, dict):
        return {k: _encode(v) for k, v in value.items()}
    return value


def _decode_hook(obj: dict) -> Any:
    if "__bytes__" in obj and len(obj) == 1:
        return base64.b64decode(obj["__bytes__"])
    if "__tuple__" in obj and len(obj) == 1:
        return tuple(obj["__tuple__"])
    if "__set__" in obj and len(obj) == 1:
        return set(obj["__set__"])
    return obj


# json.dumps(..., sort_keys=True) constructs a fresh JSONEncoder per
# call; this one is built once and produces identical text.
_canonical_dumps = json.JSONEncoder(sort_keys=True).encode


def serialize(value: Any) -> str:
    """Serialize ``value`` to canonical text.

    Raises ``TypeError`` for objects that are not data (open handles, live
    simulation objects...) — remote task payloads must be plain data.
    """
    return _canonical_dumps(_encode(value))


def deserialize(text: str) -> Any:
    """Inverse of :func:`serialize`."""
    return json.loads(text, object_hook=_decode_hook)


_PLAIN_TYPES = (str, int, float, bool)


def serialize_call(args: tuple, kwargs: dict) -> str:
    """Canonical payload text for one function call.

    Byte-identical to ``serialize({"args": list(args), "kwargs":
    kwargs})``, but calls whose arguments are all plain scalars — the
    overwhelmingly common case — skip the recursive encode walk, since
    json renders scalars identically with or without it.
    """
    for value in args:
        if value is not None and type(value) not in _PLAIN_TYPES:
            return serialize({"args": list(args), "kwargs": kwargs})
    for value in kwargs.values():
        if value is not None and type(value) not in _PLAIN_TYPES:
            return serialize({"args": list(args), "kwargs": kwargs})
    return _canonical_dumps({"args": list(args), "kwargs": kwargs})


def serialized_size(value: Any) -> int:
    """Size in bytes of the serialized representation of ``value``."""
    # Scalars (the overwhelmingly common task result shape) need neither
    # the encode walk nor a json render: json writes finite floats and
    # ints via repr, booleans as true/false (same lengths as True/False),
    # and null for None.
    t = type(value)
    if t is float:
        if value == value and value not in (_INF, _NEG_INF):
            return len(repr(value))
        return len(json.dumps(value))  # nan/inf render as NaN/Infinity
    if t is int or t is bool:
        return len(repr(value))
    if value is None:
        return 4
    if t is str:
        return len(json.dumps(value).encode("utf-8"))
    return len(serialize(value).encode("utf-8"))
