"""Payload serialization with size accounting.

Globus Compute limits the size of serialized task arguments and results
(about 10 MB at the time of the paper). We model that limit: payloads are
serialized to a JSON-like canonical text, their size measured, and the FaaS
layer rejects oversized payloads with :class:`repro.errors.PayloadTooLarge`.

Only JSON-compatible data plus tuples/bytes are supported; remote functions
in this simulation exchange plain data, mirroring how CORRECT passes shell
commands in and stdout/stderr text out.
"""

from __future__ import annotations

import base64
import json
from typing import Any

# Matches Globus Compute's documented task/result payload ceiling.
DEFAULT_PAYLOAD_LIMIT = 10 * 1024 * 1024


def _encode(value: Any) -> Any:
    """Pre-transform values json would mis-serialize (tuples become lists
    natively, so an encoder ``default`` hook never sees them)."""
    if isinstance(value, bytes):
        return {"__bytes__": base64.b64encode(value).decode("ascii")}
    if isinstance(value, tuple):
        return {"__tuple__": [_encode(v) for v in value]}
    if isinstance(value, set):
        return {"__set__": [_encode(v) for v in sorted(value, key=repr)]}
    if isinstance(value, list):
        return [_encode(v) for v in value]
    if isinstance(value, dict):
        return {k: _encode(v) for k, v in value.items()}
    return value


def _decode_hook(obj: dict) -> Any:
    if "__bytes__" in obj and len(obj) == 1:
        return base64.b64decode(obj["__bytes__"])
    if "__tuple__" in obj and len(obj) == 1:
        return tuple(obj["__tuple__"])
    if "__set__" in obj and len(obj) == 1:
        return set(obj["__set__"])
    return obj


def serialize(value: Any) -> str:
    """Serialize ``value`` to canonical text.

    Raises ``TypeError`` for objects that are not data (open handles, live
    simulation objects...) — remote task payloads must be plain data.
    """
    return json.dumps(_encode(value), sort_keys=True)


def deserialize(text: str) -> Any:
    """Inverse of :func:`serialize`."""
    return json.loads(text, object_hook=_decode_hook)


def serialized_size(value: Any) -> int:
    """Size in bytes of the serialized representation of ``value``."""
    return len(serialize(value).encode("utf-8"))
