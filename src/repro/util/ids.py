"""Deterministic identifier generation.

Real Globus Compute and GitHub use random UUIDs. For reproducible
experiments we derive UUID-shaped identifiers from a seeded counter (via
:class:`IdFactory`) or from stable names (via :func:`deterministic_uuid`),
so two runs of the same experiment produce identical ids, logs, and
provenance records.
"""

from __future__ import annotations

import hashlib


def deterministic_uuid(*parts: str) -> str:
    """Return a UUIDv5-style identifier derived from ``parts``.

    The same parts always yield the same UUID, which makes provenance
    records stable across runs. Formats the digest by hand instead of
    round-tripping through :class:`uuid.UUID` — every task id in a
    million-task run passes through here, and the output is verified
    identical to ``str(uuid.UUID(bytes=digest[:16], version=5))``.
    """
    if not parts:
        raise ValueError("deterministic_uuid requires at least one part")
    digest = bytearray(
        hashlib.sha256("\x1f".join(parts).encode("utf-8")).digest()[:16]
    )
    digest[6] = (digest[6] & 0x0F) | 0x50  # version 5 nibble
    digest[8] = (digest[8] & 0x3F) | 0x80  # RFC 4122 variant
    h = digest.hex()
    return f"{h[:8]}-{h[8:12]}-{h[12:16]}-{h[16:20]}-{h[20:]}"


class IdFactory:
    """Generates sequential, namespaced identifiers.

    ``IdFactory("task")`` produces ``task-000001``, ``task-000002``, ... and
    :meth:`uuid` produces UUIDs derived from the namespace and counter.
    """

    def __init__(self, namespace: str, seed: int = 0) -> None:
        if not namespace:
            raise ValueError("namespace must be non-empty")
        self.namespace = namespace
        self._counter = seed

    def next_id(self) -> str:
        """Return the next human-readable sequential id."""
        self._counter += 1
        return f"{self.namespace}-{self._counter:06d}"

    def uuid(self) -> str:
        """Return the next deterministic UUID in this namespace."""
        self._counter += 1
        return deterministic_uuid(self.namespace, str(self._counter))

    @property
    def count(self) -> int:
        """How many ids have been issued."""
        return self._counter
