"""A small YAML-subset parser for workflow and suite files.

GitHub Actions workflows are YAML. PyYAML is not available offline, so this
module implements the subset that workflow documents actually use:

* nested block mappings (two-space indentation)
* block sequences (``- item`` and ``- key: value`` compound entries)
* flow sequences (``[a, b, c]``, nesting allowed) and flow mappings
  (``{a: 1}``)
* scalars: int, float, bool (``true``/``false``), null (``null``/``~``),
  single/double-quoted strings, plain strings
* quoted keys (``"a: b": 1``), in both block and flow mappings
* comments (``#`` to end of line, outside quotes)
* literal block scalars (``key: |`` followed by an indented block)
* the GitHub-ism where ``on:`` parses as a key (we do not convert to bool
  in key position)

Not supported (raises :class:`repro.errors.YamliteError`, which names the
offending 1-based source line): anchors, aliases, tags, multi-document
streams, folded scalars, tab indentation.
"""

from __future__ import annotations

from typing import Any, List, Optional, Tuple

from repro.errors import YamliteError

# (indent, content, lineno); indent == -1 marks a blank/comment-only line
_Line = Tuple[int, str, int]


def loads(text: str) -> Any:
    """Parse a YAML-subset document into Python data."""
    lines = _strip_comments(text)
    parser = _Parser(lines)
    value = parser.parse_block(0)
    parser.expect_end()
    return value


def _strip_comments(text: str) -> List[_Line]:
    """Return (indent, content, lineno) for each significant line.

    Comments are removed unless the ``#`` sits inside quotes. Blank lines
    are kept (marked ``indent=-1``) because literal-block bodies re-read
    them; line numbers are 1-based for error messages.
    """
    out: List[_Line] = []
    for lineno, raw in enumerate(text.splitlines(), start=1):
        if "\t" in raw[: len(raw) - len(raw.lstrip())]:
            raise YamliteError("tab indentation is not supported", line=lineno)
        stripped = _cut_comment(raw)
        if not stripped.strip():
            out.append((-1, raw, lineno))  # keep raw for literal blocks
            continue
        indent = len(stripped) - len(stripped.lstrip(" "))
        out.append((indent, stripped.rstrip(), lineno))
    return out


def _cut_comment(line: str) -> str:
    quote: Optional[str] = None
    for i, ch in enumerate(line):
        if quote:
            if ch == quote:
                quote = None
        elif ch in "'\"":
            quote = ch
        elif ch == "#" and (i == 0 or line[i - 1] in " \t"):
            return line[:i]
    return line


class _Parser:
    def __init__(self, lines: List[_Line]) -> None:
        self._lines = lines
        self._pos = 0

    # -- cursor helpers ----------------------------------------------------
    def _peek(self) -> Optional[_Line]:
        while self._pos < len(self._lines) and self._lines[self._pos][0] == -1:
            self._pos += 1
        if self._pos >= len(self._lines):
            return None
        return self._lines[self._pos]

    def _next(self) -> _Line:
        item = self._peek()
        if item is None:
            last = self._lines[-1][2] if self._lines else 0
            raise YamliteError("unexpected end of document", line=last)
        self._pos += 1
        return item

    def expect_end(self) -> None:
        item = self._peek()
        if item is not None:
            _, line, lineno = item
            raise YamliteError(
                f"trailing content: {line.strip()!r}", line=lineno
            )

    # -- block parsing -----------------------------------------------------
    def parse_block(self, indent: int) -> Any:
        """Parse a block (mapping or sequence) at exactly ``indent``."""
        item = self._peek()
        if item is None:
            return None
        line_indent, line, _ = item
        if line_indent < indent:
            return None
        content = line.strip()
        if content.startswith("- ") or content == "-":
            return self._parse_sequence(line_indent)
        return self._parse_mapping(line_indent)

    def _parse_sequence(self, indent: int) -> List[Any]:
        result: List[Any] = []
        while True:
            item = self._peek()
            if item is None or item[0] != indent:
                break
            line_indent, line, lineno = item
            content = line.strip()
            if not (content.startswith("- ") or content == "-"):
                break
            self._next()
            rest = content[1:].strip()
            if not rest:
                child = self.parse_block(indent + 2)
                result.append(child)
            elif _looks_like_mapping_entry(rest):
                # Compound entry: "- key: value" plus continuation lines
                # indented deeper than the dash.
                entry = self._parse_inline_mapping_entry(
                    rest, indent + 2, lineno
                )
                result.append(entry)
            else:
                result.append(_parse_scalar(rest, lineno))
        return result

    def _parse_inline_mapping_entry(
        self, first: str, indent: int, lineno: int
    ) -> Any:
        key, _, value_text = _split_mapping(first, lineno)
        mapping = {}
        mapping[key] = self._value_for(value_text, indent, lineno)
        # continuation keys at `indent`
        while True:
            item = self._peek()
            if item is None or item[0] != indent:
                break
            content = item[1].strip()
            entry_lineno = item[2]
            if content.startswith("- ") or content == "-":
                break
            if not _looks_like_mapping_entry(content):
                break
            self._next()
            k, _, v = _split_mapping(content, entry_lineno)
            if k in mapping:
                raise YamliteError(f"duplicate key {k!r}", line=entry_lineno)
            mapping[k] = self._value_for(v, indent + 2, entry_lineno)
        return mapping

    def _parse_mapping(self, indent: int) -> dict:
        result: dict = {}
        while True:
            item = self._peek()
            if item is None or item[0] != indent:
                break
            line_indent, line, lineno = item
            content = line.strip()
            if content.startswith("- ") or content == "-":
                raise YamliteError(
                    f"sequence item in mapping context: {content!r}",
                    line=lineno,
                )
            if not _looks_like_mapping_entry(content):
                raise YamliteError(
                    f"expected 'key: value', got {content!r}", line=lineno
                )
            self._next()
            key, _, value_text = _split_mapping(content, lineno)
            if key in result:
                raise YamliteError(f"duplicate key {key!r}", line=lineno)
            result[key] = self._value_for(value_text, indent + 2, lineno)
        return result

    def _value_for(self, value_text: str, child_indent: int, lineno: int) -> Any:
        value_text = value_text.strip()
        if value_text == "|" or value_text == "|-":
            return self._parse_literal_block(child_indent, chomp=value_text == "|-")
        if value_text:
            return _parse_scalar(value_text, lineno)
        # empty value: nested block or null
        item = self._peek()
        if item is not None and item[0] >= child_indent:
            return self.parse_block(item[0])
        return None

    def _parse_literal_block(self, min_indent: int, chomp: bool) -> str:
        """Collect raw lines more-indented than the parent key."""
        collected: List[str] = []
        block_indent: Optional[int] = None
        while self._pos < len(self._lines):
            line_indent, line, _ = self._lines[self._pos]
            if line_indent == -1:
                collected.append("")
                self._pos += 1
                continue
            if line_indent < min_indent:
                break
            if block_indent is None:
                block_indent = line_indent
            collected.append(line[block_indent:])
            self._pos += 1
        while collected and not collected[-1]:
            collected.pop()
        body = "\n".join(collected)
        return body if chomp else body + "\n"


def _looks_like_mapping_entry(content: str) -> bool:
    key, sep, _ = _try_split_mapping(content)
    return sep


def _try_split_mapping(content: str) -> Tuple[str, bool, str]:
    quote: Optional[str] = None
    depth = 0
    for i, ch in enumerate(content):
        if quote:
            if ch == quote:
                quote = None
        elif ch in "'\"":
            quote = ch
        elif ch in "[{":
            depth += 1
        elif ch in "]}":
            depth -= 1
        elif ch == ":" and depth == 0:
            if i + 1 == len(content) or content[i + 1] in " \t":
                return content[:i].strip(), True, content[i + 1 :].strip()
    return content, False, ""


def _split_mapping(content: str, lineno: Optional[int] = None) -> Tuple[str, bool, str]:
    key, ok, value = _try_split_mapping(content)
    if not ok:
        raise YamliteError(f"not a mapping entry: {content!r}", line=lineno)
    if key.startswith(("'", '"')) and key.endswith(key[0]) and len(key) >= 2:
        key = key[1:-1]
    return key, ok, value


def _parse_scalar(text: str, lineno: Optional[int] = None) -> Any:
    text = text.strip()
    if text.startswith("[") and text.endswith("]"):
        return [_parse_scalar(p, lineno) for p in _split_flow(text[1:-1])]
    if text.startswith("{") and text.endswith("}"):
        result = {}
        for part in _split_flow(text[1:-1]):
            if not part:
                continue
            k, ok, v = _try_split_mapping(part)
            if not ok:
                raise YamliteError(
                    f"bad flow mapping entry: {part!r}", line=lineno
                )
            if k.startswith(("'", '"')) and len(k) >= 2 and k.endswith(k[0]):
                k = k[1:-1]
            result[k] = _parse_scalar(v, lineno)
        return result
    if text.startswith("'") and text.endswith("'") and len(text) >= 2:
        return text[1:-1].replace("''", "'")
    if text.startswith('"') and text.endswith('"') and len(text) >= 2:
        return _unescape(text[1:-1])
    lowered = text.lower()
    if lowered in ("true", "yes", "on"):
        return True
    if lowered in ("false", "no", "off"):
        return False
    if lowered in ("null", "~", ""):
        return None
    try:
        return int(text)
    except ValueError:
        pass
    try:
        return float(text)
    except ValueError:
        pass
    return text


def _split_flow(body: str) -> List[str]:
    parts: List[str] = []
    depth = 0
    quote: Optional[str] = None
    current = []
    for ch in body:
        if quote:
            current.append(ch)
            if ch == quote:
                quote = None
        elif ch in "'\"":
            quote = ch
            current.append(ch)
        elif ch in "[{":
            depth += 1
            current.append(ch)
        elif ch in "]}":
            depth -= 1
            current.append(ch)
        elif ch == "," and depth == 0:
            parts.append("".join(current).strip())
            current = []
        else:
            current.append(ch)
    tail = "".join(current).strip()
    if tail:
        parts.append(tail)
    return parts


def _unescape(text: str) -> str:
    return (
        text.replace("\\n", "\n")
        .replace("\\t", "\t")
        .replace('\\"', '"')
        .replace("\\\\", "\\")
    )
