"""Resource providers: how an executor obtains nodes."""

from __future__ import annotations

import abc
from dataclasses import dataclass
from typing import Callable, List, Optional

from repro.errors import ExecutorError
from repro.faults.injector import injector_of
from repro.scheduler.jobs import Job, JobState
from repro.scheduler.nodes import Node
from repro.sites.site import Site


@dataclass
class Block:
    """One provisioned allocation: nodes plus lifecycle bookkeeping."""

    nodes: List[Node]
    node_class: str
    job_id: Optional[str] = None  # batch job backing this block, if any
    active: bool = True
    started_at: float = 0.0
    queue_wait: float = 0.0


class Provider(abc.ABC):
    """Provisions blocks of nodes on a site for one user."""

    def __init__(self, site: Site, user: str) -> None:
        self.site = site
        self.user = user

    @abc.abstractmethod
    def start_block(self) -> Block:
        """Provision one block, advancing virtual time until it is usable."""

    @abc.abstractmethod
    def start_block_async(
        self,
        on_ready: Callable[[Block], None],
        on_error: Optional[Callable[[BaseException], None]] = None,
    ) -> None:
        """Provision one block without blocking virtual time.

        ``on_ready(block)`` fires (via a clock event or a scheduler
        start callback) once the block is usable. Unlike
        :meth:`start_block`, the caller's timeline is not advanced:
        provisioning delay on one site overlaps with work everywhere
        else. A provisioning failure (an armed provision flake) goes to
        ``on_error(exc)``; with no handler it raises.
        """

    def _provision_fault(self) -> Optional[BaseException]:
        """Armed provision flake for this site, if any (else ``None``)."""
        return injector_of(self.site.clock).provision_error_for(self.site.name)

    @abc.abstractmethod
    def release_block(self, block: Block) -> None:
        """Return the block's resources."""

    @property
    @abc.abstractmethod
    def node_class(self) -> str:
        """Node class blocks run on ('login' or 'compute')."""


class LocalProvider(Provider):
    """Runs on the login node itself — no scheduler involved.

    Used for operations that need outbound network on restricted sites
    (cloning the repository, §6.1) and for login-node test suites like
    PSI/J's (§6.2). ``startup_overhead`` models process spin-up.
    """

    def __init__(self, site: Site, user: str, startup_overhead: float = 2.0) -> None:
        super().__init__(site, user)
        self.startup_overhead = startup_overhead

    @property
    def node_class(self) -> str:
        return "login"

    def _make_block(self) -> Block:
        return Block(
            nodes=[self.site.login_nodes[0]],
            node_class="login",
            started_at=self.site.clock.now,
            queue_wait=0.0,
        )

    def start_block(self) -> Block:
        fault = self._provision_fault()
        if fault is not None:
            raise fault
        self.site.clock.advance(self.startup_overhead)
        return self._make_block()

    def start_block_async(
        self,
        on_ready: Callable[[Block], None],
        on_error: Optional[Callable[[BaseException], None]] = None,
    ) -> None:
        fault = self._provision_fault()
        if fault is not None:
            if on_error is None:
                raise fault
            on_error(fault)
            return
        self.site.clock.call_after(
            self.startup_overhead, lambda: on_ready(self._make_block())
        )

    def release_block(self, block: Block) -> None:
        block.active = False


class SlurmProvider(Provider):
    """Provisions blocks through the site's batch scheduler.

    Submits an open-ended pilot job and advances virtual time until the
    scheduler starts it; the queue wait is recorded on the block so
    experiments can report it separately from execution time.
    """

    def __init__(
        self,
        site: Site,
        user: str,
        partition: str,
        nodes_per_block: int = 1,
        walltime: float = 3600.0,
    ) -> None:
        super().__init__(site, user)
        if not site.has_scheduler:
            raise ExecutorError(
                f"site {site.name} has no batch scheduler; use LocalProvider"
            )
        self.partition = partition
        self.nodes_per_block = nodes_per_block
        self.walltime = walltime

    @property
    def node_class(self) -> str:
        return "compute"

    def _pilot_job(self) -> Job:
        return Job(
            user=self.user,
            partition=self.partition,
            num_nodes=self.nodes_per_block,
            walltime=self.walltime,
            duration=None,  # pilot: open-ended
            name=f"pilot-{self.user}",
        )

    def _block_from_job(self, job: Job) -> Block:
        return Block(
            nodes=list(job.allocated_nodes),
            node_class="compute",
            job_id=job.job_id,
            started_at=self.site.clock.now,
            queue_wait=job.queue_wait or 0.0,
        )

    def start_block(self) -> Block:
        fault = self._provision_fault()
        if fault is not None:
            raise fault
        scheduler = self.site.scheduler
        assert scheduler is not None
        job = self._pilot_job()
        job_id = scheduler.submit(job)
        scheduler.wait_for_start(job_id)
        if job.state is not JobState.RUNNING:
            raise ExecutorError(
                f"pilot job {job_id} did not start (state {job.state.value})"
            )
        return self._block_from_job(job)

    def start_block_async(
        self,
        on_ready: Callable[[Block], None],
        on_error: Optional[Callable[[BaseException], None]] = None,
    ) -> None:
        """Submit the pilot and hand the block over when the job starts.

        Uses the scheduler's :meth:`notify_start` completion callback, so
        the queue wait is spent as pending events on the shared clock —
        other endpoints keep dispatching while this pilot queues.
        """
        fault = self._provision_fault()
        if fault is not None:
            if on_error is None:
                raise fault
            on_error(fault)
            return
        scheduler = self.site.scheduler
        assert scheduler is not None
        job = self._pilot_job()
        job_id = scheduler.submit(job)
        scheduler.notify_start(
            job_id, lambda started: on_ready(self._block_from_job(started))
        )

    def release_block(self, block: Block) -> None:
        if block.job_id is not None:
            scheduler = self.site.scheduler
            assert scheduler is not None
            job = scheduler.job(block.job_id)
            if job.state is JobState.RUNNING:
                scheduler.complete(block.job_id)
        block.active = False
