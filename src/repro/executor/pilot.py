"""The pilot executor: run tasks on provisioned blocks."""

from __future__ import annotations

from typing import Any, Callable, Optional

from repro.errors import ExecutorError, WalltimeExceeded
from repro.executor.providers import Block, Provider
from repro.scheduler.jobs import JobState
from repro.sites.site import NodeHandle


class PilotExecutor:
    """Executes functions on a pilot block, provisioning lazily.

    The first :meth:`submit` pays block-provisioning cost (queue wait on
    batch sites); subsequent tasks reuse the warm block — the amortization
    the paper credits for "the benefits of adopting a FaaS based model"
    on short tests (§6.1).
    """

    def __init__(self, provider: Provider, user: Optional[str] = None) -> None:
        self.provider = provider
        self.user = user or provider.user
        self._block: Optional[Block] = None
        self.tasks_run = 0
        self.total_queue_wait = 0.0
        self.blocks_started = 0

    @property
    def site(self):
        return self.provider.site

    def ensure_block(self) -> Block:
        """Provision a block if none is active; returns the live block."""
        if self._block is not None and self._block.active:
            if self._block_job_alive():
                return self._block
            self._block.active = False
        self._block = self.provider.start_block()
        self.blocks_started += 1
        self.total_queue_wait += self._block.queue_wait
        return self._block

    def _block_job_alive(self) -> bool:
        block = self._block
        assert block is not None
        if block.job_id is None:
            return True
        scheduler = self.site.scheduler
        assert scheduler is not None
        return scheduler.job(block.job_id).state is JobState.RUNNING

    def node_handle(self) -> NodeHandle:
        """A handle on the first node of the (ensured) block."""
        block = self.ensure_block()
        node = block.nodes[0]
        if block.node_class == "login":
            return self.site.login_handle(self.user)
        return self.site.compute_handle(self.user, node)

    def submit(self, fn: Callable[[NodeHandle], Any]) -> Any:
        """Run ``fn(handle)`` on the pilot; returns its result.

        If the backing batch job dies mid-task (walltime), raises
        :class:`WalltimeExceeded` — the payload would have been killed.
        """
        block = self.ensure_block()
        handle = self.node_handle()
        self.tasks_run += 1
        result = fn(handle)
        if block.job_id is not None:
            scheduler = self.site.scheduler
            assert scheduler is not None
            state = scheduler.job(block.job_id).state
            if state is JobState.TIMEOUT:
                raise WalltimeExceeded(
                    f"pilot {block.job_id} hit walltime during task"
                )
            if state not in (JobState.RUNNING,):
                raise ExecutorError(
                    f"pilot {block.job_id} ended ({state.value}) during task"
                )
        return result

    def shutdown(self) -> None:
        """Release the block (completes the pilot batch job)."""
        if self._block is not None and self._block.active:
            self.provider.release_block(self._block)
        self._block = None

    @property
    def has_active_block(self) -> bool:
        return self._block is not None and self._block.active
