"""The pilot executor: run tasks on provisioned blocks."""

from __future__ import annotations

from typing import Any, Callable, Optional

from repro.errors import (
    CoordinatorCrashed,
    ExecutorError,
    NodePreempted,
    ReproError,
    WalltimeExceeded,
)
from repro.executor.providers import Block, Provider
from repro.scheduler.jobs import JobState
from repro.sites.site import NodeHandle
from repro.telemetry import tracer_of


class PilotExecutor:
    """Executes functions on a pilot block, provisioning lazily.

    The first :meth:`submit` pays block-provisioning cost (queue wait on
    batch sites); subsequent tasks reuse the warm block — the amortization
    the paper credits for "the benefits of adopting a FaaS based model"
    on short tests (§6.1).

    Two submission paths share the same accounting:

    * :meth:`submit` — blocking in virtual time; provisioning and the
      task body advance the shared clock inline.
    * :meth:`submit_async` — deferred; provisioning is a scheduled event
      (queue wait becomes pending clock events, overlapping with work on
      other executors) and the task body is costed in a
      :meth:`~repro.util.clock.SimClock.measure` region, with completion
      delivered by callback at ``start + elapsed``.
    """

    def __init__(self, provider: Provider, user: Optional[str] = None) -> None:
        self.provider = provider
        self.user = user or provider.user
        self._block: Optional[Block] = None
        self._provisioning = False
        self._ready_waiters: list = []
        # (node, handle) of the last task: handles are stateless triples,
        # so reusing one across the thousands of tasks a warm block runs
        # is free — and building one per task is not
        self._handle_cache: Optional[tuple] = None
        self.tasks_run = 0
        self.total_queue_wait = 0.0
        self.blocks_started = 0

    @property
    def site(self):
        return self.provider.site

    def _adopt_block(self, block: Block) -> Block:
        """Record one provisioned block — first provision *or* re-provision
        after a dead block both land here, so ``total_queue_wait`` always
        reflects every queue wait actually paid."""
        self._block = block
        self.blocks_started += 1
        self.total_queue_wait += block.queue_wait
        self.site.events.emit(
            self.site.clock.now, "executor", "block.provisioned",
            site=self.site.name, user=self.user,
            node_class=block.node_class, job_id=block.job_id or "",
            queue_wait=block.queue_wait,
        )
        return block

    def _live_block(self) -> Optional[Block]:
        """The current block if it is still usable, else None."""
        if self._block is None or not self._block.active:
            return None
        if self._block_job_alive():
            return self._block
        self._block.active = False
        return None

    def ensure_block(self) -> Block:
        """Provision a block if none is active; returns the live block."""
        block = self._live_block()
        if block is not None:
            return block
        return self._adopt_block(self.provider.start_block())

    def ensure_block_async(
        self,
        on_ready: Callable[[Block], None],
        on_error: Optional[Callable[[BaseException], None]] = None,
    ) -> None:
        """Event-driven :meth:`ensure_block`: ``on_ready(block)`` fires once
        a live block exists, without advancing the caller's timeline.

        Concurrent callers while a provision is in flight queue up and
        share the one new block — one pilot job, not one per waiter. A
        provisioning failure fans out to every waiter's ``on_error``
        (raising for waiters that passed none).
        """
        block = self._live_block()
        if block is not None:
            on_ready(block)
            return
        self._ready_waiters.append((on_ready, on_error))
        if self._provisioning:
            return
        self._provisioning = True

        def adopted(new_block: Block) -> None:
            self._provisioning = False
            self._adopt_block(new_block)
            waiters, self._ready_waiters = self._ready_waiters, []
            for ready, _ in waiters:
                ready(new_block)

        def failed(error: BaseException) -> None:
            self._provisioning = False
            waiters, self._ready_waiters = self._ready_waiters, []
            for _, err_cb in waiters:
                if err_cb is None:
                    raise error
                err_cb(error)

        self.provider.start_block_async(adopted, failed)

    def _block_job_alive(self) -> bool:
        block = self._block
        assert block is not None
        if block.job_id is None:
            return True
        scheduler = self.site.scheduler
        assert scheduler is not None
        return scheduler.job(block.job_id).state is JobState.RUNNING

    def _handle_for(self, block: Block) -> NodeHandle:
        node = block.nodes[0]
        cached = self._handle_cache
        if cached is not None and cached[0] is node:
            return cached[1]
        if block.node_class == "login":
            handle = self.site.login_handle(self.user)
        else:
            handle = self.site.compute_handle(self.user, node)
        self._handle_cache = (node, handle)
        return handle

    def node_handle(self) -> NodeHandle:
        """A handle on the first node of the (ensured) block."""
        return self._handle_for(self.ensure_block())

    def _check_block_job(self, block: Block) -> None:
        """Raise if the backing batch job died under the task."""
        if block.job_id is None:
            return
        scheduler = self.site.scheduler
        assert scheduler is not None
        state = scheduler.job(block.job_id).state
        if state is JobState.TIMEOUT:
            raise WalltimeExceeded(
                f"pilot {block.job_id} hit walltime during task"
            )
        if state is JobState.PREEMPTED:
            raise NodePreempted(
                f"pilot {block.job_id} was preempted during task"
            )
        if state not in (JobState.RUNNING,):
            raise ExecutorError(
                f"pilot {block.job_id} ended ({state.value}) during task"
            )

    def submit(self, fn: Callable[[NodeHandle], Any]) -> Any:
        """Run ``fn(handle)`` on the pilot; returns its result.

        If the backing batch job dies mid-task (walltime), raises
        :class:`WalltimeExceeded` — the payload would have been killed.
        """
        block = self.ensure_block()
        handle = self._handle_for(block)
        self.tasks_run += 1
        with tracer_of(self.site.clock).span(
            f"node:{handle.node.name}", kind="node",
            site=self.site.name, node=handle.node.name,
            node_class=block.node_class, user=self.user,
        ):
            result = fn(handle)
        self._check_block_job(block)
        return result

    def submit_async(
        self,
        fn: Callable[[NodeHandle], Any],
        on_done: Callable[[Any, Optional[BaseException]], None],
    ) -> None:
        """Run ``fn(handle)`` without blocking virtual time.

        ``on_done(result, error)`` fires at the task's virtual completion
        time. The body runs in a measure region when the block becomes
        ready: its cost is captured as a span and charged via a scheduled
        completion event, so bodies on other executors occupy the same
        virtual interval.
        """
        clock = self.site.clock
        tracer = tracer_of(clock)
        # block-ready fires from an arbitrary scheduled event; carry the
        # submitter's trace context across that boundary explicitly
        ctx = tracer.current()

        def on_block(block: Block) -> None:
            handle = self._handle_for(block)
            self.tasks_run += 1
            if tracer.enabled:
                node_span = tracer.start_span(
                    f"node:{handle.node.name}", parent=ctx, kind="node",
                    site=self.site.name, node=handle.node.name,
                    node_class=block.node_class, user=self.user,
                    queue_wait=block.queue_wait,
                )
            else:
                node_span = tracer.start_span("node")
            result: Any = None
            error: Optional[BaseException] = None
            with clock.measure() as span:
                with tracer.activate(node_span.context):
                    try:
                        result = fn(handle)
                    except CoordinatorCrashed:
                        # a crash planted in the journal fires while the
                        # body drives the clock — it is the coordinator
                        # dying, not this task failing; unwind everything
                        raise
                    except RecursionError:
                        # the interpreter ran out of stack, not the task:
                        # recording it as a task failure would silently
                        # corrupt the drain (events already popped above
                        # this frame never fire). Let it crash the run.
                        raise
                    except BaseException as exc:  # noqa: BLE001 - remote user code
                        error = exc
                # sealed *inside* the measure region, where now is still
                # start + elapsed — after exit the clock rewinds, and the
                # span would collapse to zero duration
                tracer.end_span(
                    node_span,
                    status="ok" if error is None else "error",
                    error=(
                        "" if error is None
                        else f"{type(error).__name__}: {error}"
                    ),
                )

            def finish() -> None:
                err = error
                if err is None:
                    try:
                        self._check_block_job(block)
                    except ReproError as exc:
                        err = exc
                on_done(None if err is not None else result, err)

            clock.call_after(span.elapsed, finish)

        self.ensure_block_async(on_block, lambda err: on_done(None, err))

    def shutdown(self) -> None:
        """Release the block (completes the pilot batch job)."""
        if self._block is not None and self._block.active:
            self.provider.release_block(self._block)
            self.site.events.emit(
                self.site.clock.now, "executor", "block.released",
                site=self.site.name, user=self.user,
                job_id=self._block.job_id or "",
            )
        self._block = None

    @property
    def has_active_block(self) -> bool:
        return self._block is not None and self._block.active
