"""Pilot-job execution (Parsl-style).

Globus Compute endpoints use Parsl to provision resources through
*providers* and run tasks on long-lived *pilot* allocations instead of
requesting an allocation per task (paper §5.1, §7.3). A
:class:`LocalProvider` runs directly on the login node; a
:class:`SlurmProvider` submits an open-ended batch job and waits for it to
start — paying the queue wait once, after which tasks on the pilot are
cheap. The ablation benchmark quantifies exactly this amortization.
"""

from repro.executor.providers import Provider, LocalProvider, SlurmProvider, Block
from repro.executor.pilot import PilotExecutor

__all__ = ["Provider", "LocalProvider", "SlurmProvider", "Block", "PilotExecutor"]
