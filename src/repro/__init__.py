"""repro: a full working reproduction of *Addressing Reproducibility
Challenges in HPC with Continuous Integration* (SC 2025).

The package implements the paper's contribution — the **CORRECT** GitHub
Action for remote reproducibility testing on HPC through a federated FaaS
platform — together with every substrate it needs, as faithful executable
simulations: a hosting service with environment-gated secrets, a workflow
engine, OAuth-style auth with identity mapping, FaaS endpoints
(single-user and multi-user), a batch scheduler with backfill, site
models of the four evaluation systems, a simulated shell/conda/container
stack, provenance capture, and the reproducibility badge process.

Quick start::

    from repro.experiments import run_fig4
    result = run_fig4()
    print(result.durations["chameleon"])

See ``DESIGN.md`` for the system inventory and ``EXPERIMENTS.md`` for
paper-vs-measured results.
"""

from repro.world import World, WorldUser
from repro.core import (
    CorrectAction,
    CorrectInputs,
    CORRECT_REFERENCE,
    WorkflowBuilder,
    evaluate_repeatability,
)

__version__ = "1.0.0"

__all__ = [
    "World",
    "WorldUser",
    "CorrectAction",
    "CorrectInputs",
    "CORRECT_REFERENCE",
    "WorkflowBuilder",
    "evaluate_repeatability",
    "__version__",
]
