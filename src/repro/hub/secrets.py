"""Secrets at organization, repository, and environment scope.

The paper's security design (§5.2) hinges on GitHub's actual semantics:

* secrets cannot be scoped to individual *users* — only to org, repo, or
  environment;
* environment secrets can be gated behind required reviewers;
* secret values are write-only through the API (masked in logs).

:class:`SecretStore` implements the scope resolution: environment secrets
shadow repository secrets, which shadow organization secrets.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List

from repro.errors import SecretNotFound


@dataclass
class Secret:
    """A named secret value with provenance of who set it."""

    name: str
    value: str
    scope: str  # "organization" | "repository" | "environment:<name>"
    set_by: str = ""

    def masked(self) -> str:
        return "***"


class SecretStore:
    """One scope's worth of secrets."""

    def __init__(self, scope: str) -> None:
        self.scope = scope
        self._secrets: Dict[str, Secret] = {}
        self.access_log: List[str] = []

    def set(self, name: str, value: str, set_by: str = "") -> None:
        if not name or not name.replace("_", "").isalnum():
            raise ValueError(f"bad secret name {name!r}")
        self._secrets[name.upper()] = Secret(
            name=name.upper(), value=value, scope=self.scope, set_by=set_by
        )

    def get(self, name: str) -> Secret:
        try:
            secret = self._secrets[name.upper()]
        except KeyError:
            raise SecretNotFound(
                f"no secret {name!r} in scope {self.scope}"
            ) from None
        self.access_log.append(name.upper())
        return secret

    def has(self, name: str) -> bool:
        return name.upper() in self._secrets

    def names(self) -> List[str]:
        return sorted(self._secrets)

    def delete(self, name: str) -> None:
        self._secrets.pop(name.upper(), None)


def resolve_secrets(stores: List[SecretStore]) -> Dict[str, str]:
    """Merge stores lowest-precedence-first into a flat name→value map."""
    merged: Dict[str, str] = {}
    for store in stores:
        for name in store.names():
            merged[name] = store.get(name).value
    return merged
