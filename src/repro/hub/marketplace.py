"""The action marketplace.

Resolves ``uses: owner/action@ref`` step references to executable action
implementations. CORRECT publishes itself here as
``globus-labs/correct@v1`` (the paper's marketplace listing).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

from repro.errors import UnknownActionError


@dataclass
class ActionMetadata:
    """Marketplace listing for one action version."""

    reference: str  # "owner/name@ref"
    description: str = ""
    inputs: Dict[str, str] = field(default_factory=dict)  # name -> help
    required_inputs: List[str] = field(default_factory=list)


class Marketplace:
    """Registry of published actions.

    An implementation is any object with a
    ``run(step_context) -> StepOutcome`` method (see
    :mod:`repro.actions.engine`).
    """

    def __init__(self) -> None:
        self._actions: Dict[str, object] = {}
        self._metadata: Dict[str, ActionMetadata] = {}

    def publish(
        self,
        reference: str,
        implementation: object,
        metadata: Optional[ActionMetadata] = None,
    ) -> None:
        if "@" not in reference or "/" not in reference.split("@")[0]:
            raise ValueError(
                f"action reference must be 'owner/name@ref', got {reference!r}"
            )
        if not hasattr(implementation, "run"):
            raise TypeError("action implementation must define run(step_context)")
        self._actions[reference] = implementation
        self._metadata[reference] = metadata or ActionMetadata(reference=reference)

    def resolve(self, reference: str) -> object:
        try:
            return self._actions[reference]
        except KeyError:
            raise UnknownActionError(
                f"no marketplace action {reference!r} "
                f"(published: {sorted(self._actions)})"
            ) from None

    def metadata(self, reference: str) -> ActionMetadata:
        try:
            return self._metadata[reference]
        except KeyError:
            raise UnknownActionError(f"no marketplace action {reference!r}") from None

    def listings(self) -> List[str]:
        return sorted(self._actions)
