"""The hub facade: one object owning users, orgs, repos, artifacts, webhooks."""

from __future__ import annotations

from typing import Callable, Dict, List, Optional

from repro.errors import HubError, RepoNotFound
from repro.hub.artifacts import ArtifactStore
from repro.hub.marketplace import Marketplace
from repro.hub.models import HostedRepo, HubUser, Organization, PullRequest
from repro.util.clock import SimClock
from repro.util.events import EventLog
from repro.vcs.remote import clone as vcs_clone
from repro.vcs.repository import Repository


class HubService:
    """A GitHub-like service instance.

    All state hangs off this object (no globals), so tests can spin up
    isolated hubs. Webhook subscribers receive ``(event_name, payload)``
    for pushes, PR updates, and scheduled ticks — the CI engine subscribes
    to drive workflow triggering.
    """

    def __init__(self, clock: SimClock, events: Optional[EventLog] = None) -> None:
        self.clock = clock
        self.events = events if events is not None else EventLog()
        self.users: Dict[str, HubUser] = {}
        self.organizations: Dict[str, Organization] = {}
        self._repos: Dict[str, HostedRepo] = {}
        self.artifacts = ArtifactStore(clock)
        self.marketplace = Marketplace()
        self._webhooks: List[Callable[[str, dict], None]] = []

    # -- accounts ----------------------------------------------------------------
    def create_user(self, login: str, identity_urn: str = "") -> HubUser:
        if login in self.users:
            raise HubError(f"user {login!r} already exists")
        user = HubUser(login=login, identity_urn=identity_urn)
        self.users[login] = user
        return user

    def create_organization(self, name: str, members: List[str]) -> Organization:
        for member in members:
            if member not in self.users:
                raise HubError(f"no such user {member!r}")
        org = Organization(name=name, members=list(members))
        self.organizations[name] = org
        return org

    # -- repositories ---------------------------------------------------------------
    def create_repo(
        self,
        slug: str,
        owner: str,
        organization: Optional[str] = None,
        private: bool = False,
        default_branch: str = "main",
    ) -> HostedRepo:
        if owner not in self.users:
            raise HubError(f"no such user {owner!r}")
        if slug in self._repos:
            raise HubError(f"repo {slug!r} already exists")
        org = self.organizations.get(organization) if organization else None
        hosted = HostedRepo(
            slug=slug,
            repository=Repository(slug, default_branch=default_branch),
            owner=owner,
            organization=org,
            private=private,
        )
        self._repos[slug] = hosted
        self.events.emit(self.clock.now, "hub", "repo.created", slug=slug)
        return hosted

    def repo(self, slug: str) -> HostedRepo:
        try:
            return self._repos[slug]
        except KeyError:
            raise RepoNotFound(f"no repository {slug!r} on hub") from None

    def repos(self) -> List[str]:
        return sorted(self._repos)

    def fork(self, slug: str, user: str) -> HostedRepo:
        """Fork a repo into the user's namespace (paper §5.3, step 1)."""
        if user not in self.users:
            raise HubError(f"no such user {user!r}")
        source = self.repo(slug)
        fork_slug = f"{user}/{slug.split('/', 1)[1]}"
        if fork_slug in self._repos:
            raise HubError(f"fork {fork_slug!r} already exists")
        forked_repo = vcs_clone(source.repository, name=fork_slug)
        hosted = HostedRepo(
            slug=fork_slug,
            repository=forked_repo,
            owner=user,
            private=source.private,
        )
        hosted.forked_from = slug
        self._repos[fork_slug] = hosted
        self.events.emit(
            self.clock.now, "hub", "repo.forked", origin=slug, fork=fork_slug
        )
        return hosted

    # -- pushes & webhooks ------------------------------------------------------------
    def push_commit(
        self,
        slug: str,
        author: str,
        message: str,
        files: Optional[Dict[str, str]] = None,
        patch: Optional[Dict[str, Optional[str]]] = None,
        branch: Optional[str] = None,
    ) -> str:
        """Commit to a hosted repo and fire the ``push`` webhook."""
        hosted = self.repo(slug)
        if not hosted.can_write(author):
            raise HubError(f"{author} cannot push to {slug}")
        branch = branch or hosted.repository.default_branch
        oid = hosted.repository.commit(
            files=files,
            patch=patch,
            message=message,
            author=author,
            branch=branch,
            timestamp=self.clock.now,
        )
        self.events.emit(
            self.clock.now, "hub", "push", slug=slug, branch=branch, sha=oid
        )
        self._fire("push", {"slug": slug, "branch": branch, "sha": oid, "pusher": author})
        return oid

    def open_pull_request(
        self,
        slug: str,
        title: str,
        author: str,
        source_repo_slug: str,
        source_branch: str,
        target_branch: Optional[str] = None,
    ) -> "PullRequest":
        """Open a PR on a hosted repo and fire the ``pull_request`` webhook.

        The CI event carries the *source* branch so PR workflows test the
        proposed code, like GitHub's ``pull_request`` trigger.
        """
        hosted = self.repo(slug)
        pr = hosted.open_pull_request(
            title=title,
            author=author,
            source_repo_slug=source_repo_slug,
            source_branch=source_branch,
            target_branch=target_branch,
        )
        source_repo = self.repo(source_repo_slug)
        sha = source_repo.repository.head(source_branch)
        self.events.emit(
            self.clock.now, "hub", "pull_request",
            slug=slug, number=pr.number, author=author,
        )
        self._fire(
            "pull_request",
            {
                "slug": source_repo_slug,  # workflows run on the PR head
                "branch": source_branch,
                "sha": sha,
                "target_slug": slug,
                "target_branch": pr.target_branch,
                "number": pr.number,
                "actor": author,
            },
        )
        return pr

    def dispatch_workflow(self, slug: str, actor: str, workflow: str, inputs: Optional[dict] = None) -> None:
        """Manual ``workflow_dispatch`` trigger."""
        self.repo(slug)  # existence check
        self._fire(
            "workflow_dispatch",
            {
                "slug": slug,
                "actor": actor,
                "workflow": workflow,
                "inputs": dict(inputs or {}),
            },
        )

    def scheduled_tick(self) -> None:
        """Fire the ``schedule`` webhook for cron-triggered workflows."""
        self._fire("schedule", {"time": self.clock.now})

    def subscribe(self, callback: Callable[[str, dict], None]) -> None:
        self._webhooks.append(callback)

    def _fire(self, event: str, payload: dict) -> None:
        for hook in list(self._webhooks):
            hook(event, payload)
