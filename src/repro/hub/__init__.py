"""A GitHub-like hosting service.

Provides the primitives CORRECT's workflow and security model rest on:
repositories with forks and pull requests, secrets at organization /
repository / environment scope, deployment environments with protection
rules (required reviewers, wait timers, branch filters), a workflow
artifact store with 90-day retention, webhooks, and an action marketplace.
"""

from repro.hub.models import HubUser, Organization, HostedRepo, PullRequest
from repro.hub.secrets import SecretStore, Secret
from repro.hub.environments import DeploymentEnvironment, ProtectionRules
from repro.hub.artifacts import ArtifactStore, Artifact, ARTIFACT_RETENTION_DAYS
from repro.hub.marketplace import Marketplace, ActionMetadata
from repro.hub.quotas import QuotaRegistry, TenantQuota
from repro.hub.service import HubService

__all__ = [
    "HubUser",
    "Organization",
    "HostedRepo",
    "PullRequest",
    "SecretStore",
    "Secret",
    "DeploymentEnvironment",
    "ProtectionRules",
    "ArtifactStore",
    "Artifact",
    "ARTIFACT_RETENTION_DAYS",
    "Marketplace",
    "ActionMetadata",
    "QuotaRegistry",
    "TenantQuota",
    "HubService",
]
