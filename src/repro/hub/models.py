"""Hub entities: users, organizations, hosted repositories, pull requests."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

from repro.errors import HubError, PermissionDenied
from repro.hub.environments import DeploymentEnvironment, ProtectionRules
from repro.hub.secrets import SecretStore
from repro.vcs.repository import Repository


@dataclass
class HubUser:
    """A hub account, optionally linked to a federated identity."""

    login: str
    identity_urn: str = ""


@dataclass
class Organization:
    """An org: members plus org-scoped secrets."""

    name: str
    members: List[str] = field(default_factory=list)
    secrets: SecretStore = None  # type: ignore[assignment]

    def __post_init__(self) -> None:
        if self.secrets is None:
            self.secrets = SecretStore(scope="organization")

    def is_member(self, login: str) -> bool:
        return login in self.members


@dataclass
class PullRequest:
    """A proposed change from a (possibly forked) branch."""

    number: int
    title: str
    author: str
    source_repo_slug: str
    source_branch: str
    target_branch: str
    state: str = "open"  # open | merged | closed
    labels: List[str] = field(default_factory=list)

    def add_label(self, label: str) -> None:
        if label not in self.labels:
            self.labels.append(label)


class HostedRepo:
    """A repository hosted on the hub.

    Wraps a :class:`~repro.vcs.repository.Repository` with hub metadata:
    owner, collaborators with write access, repo-level secrets,
    deployment environments, pull requests, and fork lineage.
    """

    def __init__(
        self,
        slug: str,
        repository: Repository,
        owner: str,
        organization: Optional[Organization] = None,
        private: bool = False,
    ) -> None:
        if "/" not in slug:
            raise HubError(f"repo slug must be 'owner/name', got {slug!r}")
        self.slug = slug
        self.repository = repository
        self.owner = owner
        self.organization = organization
        self.private = private
        self.collaborators: List[str] = [owner]
        self.secrets = SecretStore(scope="repository")
        self.environments: Dict[str, DeploymentEnvironment] = {}
        self.pull_requests: Dict[int, PullRequest] = {}
        self.forked_from: Optional[str] = None
        self._pr_counter = 0

    # -- permissions --------------------------------------------------------
    def can_write(self, login: str) -> bool:
        if login in self.collaborators:
            return True
        return self.organization is not None and self.organization.is_member(login)

    def can_admin(self, login: str) -> bool:
        return login == self.owner

    def add_collaborator(self, admin: str, login: str) -> None:
        if not self.can_admin(admin):
            raise PermissionDenied(f"{admin} is not an admin of {self.slug}")
        if login not in self.collaborators:
            self.collaborators.append(login)

    # -- environments --------------------------------------------------------
    def create_environment(
        self,
        admin: str,
        name: str,
        protection: Optional[ProtectionRules] = None,
    ) -> DeploymentEnvironment:
        if not self.can_admin(admin):
            raise PermissionDenied(
                f"{admin} cannot create environments in {self.slug}"
            )
        env = DeploymentEnvironment(
            name=name, protection=protection or ProtectionRules()
        )
        self.environments[name] = env
        return env

    def environment(self, name: str) -> DeploymentEnvironment:
        try:
            return self.environments[name]
        except KeyError:
            raise HubError(f"{self.slug}: no environment {name!r}") from None

    # -- secrets scope resolution ------------------------------------------------
    def secret_scopes(self, environment: Optional[str] = None) -> List[SecretStore]:
        """Secret stores visible to a job, lowest precedence first."""
        scopes: List[SecretStore] = []
        if self.organization is not None:
            scopes.append(self.organization.secrets)
        scopes.append(self.secrets)
        if environment is not None:
            scopes.append(self.environment(environment).secrets)
        return scopes

    # -- pull requests --------------------------------------------------------
    def open_pull_request(
        self,
        title: str,
        author: str,
        source_repo_slug: str,
        source_branch: str,
        target_branch: Optional[str] = None,
    ) -> PullRequest:
        self._pr_counter += 1
        pr = PullRequest(
            number=self._pr_counter,
            title=title,
            author=author,
            source_repo_slug=source_repo_slug,
            source_branch=source_branch,
            target_branch=target_branch or self.repository.default_branch,
        )
        self.pull_requests[pr.number] = pr
        return pr
