"""Per-tenant admission quotas: token buckets and in-flight caps.

The hub is where tenant identity lives (MEP identity mapping hands every
submission an identity URN), so the hub also owns the *policy* side of
admission control: how fast each tenant may submit and how much of the
pool it may hold at once.  The FaaS overload controller consults a
:class:`QuotaRegistry` at the head of the interceptor pipeline and turns
a non-empty verdict into a typed ``AdmissionRejected`` on the task's
future.

Everything here is virtual-time deterministic: token buckets refill from
the simulation clock passed in by the caller, never from wall time, so
two same-seed runs make byte-identical admission decisions.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict

__all__ = ["QuotaRegistry", "TenantQuota"]


@dataclass(frozen=True)
class TenantQuota:
    """Admission policy for one tenant; zero means unlimited.

    ``rate`` is sustained submissions per virtual second, ``burst`` the
    bucket depth (how many submissions may land back-to-back), and
    ``max_inflight`` caps tasks admitted but not yet finalized.
    """

    rate: float = 0.0
    burst: float = 1.0
    max_inflight: int = 0


class _TokenBucket:
    """Deterministic virtual-time token bucket (no wall-clock reads)."""

    __slots__ = ("rate", "burst", "tokens", "updated")

    def __init__(self, rate: float, burst: float) -> None:
        self.rate = rate
        self.burst = max(1.0, burst)
        self.tokens = self.burst
        self.updated = 0.0

    def take(self, now: float) -> bool:
        if now > self.updated:
            self.tokens = min(self.burst, self.tokens + (now - self.updated) * self.rate)
            self.updated = now
        if self.tokens >= 1.0:
            self.tokens -= 1.0
            return True
        return False


class QuotaRegistry:
    """Tracks per-tenant quotas, buckets, and live in-flight counts.

    ``check`` returns an empty string when the tenant may submit, or the
    rejection reason (``quota-inflight`` before ``quota-rate``: an
    over-quota tenant should not also drain its rate bucket).  In-flight
    accounting is explicit — the admitting layer calls :meth:`bind` once
    a task is accepted and :meth:`release` when it finalizes.
    """

    def __init__(self, default: TenantQuota | None = None) -> None:
        self.default = default or TenantQuota()
        self._quotas: Dict[str, TenantQuota] = {}
        self._buckets: Dict[str, _TokenBucket] = {}
        self._inflight: Dict[str, int] = {}

    def set_quota(self, tenant: str, quota: TenantQuota) -> None:
        self._quotas[tenant] = quota
        self._buckets.pop(tenant, None)

    def quota_for(self, tenant: str) -> TenantQuota:
        return self._quotas.get(tenant, self.default)

    def inflight(self, tenant: str) -> int:
        return self._inflight.get(tenant, 0)

    def check(self, tenant: str, now: float) -> str:
        """Admission verdict for one submission; consumes a rate token."""
        quota = self.quota_for(tenant)
        if quota.max_inflight > 0 and self.inflight(tenant) >= quota.max_inflight:
            return "quota-inflight"
        if quota.rate > 0.0:
            bucket = self._buckets.get(tenant)
            if bucket is None:
                bucket = self._buckets[tenant] = _TokenBucket(quota.rate, quota.burst)
            if not bucket.take(now):
                return "quota-rate"
        return ""

    def bind(self, tenant: str) -> None:
        self._inflight[tenant] = self.inflight(tenant) + 1

    def release(self, tenant: str) -> None:
        count = self.inflight(tenant)
        if count > 0:
            self._inflight[tenant] = count - 1

    def snapshot(self) -> Dict[str, Dict[str, float]]:
        """Current admission state per tenant that has ever been seen."""
        tenants = set(self._quotas) | set(self._buckets) | set(self._inflight)
        return {
            tenant: {
                "rate": self.quota_for(tenant).rate,
                "max_inflight": float(self.quota_for(tenant).max_inflight),
                "inflight": float(self.inflight(tenant)),
            }
            for tenant in sorted(tenants)
        }
