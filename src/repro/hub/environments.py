"""Deployment environments with protection rules.

A workflow job that declares ``environment: <name>`` only gets that
environment's secrets after the protection rules pass: every required
reviewer listed must approve the run, a wait timer may delay it, and a
branch filter may reject it outright. This is the mechanism CORRECT uses
to guarantee a human who maps to a site account vouches for every remote
execution (§5.2) — and why the paper recommends exactly **one** reviewer
per environment.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List

from repro.hub.secrets import SecretStore


@dataclass
class ProtectionRules:
    """Protection configuration for one environment.

    Attributes
    ----------
    required_reviewers:
        Users who must approve a run before it may proceed. GitHub requires
        *one* of the listed reviewers to approve; the paper recommends
        listing exactly one so approval implies site-account ownership.
    wait_timer:
        Seconds the run must wait after approval before executing.
    allowed_branches:
        If non-empty, only runs for these branches may use the environment.
    """

    required_reviewers: List[str] = field(default_factory=list)
    wait_timer: float = 0.0
    allowed_branches: List[str] = field(default_factory=list)

    @property
    def needs_approval(self) -> bool:
        return bool(self.required_reviewers)

    def branch_allowed(self, branch: str) -> bool:
        return not self.allowed_branches or branch in self.allowed_branches

    def can_review(self, user: str) -> bool:
        return user in self.required_reviewers


@dataclass
class DeploymentEnvironment:
    """A named environment: secrets + protection rules."""

    name: str
    secrets: SecretStore = None  # type: ignore[assignment]
    protection: ProtectionRules = field(default_factory=ProtectionRules)

    def __post_init__(self) -> None:
        if self.secrets is None:
            self.secrets = SecretStore(scope=f"environment:{self.name}")
