"""Workflow artifact store with retention.

GitHub Action artifacts expire after 90 days (§7.4 flags this as a
provenance-persistence limitation). We enforce the same window in virtual
time: fetching an expired artifact raises
:class:`repro.errors.ArtifactExpired`, which the persistence ablation
exercises.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Tuple

from repro.errors import ArtifactExpired, ArtifactNotFound
from repro.util.clock import SimClock

ARTIFACT_RETENTION_DAYS = 90
ARTIFACT_RETENTION_SECONDS = ARTIFACT_RETENTION_DAYS * 24 * 3600.0


@dataclass
class Artifact:
    """One uploaded artifact (name + text content) tied to a workflow run."""

    run_id: str
    name: str
    content: str
    created_at: float

    @property
    def size_bytes(self) -> int:
        return len(self.content.encode("utf-8"))

    def expires_at(self) -> float:
        return self.created_at + ARTIFACT_RETENTION_SECONDS


class ArtifactStore:
    """Stores artifacts per workflow run, enforcing the retention window."""

    def __init__(self, clock: SimClock) -> None:
        self._clock = clock
        self._artifacts: Dict[Tuple[str, str], Artifact] = {}

    def upload(self, run_id: str, name: str, content: str) -> Artifact:
        artifact = Artifact(
            run_id=run_id,
            name=name,
            content=content,
            created_at=self._clock.now,
        )
        self._artifacts[(run_id, name)] = artifact
        return artifact

    def download(self, run_id: str, name: str) -> Artifact:
        artifact = self._artifacts.get((run_id, name))
        if artifact is None:
            raise ArtifactNotFound(f"run {run_id}: no artifact {name!r}")
        if self._clock.now > artifact.expires_at():
            raise ArtifactExpired(
                f"artifact {name!r} of run {run_id} expired at "
                f"t={artifact.expires_at():.0f} (now {self._clock.now:.0f})"
            )
        return artifact

    def list_for_run(self, run_id: str, include_expired: bool = False) -> List[Artifact]:
        out = [a for (rid, _), a in self._artifacts.items() if rid == run_id]
        if not include_expired:
            out = [a for a in out if self._clock.now <= a.expires_at()]
        return sorted(out, key=lambda a: a.name)

    def purge_expired(self) -> int:
        """Drop expired artifacts; returns how many were removed."""
        expired = [
            key
            for key, a in self._artifacts.items()
            if self._clock.now > a.expires_at()
        ]
        for key in expired:
            del self._artifacts[key]
        return len(expired)
