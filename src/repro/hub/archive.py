"""A Zenodo-like permanent archive with DOIs.

§7.4: workflow artifacts expire after 90 days, so "new steps could be
added to the workflow to publish artifacts to external data repositories
like Zenodo." :class:`PermanentArchive` models such a repository: deposits
are immutable, never expire, get deterministic DOIs, and support
versioned "concept" records (new versions of the same deposit share a
concept DOI, like Zenodo's versioning model).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional

from repro.errors import HubError
from repro.util.clock import SimClock
from repro.util.ids import deterministic_uuid


@dataclass(frozen=True)
class Deposit:
    """One immutable archived record."""

    doi: str
    concept_doi: str
    version: int
    title: str
    creators: tuple
    files: tuple  # ((name, content), ...)
    deposited_at: float

    def file_map(self) -> Dict[str, str]:
        return dict(self.files)


class PermanentArchive:
    """Immutable, versioned, DOI-addressed storage (the Zenodo stand-in)."""

    def __init__(self, clock: SimClock, prefix: str = "10.5281") -> None:
        self._clock = clock
        self.prefix = prefix
        self._deposits: Dict[str, Deposit] = {}
        self._concepts: Dict[str, List[str]] = {}  # concept doi -> versions

    def _mint(self, *parts: str) -> str:
        return f"{self.prefix}/sim.{deterministic_uuid(*parts)[:12]}"

    def deposit(
        self,
        title: str,
        creators: List[str],
        files: Dict[str, str],
        concept_doi: Optional[str] = None,
    ) -> Deposit:
        """Archive files; returns the new immutable deposit.

        Pass ``concept_doi`` to publish a new version of an existing
        record; omitting it starts a new concept.
        """
        if not files:
            raise HubError("cannot deposit an empty file set")
        if concept_doi is None:
            concept_doi = self._mint("concept", title, str(sorted(files)))
            self._concepts.setdefault(concept_doi, [])
        elif concept_doi not in self._concepts:
            raise HubError(f"unknown concept DOI {concept_doi!r}")
        version = len(self._concepts[concept_doi]) + 1
        doi = self._mint("version", concept_doi, str(version))
        deposit = Deposit(
            doi=doi,
            concept_doi=concept_doi,
            version=version,
            title=title,
            creators=tuple(creators),
            files=tuple(sorted(files.items())),
            deposited_at=self._clock.now,
        )
        self._deposits[doi] = deposit
        self._concepts[concept_doi].append(doi)
        return deposit

    def resolve(self, doi: str) -> Deposit:
        """Resolve a version DOI, or a concept DOI to its latest version.

        Deposits never expire — the property that distinguishes this from
        the hub's 90-day artifact store.
        """
        if doi in self._deposits:
            return self._deposits[doi]
        versions = self._concepts.get(doi)
        if versions:
            return self._deposits[versions[-1]]
        raise HubError(f"DOI {doi!r} does not resolve")

    def versions(self, concept_doi: str) -> List[Deposit]:
        return [self._deposits[d] for d in self._concepts.get(concept_doi, [])]

    def __len__(self) -> int:
        return len(self._deposits)
