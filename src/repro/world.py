"""The composition root: wire every subsystem into one simulated world.

A :class:`World` owns the shared clock, the auth service, the hub, the
FaaS cloud, the runner pool, the CI engine, the provenance store, the
container registry, and lazily-built sites from the catalog. Experiments,
examples, and integration tests construct a ``World`` and script against
it — the equivalent of "the internet plus four allocations" in the paper.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional

from repro.actions.engine import Engine, EngineServices
from repro.actions.runner import RunnerPool
from repro.auth.identity import Identity, IdentityProvider
from repro.auth.oauth import AuthService
from repro.auth.policies import HighAssurancePolicy
from repro.containers.registry import ContainerRegistry
from repro.core.action import publish_correct
from repro.envs.stdlib import standard_index
from repro.faas.endpoint import EndpointTemplate, MultiUserEndpoint, UserEndpoint
from repro.faas.service import FaaSService
from repro.faults.injector import FaultInjector
from repro.faults.plan import FaultPlan
from repro.faults.resilience import BreakerPolicy, RetryPolicy
from repro.hub.archive import PermanentArchive
from repro.hub.service import HubService
from repro.provenance.store import ProvenanceStore
from repro.shellsim.session import ShellServices
from repro.sites.catalog import SITE_BUILDERS
from repro.sites.site import Site
from repro.telemetry import (
    DEFAULT_BOUNDS,
    DEFAULT_WINDOW,
    NULL_TRACER,
    EventMetricsBridge,
    HealthScorer,
    MetricsRegistry,
    SLOEngine,
    TimeSeriesStore,
    Tracer,
    default_slo_pack,
)
from repro.telemetry.health import DEFAULT_HEALTH_WINDOW
from repro.util.clock import SimClock
from repro.util.events import EventLog


@dataclass
class WorldUser:
    """One human in the world: federated identity + hub login + credentials."""

    login: str
    identity: Identity
    client_id: str
    client_secret: str
    site_accounts: Dict[str, str] = field(default_factory=dict)


class World:
    """Everything the paper's evaluation environment contains."""

    def __init__(
        self,
        start_time: float = 0.0,
        concurrent_jobs: bool = False,
        telemetry: bool = True,
        span_sampler: Optional[Any] = None,
        faults: Optional[FaultPlan] = None,
        retry_policy: Optional[RetryPolicy] = None,
        breaker: Optional[BreakerPolicy] = None,
        offline_policy: str = "raise",
        placement_policy: str = "pinned",
        streaming_metrics: bool = False,
        overload=None,
        hedge=None,
    ) -> None:
        self.clock = SimClock(start_time)
        self.events = EventLog()
        # Telemetry observes the world; it never advances the clock, so
        # experiment outputs are identical with it on or off. The tracer
        # registers itself on the clock (ambient access via tracer_of);
        # the metrics bridge derives instruments purely from EventLog
        # subscriptions — no hot-path coupling.
        # span_sampler (default: sample everything) trims span volume at
        # scale without touching events or metrics.
        # streaming_metrics switches every registry histogram to fixed
        # buckets (bounded memory for million-task bench runs; figure
        # runs keep the exact default).
        histogram_bounds = DEFAULT_BOUNDS if streaming_metrics else None
        if telemetry:
            self.tracer = Tracer(self.clock, sampler=span_sampler)
            self.metrics = MetricsRegistry(histogram_bounds=histogram_bounds)
            self.telemetry_bridge = EventMetricsBridge(self.metrics, self.events)
        else:
            self.tracer = NULL_TRACER
            self.metrics = MetricsRegistry(histogram_bounds=histogram_bounds)
            self.telemetry_bridge = None
        # observability plane: populated by enable_observability()
        self.series: Optional[TimeSeriesStore] = None
        self.slo: Optional[SLOEngine] = None
        self.health: Optional[HealthScorer] = None
        self.package_index = standard_index()
        self.container_registry = ContainerRegistry("ghcr.io")
        self.auth = AuthService(self.clock)
        self.idp = IdentityProvider("uni.example.edu")
        self.hub = HubService(self.clock, events=self.events)
        self.faas = FaaSService(
            self.clock, self.auth, events=self.events,
            retry_policy=retry_policy, breaker=breaker,
            offline_policy=offline_policy,
            placement_policy=placement_policy,
            overload=overload,
            hedge=hedge,
        )
        self.provenance = ProvenanceStore()
        self.archive = PermanentArchive(self.clock)
        self.runner_pool = RunnerPool(self.clock, package_index=self.package_index)
        self.services = EngineServices(
            faas=self.faas,
            auth=self.auth,
            image_commands={},
            provenance=self.provenance,
            archive=self.archive,
        )
        self.engine = Engine(
            self.hub,
            self.runner_pool,
            services=self.services,
            events=self.events,
            concurrent_jobs=concurrent_jobs,
        )
        publish_correct(self.hub.marketplace)
        self.sites: Dict[str, Site] = {}
        self.users: Dict[str, WorldUser] = {}
        # fault injection: install stores the plan; arm_faults() schedules
        # it relative to *that* moment, so setup (site provisioning, CI
        # wiring) happens fault-free and fault times mean "into the run"
        self.fault_injector: Optional[FaultInjector] = None
        # durability: populated by attach_journal / resume_from
        self.journal = None
        self.checkpointer = None
        self.resumed_from = ""
        self.crash_point: Optional[int] = None
        if faults is not None:
            self.install_faults(faults)

    # -- observability ------------------------------------------------------------
    def enable_observability(
        self,
        window: float = DEFAULT_WINDOW,
        rules=None,
        health_window: float = DEFAULT_HEALTH_WINDOW,
        health_routing: bool = False,
    ) -> TimeSeriesStore:
        """Attach the continuous-observability plane to this world.

        Creates a windowed :class:`TimeSeriesStore` fed by the metrics
        bridge, installs an :class:`SLOEngine` evaluating ``rules``
        (the :func:`default_slo_pack` for the store's window unless
        given) at bucket boundaries, and builds a :class:`HealthScorer`
        over the same store. ``health_routing=True`` additionally lets
        the ``least-loaded`` placement policy break queue-depth ties by
        health score.

        Purely observational unless ``health_routing`` is set: the
        plane reads events and emits ``slo`` alert events, but never
        advances the clock — a world that enables it and never queries
        it produces byte-identical figure outputs. Call before the
        workload runs; telemetry must be enabled.
        """
        if self.telemetry_bridge is None:
            raise ValueError(
                "observability requires telemetry; "
                "construct World(telemetry=True)"
            )
        if self.series is not None:
            raise ValueError("observability is already enabled")
        self.series = TimeSeriesStore(window=window)
        self.telemetry_bridge.attach_series(self.series)
        if rules is None:
            rules = default_slo_pack(window)
        self.slo = SLOEngine(self.series, self.events, list(rules)).install()
        self.health = HealthScorer(self.series, window=health_window)
        # the overload plane's AIMD limiter reads dispatch p95 from the
        # same store (no-op when the plane is off)
        self.faas.attach_overload_series(self.series)
        # fail-slow plane: the straggler detector's gray score is the
        # only health signal a slow-but-succeeding endpoint produces
        if self.faas.hedging is not None:
            self.health.gray_of = self.faas.hedging.gray_of
        if health_routing:
            self.faas.attach_health(self.health)
        return self.series

    # -- durability ---------------------------------------------------------------
    def attach_journal(self, journal=None):
        """Start journaling this world's lifecycle events.

        Returns the :class:`~repro.durability.journal.Journal` (a fresh
        in-memory one unless provided). Attaching is opt-in and purely
        observational: an unjournaled world is byte-identical.
        """
        from repro.durability import Journal, RunCheckpointer

        if self.checkpointer is not None:
            raise ValueError("a journal is already attached to this world")
        self.journal = journal if journal is not None else Journal()
        self.checkpointer = RunCheckpointer(
            self.journal, self.events, faas=self.faas
        )
        self.faas.attach_journal(self.journal)
        return self.journal

    def resume_from(self, journal):
        """Recover from a crashed run's journal.

        The world must be *fresh* (same construction parameters as the
        crashed one). Journaled-complete tasks and plain ``run:`` steps are
        replayed from their records instead of re-executing; endpoints whose
        lease had expired at the crash are marked dead on registration.
        """
        from repro.durability import ReplayIndex

        index = ReplayIndex(journal)
        self.faas.enable_replay(index)
        self.engine.resume_run(journal)
        self.resumed_from = index.head_hash
        self.crash_point = index.crash_record
        self.events.emit(
            self.clock.now, "durability", "run.resumed",
            journal_head=index.head_hash,
            crash_record=index.crash_record,
            completed_tasks=len(index.completed_success()),
            orphans=len(index.orphans()),
        )
        return index

    # -- faults -------------------------------------------------------------------
    def install_faults(self, plan: FaultPlan) -> FaultInjector:
        """Attach a fault plan to this world (not yet armed)."""
        self.fault_injector = FaultInjector(self, plan)
        return self.fault_injector

    def arm_faults(self) -> FaultInjector:
        """Arm the installed plan: faults fire relative to the current time."""
        if self.fault_injector is None:
            raise ValueError("no fault plan installed; pass World(faults=...)")
        self.fault_injector.arm()
        return self.fault_injector

    # -- sites -------------------------------------------------------------------
    def site(self, name: str, background_load: bool = True) -> Site:
        """Build (or return) a catalog site sharing this world's services."""
        if name not in self.sites:
            builder = SITE_BUILDERS.get(name)
            if builder is None:
                raise ValueError(
                    f"unknown site {name!r}; choices: {sorted(SITE_BUILDERS)}"
                )
            self.sites[name] = builder(
                self.clock,
                package_index=self.package_index,
                container_registries=[self.container_registry],
                events=self.events,
                background_load=background_load,
            )
        return self.sites[name]

    def add_site(self, site: Site) -> Site:
        self.sites[site.name] = site
        return site

    # -- people -------------------------------------------------------------------
    def register_user(
        self,
        login: str,
        site_accounts: Optional[Dict[str, str]] = None,
    ) -> WorldUser:
        """Create identity + hub account + client credentials + site accounts.

        ``site_accounts`` maps site name → local account name; accounts and
        identity mappings are created on each site.
        """
        identity = self.idp.register(login)
        self.hub.create_user(login, identity_urn=identity.urn)
        client_id, client_secret = self.auth.create_client(
            identity, name=f"{login}-correct"
        )
        user = WorldUser(
            login=login,
            identity=identity,
            client_id=client_id,
            client_secret=client_secret,
        )
        for site_name, account in (site_accounts or {}).items():
            self.map_user_to_site(user, site_name, account)
        self.users[login] = user
        return user

    def map_user_to_site(self, user: WorldUser, site_name: str, account: str) -> None:
        site = self.site(site_name)
        site.add_account(account)
        site.identity_map.add(user.identity, account)
        user.site_accounts[site_name] = account

    # -- endpoints ------------------------------------------------------------------
    def shell_services(self) -> ShellServices:
        # the live dict is shared, so image commands registered later
        # (e.g. by an application module) reach already-deployed endpoints
        return ShellServices(
            hub=self.hub, image_commands=self.services.image_commands
        )

    def deploy_mep(
        self,
        site_name: str,
        templates: Optional[Dict[str, EndpointTemplate]] = None,
        policy: Optional[HighAssurancePolicy] = None,
        instance: str = "",
    ) -> MultiUserEndpoint:
        """Deploy and register a multi-user endpoint at a site.

        ``instance`` names one member of a multi-endpoint pool; the empty
        default keeps the site's historical singleton endpoint id.
        """
        mep = MultiUserEndpoint(
            site=self.site(site_name),
            shell_services=self.shell_services(),
            templates=templates,
            policy=policy,
            instance=instance,
        )
        self.faas.register_endpoint(mep)
        return mep

    def deploy_mep_pool(
        self,
        site_name: str,
        size: int,
        templates: Optional[Dict[str, EndpointTemplate]] = None,
        policy: Optional[HighAssurancePolicy] = None,
        pool_name: str = "",
    ) -> List[MultiUserEndpoint]:
        """Deploy ``size`` MEPs at a site and register them as a pool.

        The first member keeps the site's historical singleton endpoint
        id (instance ""), so a pool of one is byte-identical to a plain
        :meth:`deploy_mep`. Tasks submitted to the pool name — or to the
        site name — are routed by the FaaS service's placement policy.
        """
        meps = [
            self.deploy_mep(
                site_name, templates=templates, policy=policy,
                instance="" if i == 0 else f"pool-{i}",
            )
            for i in range(size)
        ]
        self.faas.register_pool(
            pool_name or site_name, site=site_name,
            members=[mep.endpoint_id for mep in meps],
        )
        return meps

    def deploy_user_endpoint(
        self,
        user: WorldUser,
        site_name: str,
        template: Optional[EndpointTemplate] = None,
    ) -> UserEndpoint:
        """Deploy a single-user endpoint for a user's site account."""
        site = self.site(site_name)
        account = user.site_accounts.get(site_name)
        if account is None:
            raise ValueError(f"{user.login} has no account at {site_name}")
        uep = UserEndpoint(
            site=site,
            local_user=account,
            shell_services=self.shell_services(),
            template=template,
            owner=user.identity,
        )
        self.faas.register_endpoint(uep)
        return uep

    def register_image_command(self, name: str, impl) -> None:
        """Register a container-provided command implementation globally."""
        self.services.image_commands[name] = impl
