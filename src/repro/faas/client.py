"""Client SDK for the FaaS service (globus-compute-sdk stand-in).

CORRECT instantiates this on the GitHub runner with the client id and
secret pulled from environment secrets, then registers/submits functions
and fetches results. :meth:`ComputeClient.submit` is the primary,
future-based path; :meth:`ComputeClient.run` is the blocking wrapper kept
for callers written against the original synchronous API.
"""

from __future__ import annotations

from typing import Any, Callable, List, Sequence

from repro.auth.oauth import AuthService, SCOPE_COMPUTE, Token
from repro.faas.future import TaskFuture
from repro.faas.placement import RouteDecision
from repro.faas.service import BatchRequest, FaaSService
from repro.faas.task import Task


class ComputeClient:
    """Authenticated handle on the FaaS cloud service."""

    def __init__(
        self,
        service: FaaSService,
        client_id: str,
        client_secret: str,
    ) -> None:
        self.service = service
        # Client-credentials grant happens at construction, like the SDK's
        # login flow; InvalidCredentials propagates to the caller.
        self._token: Token = service.auth.client_credentials_grant(
            client_id, client_secret, scopes=(SCOPE_COMPUTE,)
        )

    @property
    def identity_urn(self) -> str:
        return self._token.identity.urn

    @property
    def token_value(self) -> str:
        return self._token.value

    def register_function(
        self,
        fn: Callable[..., Any],
        name: str,
        needs_outbound: bool = False,
    ) -> str:
        return self.service.register_function(
            self._token.value, fn, name=name, needs_outbound=needs_outbound
        )

    def submit(
        self,
        endpoint_id: str,
        function_id: str,
        *args: Any,
        template: str = "default",
        timeout: "float | None" = None,
        route: "RouteDecision | None" = None,
        priority: int = 1,
        **kwargs: Any,
    ) -> TaskFuture:
        """Submit a task; returns its future without advancing time.

        ``endpoint_id`` may also name a registered pool or a pooled site;
        pass a pre-resolved ``route`` (from
        :meth:`FaaSService.resolve_route`) to give several submissions
        route affinity. ``timeout`` bounds the task's total virtual-time
        lifetime (retries included); on expiry the future fails with
        :class:`~repro.errors.TaskTimeout`. ``priority`` is the overload
        shedding class (0 = critical; higher sheds first); when the
        protection plane rejects the submission the future fails with a
        retryable :class:`~repro.errors.AdmissionRejected`.
        """
        return self.service.submit(
            self._token.value,
            endpoint_id,
            function_id,
            args=args,
            kwargs=kwargs,
            template=template,
            timeout=timeout,
            route=route,
            priority=priority,
        )

    def submit_batch(
        self, requests: Sequence[BatchRequest]
    ) -> List[TaskFuture]:
        """Submit many tasks at once; futures in request order."""
        return self.service.submit_batch(self._token.value, requests)

    def run(
        self,
        endpoint_id: str,
        function_id: str,
        *args: Any,
        template: str = "default",
        **kwargs: Any,
    ) -> str:
        """Submit a task and drive it to completion; returns the task id.

        Blocking wrapper over :meth:`submit` — remote failures do *not*
        raise here; inspect :meth:`get_task` / call :meth:`get_result`.
        """
        future = self.submit(
            endpoint_id, function_id, *args, template=template, **kwargs
        )
        future.wait()
        return future.task_id

    def get_task(self, task_id: str) -> Task:
        return self.service.get_task(task_id)

    def get_result(self, task_id: str) -> Any:
        return self.service.get_result(task_id)
