"""The overload-protection plane: admission, AIMD, budgets, shedding.

Shared HPC capacity behind multi-user CI endpoints fails ungracefully:
one hot tenant or one retry storm starves everyone (Gamblin & Katz).
This module turns overload into a survivable, observable, deterministic
scenario.  Four mechanisms compose, cheapest first:

1. **Admission control** — per-tenant token buckets and in-flight caps
   (policy lives in :class:`repro.hub.quotas.QuotaRegistry`); rejected
   submissions resolve their future to a typed ``AdmissionRejected``.
2. **Adaptive concurrency** — an AIMD limiter per endpoint pool that
   grows on success and halves when queue depth or the windowed
   dispatch p95 breaches a bound.
3. **Retry budgets** — global and per-tenant ratios of retries to first
   attempts over a sliding virtual-time window, consulted by the retry
   interceptor so fault bursts cannot amplify into retry storms.
4. **Shedding with brownout** — tasks carry a priority class; brownout
   degrades span sampling first, then the shedder drops the lowest
   class at pending-depth watermarks, recovering in reverse order.

The plane is off by default (``FaaSService(overload=None)``) and every
decision reads only the virtual clock and seeded state, so protection
off is byte-identical to the pre-plane service and two same-seed
protected runs are byte-identical to each other.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Dict, List, Mapping, Optional, Tuple

from repro.hub.quotas import QuotaRegistry, TenantQuota
from repro.telemetry.sampling import RatioSampler
from repro.telemetry.tracer import tracer_of

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.faas.pipeline import SubmitContext
    from repro.faas.service import FaaSService, PendingTask
    from repro.faas.task import Task
    from repro.telemetry.timeseries import TimeSeriesStore

__all__ = [
    "AIMDLimiter",
    "OverloadConfig",
    "OverloadController",
    "OverloadStats",
    "PRIORITY_BATCH",
    "PRIORITY_CRITICAL",
    "PRIORITY_NORMAL",
    "RetryBudget",
    "SlidingCounter",
]

# Priority classes: lower is more important. The shedder never drops a
# class without a configured watermark, so critical work (class 0) is
# safe unless the operator explicitly lists it.
PRIORITY_CRITICAL = 0
PRIORITY_NORMAL = 1
PRIORITY_BATCH = 2


@dataclass(frozen=True)
class OverloadConfig:
    """Tuning for the whole plane; one frozen value object per service.

    Quota defaults apply to every tenant without an explicit entry in
    ``quotas`` (zero = unlimited, matching :class:`TenantQuota`).  AIMD
    bounds are in concurrent tasks per pool; ``aimd_p95_high`` is in
    virtual seconds of dispatch queue wait.  Budget ratios are retries
    per first attempt over ``budget_window`` virtual seconds.  Shed
    watermarks map a priority class to the pending depth at which that
    class (and every class below it) is dropped; ``brownout_enter``
    should sit below the lowest watermark so telemetry degrades before
    work does.
    """

    tenant_rate: float = 0.0
    tenant_burst: float = 4.0
    tenant_max_inflight: int = 0
    quotas: Optional[QuotaRegistry] = None
    aimd_initial: float = 16.0
    aimd_min: float = 2.0
    aimd_max: float = 64.0
    aimd_increase: float = 1.0
    aimd_backoff: float = 0.5
    aimd_queue_high: int = 32
    aimd_p95_high: float = 0.0
    aimd_window: float = 300.0
    aimd_cooldown: float = 30.0
    retry_budget: float = 0.25
    tenant_retry_budget: float = 0.5
    budget_window: float = 300.0
    shed_watermarks: Mapping[int, int] = field(
        default_factory=lambda: {PRIORITY_BATCH: 48, PRIORITY_NORMAL: 96}
    )
    brownout_enter: int = 0
    brownout_exit: int = 0
    brownout_sample_rate: float = 0.1
    brownout_seed: int = 0

    def build_quotas(self) -> QuotaRegistry:
        if self.quotas is not None:
            return self.quotas
        return QuotaRegistry(
            TenantQuota(
                rate=self.tenant_rate,
                burst=self.tenant_burst,
                max_inflight=self.tenant_max_inflight,
            )
        )


class SlidingCounter:
    """Bucketed sliding-window counter over virtual time.

    Coarse on purpose: ``buckets`` fixed-width bins approximate the
    window, which keeps memory O(buckets) and every query O(buckets)
    regardless of event rate — and stays exactly deterministic because
    bin edges depend only on the virtual clock.
    """

    __slots__ = ("width", "depth", "_ring")

    def __init__(self, window: float, buckets: int = 12) -> None:
        self.width = max(1e-9, window / buckets)
        self.depth = buckets
        self._ring: deque = deque()

    def add(self, now: float, amount: float = 1.0) -> None:
        index = int(now // self.width)
        if self._ring and self._ring[-1][0] == index:
            self._ring[-1][1] += amount
        else:
            self._ring.append([index, amount])
            while len(self._ring) > self.depth:
                self._ring.popleft()

    def total(self, now: float) -> float:
        first = int(now // self.width) - self.depth + 1
        return sum(amount for index, amount in self._ring if index >= first)


class RetryBudget:
    """Global + per-tenant retry-to-first-attempt ratio enforcement."""

    def __init__(
        self, ratio: float = 0.25, tenant_ratio: float = 0.5, window: float = 300.0
    ) -> None:
        self.ratio = ratio
        self.tenant_ratio = tenant_ratio
        self.window = window
        self._attempts = SlidingCounter(window)
        self._retries = SlidingCounter(window)
        self._tenant_attempts: Dict[str, SlidingCounter] = {}
        self._tenant_retries: Dict[str, SlidingCounter] = {}

    def _of(self, table: Dict[str, SlidingCounter], tenant: str) -> SlidingCounter:
        counter = table.get(tenant)
        if counter is None:
            counter = table[tenant] = SlidingCounter(self.window)
        return counter

    def record_attempt(self, tenant: str, now: float) -> None:
        self._attempts.add(now)
        self._of(self._tenant_attempts, tenant).add(now)

    def record_retry(self, tenant: str, now: float) -> None:
        self._retries.add(now)
        self._of(self._tenant_retries, tenant).add(now)

    def check(self, tenant: str, now: float) -> Optional[str]:
        """None when a retry fits the budget, else the exhausted scope."""
        if self.ratio > 0.0:
            allowed = self.ratio * max(1.0, self._attempts.total(now))
            if self._retries.total(now) + 1.0 > allowed:
                return "global"
        if self.tenant_ratio > 0.0:
            attempts = self._of(self._tenant_attempts, tenant).total(now)
            retries = self._of(self._tenant_retries, tenant).total(now)
            if retries + 1.0 > self.tenant_ratio * max(1.0, attempts):
                return "tenant"
        return None


class AIMDLimiter:
    """Additive-increase / multiplicative-decrease concurrency limit."""

    __slots__ = (
        "limit",
        "min_limit",
        "max_limit",
        "increase",
        "backoff_factor",
        "cooldown",
        "inflight",
        "_last_backoff",
        "_successes",
    )

    def __init__(
        self,
        initial: float,
        min_limit: float,
        max_limit: float,
        increase: float = 1.0,
        backoff_factor: float = 0.5,
        cooldown: float = 30.0,
    ) -> None:
        self.limit = initial
        self.min_limit = min_limit
        self.max_limit = max_limit
        self.increase = increase
        self.backoff_factor = backoff_factor
        self.cooldown = cooldown
        self.inflight = 0
        self._last_backoff = float("-inf")
        self._successes = 0

    def try_admit(self) -> bool:
        return self.inflight < int(self.limit)

    def acquire(self) -> None:
        self.inflight += 1

    def release(self) -> None:
        if self.inflight > 0:
            self.inflight -= 1

    def on_success(self, now: float) -> None:
        self._successes += 1
        if self._successes >= max(1, int(self.limit)):
            self._successes = 0
            self.limit = min(self.max_limit, self.limit + self.increase)

    def back_off(self, now: float) -> bool:
        """Halve the limit unless still cooling down; True when applied."""
        if now - self._last_backoff < self.cooldown:
            return False
        self._last_backoff = now
        self.limit = max(self.min_limit, self.limit * self.backoff_factor)
        self._successes = 0
        return True


@dataclass
class OverloadStats:
    admitted: int = 0
    rejected: int = 0
    rejected_rate: int = 0
    rejected_inflight: int = 0
    rejected_concurrency: int = 0
    shed: int = 0
    backoffs: int = 0
    retries_allowed: int = 0
    retries_denied: int = 0
    brownouts: int = 0
    brownout_seconds: float = 0.0


class OverloadController:
    """Runtime state of the plane, owned by one :class:`FaaSService`.

    The pipeline's head interceptors (``admission``, ``concurrency``,
    ``shed``) are thin shims onto the ``check_*`` methods here; the
    first stage to set ``sub.rejected`` wins and later stages skip
    their checks, so one submission consumes at most one verdict.
    """

    def __init__(self, service: "FaaSService", config: OverloadConfig) -> None:
        self.service = service
        self.config = config
        self.quotas = config.build_quotas()
        self.budget = RetryBudget(
            config.retry_budget, config.tenant_retry_budget, config.budget_window
        )
        self.stats = OverloadStats()
        self.series: Optional["TimeSeriesStore"] = None
        self.pending = 0
        self._limiters: Dict[str, AIMDLimiter] = {}
        self._inflight: Dict[str, Tuple[str, str]] = {}
        # shed rules checked lowest-priority-first so recovery (depth
        # falling back under a watermark) re-admits classes in reverse
        # drop order
        self._shed_rules: List[Tuple[int, int]] = sorted(
            config.shed_watermarks.items(), key=lambda item: -item[0]
        )
        self._brownout_since: Optional[float] = None
        self._saved_sampler = None
        self._degraded_sampler = RatioSampler(
            config.brownout_sample_rate, seed=config.brownout_seed
        )

    # -- pipeline admit checks ----------------------------------------

    def limiter_for(self, key: str) -> AIMDLimiter:
        limiter = self._limiters.get(key)
        if limiter is None:
            cfg = self.config
            limiter = self._limiters[key] = AIMDLimiter(
                cfg.aimd_initial,
                cfg.aimd_min,
                cfg.aimd_max,
                increase=cfg.aimd_increase,
                backoff_factor=cfg.aimd_backoff,
                cooldown=cfg.aimd_cooldown,
            )
        return limiter

    def check_admission(self, sub: "SubmitContext") -> None:
        if sub.rejected:
            return
        reason = self.quotas.check(sub.tenant, self.service.clock.now)
        if reason:
            sub.rejected = reason

    def check_concurrency(self, sub: "SubmitContext") -> None:
        if sub.rejected:
            return
        if not self.limiter_for(sub.pool or sub.endpoint_id).try_admit():
            sub.rejected = "concurrency"

    def check_shed(self, sub: "SubmitContext") -> None:
        if sub.rejected:
            return
        for priority, watermark in self._shed_rules:
            if sub.priority >= priority and self.pending >= watermark:
                sub.rejected = "shed"
                return

    # -- lifecycle hooks ----------------------------------------------

    def on_submitted(self, entry: "PendingTask", sub: "SubmitContext") -> None:
        task = entry.task
        now = self.service.clock.now
        if sub.rejected:
            self.stats.rejected += 1
            if sub.rejected == "shed":
                self.stats.shed += 1
            elif sub.rejected == "quota-rate":
                self.stats.rejected_rate += 1
            elif sub.rejected == "quota-inflight":
                self.stats.rejected_inflight += 1
            elif sub.rejected == "concurrency":
                self.stats.rejected_concurrency += 1
            self.service.events.emit(
                now,
                "faas",
                "task.rejected",
                task_id=task.task_id,
                tenant=sub.tenant,
                reason=sub.rejected,
                priority=sub.priority,
                endpoint=task.endpoint_id,
            )
            return
        self.stats.admitted += 1
        key = sub.pool or task.endpoint_id
        self.quotas.bind(sub.tenant)
        self.limiter_for(key).acquire()
        self._inflight[task.task_id] = (sub.tenant, key)
        self.pending += 1
        self.budget.record_attempt(sub.tenant, now)
        self._update_pressure(now)

    def on_outcome(self, entry: "PendingTask", error: Optional[BaseException]) -> None:
        now = self.service.clock.now
        info = self._inflight.get(entry.task.task_id)
        key = info[1] if info else (entry.task.pool or entry.task.endpoint_id)
        limiter = self.limiter_for(key)
        if error is None:
            limiter.on_success(now)
        reason = self._breach(limiter, now)
        if reason and limiter.back_off(now):
            self.stats.backoffs += 1
            self.service.events.emit(
                now,
                "faas",
                "overload.backoff",
                pool=key,
                reason=reason,
                limit=round(limiter.limit, 3),
                inflight=limiter.inflight,
            )

    def on_finalize(self, entry: "PendingTask") -> None:
        info = self._inflight.pop(entry.task.task_id, None)
        if info is None:
            return
        tenant, key = info
        self.quotas.release(tenant)
        self.limiter_for(key).release()
        self.pending -= 1
        self._update_pressure(self.service.clock.now)

    def allow_retry(self, task: "Task", now: float) -> bool:
        """Budget gate for the retry interceptor; consumes on grant."""
        scope = self.budget.check(task.identity_urn, now)
        if scope is None:
            self.budget.record_retry(task.identity_urn, now)
            self.stats.retries_allowed += 1
            return True
        self.stats.retries_denied += 1
        self.service.events.emit(
            now,
            "faas",
            "overload.retry_denied",
            task_id=task.task_id,
            tenant=task.identity_urn,
            scope=scope,
        )
        return False

    # -- pressure: AIMD breach + brownout ------------------------------

    def _breach(self, limiter: AIMDLimiter, now: float) -> str:
        cfg = self.config
        if cfg.aimd_queue_high > 0 and self.pending > cfg.aimd_queue_high:
            return "queue-depth"
        if cfg.aimd_p95_high > 0.0 and self.series is not None:
            series = self.series.get("faas.task.queue_wait")
            if series is not None:
                p95 = series.quantile_over(95.0, now, cfg.aimd_window)
                if p95 > cfg.aimd_p95_high:
                    return "dispatch-p95"
        return ""

    def _update_pressure(self, now: float) -> None:
        cfg = self.config
        if cfg.brownout_enter <= 0:
            return
        exit_mark = cfg.brownout_exit or max(1, cfg.brownout_enter // 2)
        if self._brownout_since is None and self.pending >= cfg.brownout_enter:
            tracer = tracer_of(self.service.clock)
            if getattr(tracer, "enabled", False):
                self._saved_sampler = tracer.sampler
                tracer.sampler = self._degraded_sampler
            self._brownout_since = now
            self.stats.brownouts += 1
            self.service.events.emit(
                now, "faas", "overload.brownout", state="enter", depth=self.pending
            )
        elif self._brownout_since is not None and self.pending <= exit_mark:
            if self._saved_sampler is not None:
                tracer_of(self.service.clock).sampler = self._saved_sampler
                self._saved_sampler = None
            elapsed = now - self._brownout_since
            self.stats.brownout_seconds += elapsed
            self._brownout_since = None
            self.service.events.emit(
                now,
                "faas",
                "overload.brownout",
                state="exit",
                depth=self.pending,
                seconds=round(elapsed, 6),
            )

    def brownout_seconds(self, now: float) -> float:
        """Total degraded-telemetry time, counting an open interval."""
        total = self.stats.brownout_seconds
        if self._brownout_since is not None:
            total += now - self._brownout_since
        return total

    def snapshot(self) -> Dict[str, float]:
        stats = self.stats
        return {
            "admitted": stats.admitted,
            "rejected": stats.rejected,
            "rejected_rate": stats.rejected_rate,
            "rejected_inflight": stats.rejected_inflight,
            "rejected_concurrency": stats.rejected_concurrency,
            "shed": stats.shed,
            "backoffs": stats.backoffs,
            "retries_allowed": stats.retries_allowed,
            "retries_denied": stats.retries_denied,
            "brownouts": stats.brownouts,
            "pending": self.pending,
        }
