"""The service's durability facade: journal, replay, leases, recovery.

:class:`ServiceDurability` is mixed into
:class:`~repro.faas.service.FaaSService` and keeps the crash-safety API
(`attach_journal`, `enable_replay`, `recover`, `resubmit_orphans`,
`enable_leases`, and the audit accessors) in one place. All state lives
in the pipeline's replay and lease interceptors — the facade only
delegates, so retry/breaker/timeout/failover/replay/lease *logic* stays
in :mod:`repro.faas.pipeline`.
"""

from __future__ import annotations

from typing import List, Optional, Set

from repro.durability.lease import LeaseRegistry
from repro.durability.recovery import ReplayIndex
from repro.util.serialization import deserialize


class ServiceDurability:
    """Crash-safety API of the FaaS service, delegating to the pipeline."""

    @property
    def journal(self):
        return self.pipeline.replay.journal

    @property
    def replay_index(self) -> Optional[ReplayIndex]:
        return self.pipeline.replay.index

    @property
    def leases(self) -> Optional[LeaseRegistry]:
        return self.pipeline.lease.registry

    @property
    def executed_keys(self) -> Set[str]:
        return self.pipeline.replay.executed_keys

    @property
    def replayed_keys(self) -> Set[str]:
        return self.pipeline.replay.replayed_keys

    def attach_journal(self, journal) -> None:
        """Switch dispatch into recording mode for ``journal``.

        The journal itself is written by the checkpointer subscribed to
        the event log; the service only wraps every dispatched body with
        cost capture (the ``body_elapsed`` a later replay advances by).
        """
        self.pipeline.replay.journal = journal

    def enable_replay(self, index: ReplayIndex) -> None:
        """Recovery mode: journaled-SUCCESS results replace re-execution.

        Replayed bodies advance the clock by the recorded cost, so
        timing, spans, and events match the uninterrupted run exactly.
        Dead-lease endpoints come back offline (now and on registration).
        """
        self.pipeline.replay.index = index
        self.pipeline.lease.mark_dead(index.dead_endpoints())

    @classmethod
    def recover(cls, journal, clock, auth, events=None, **kwargs):
        """Rebuild a service from a crashed coordinator's journal.

        The recovered service starts empty but carries the journal's
        :class:`ReplayIndex`: re-submissions deduplicate by idempotency
        key and dead-lease endpoints come back offline.
        """
        service = cls(clock, auth, events=events, **kwargs)
        service.enable_replay(ReplayIndex(journal))
        return service

    def resubmit_orphans(self, token_value: str) -> List:
        """Re-submit journaled-submitted-but-never-completed tasks.

        Journaled payloads go back to their recorded endpoints (one dead
        at the crash is offline here, so the standard offline/breaker/
        fallback machinery routes around it). Futures in journal order.
        """
        if self.replay_index is None:
            raise ValueError(
                "no replay index attached; call enable_replay or recover first"
            )
        futures = []
        for data in self.replay_index.orphans().values():
            payload = deserialize(
                data.get("payload", '{"args": [], "kwargs": {}}')
            )
            futures.append(
                self.submit(
                    token_value,
                    data["endpoint"],
                    data["function_id"],
                    args=tuple(payload.get("args", ())),
                    kwargs=dict(payload.get("kwargs", {})),
                )
            )
        return futures

    def enable_leases(self, ttl: float = 3600.0) -> LeaseRegistry:
        """Turn on heartbeat leases for endpoint liveness.

        Every endpoint (present and future) gets a TTL lease renewed by
        task activity; expiry marks it offline and fails in-flight work
        retryably, so the retry/breaker/failover path takes over.
        """
        return self.pipeline.lease.enable(ttl)
