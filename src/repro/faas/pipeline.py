"""The resilience plane: composable interceptors around bare dispatch.

Retry, circuit breaking, timeout, failover, replay substitution, and
lease touching used to be branches inside ``FaaSService.submit`` /
``_complete`` / ``_EndpointDispatcher.pump``. Here each is an
:class:`Interceptor` with narrow hooks, and the :class:`Pipeline` runs
them in an explicit order:

``DEFAULT_ORDER = ("admission", "concurrency", "shed", "replay",
"lease", "hedge", "breaker", "failover", "timeout", "retry")``

The order is semantic, not cosmetic. The overload plane runs first —
admission (per-tenant quota), then adaptive concurrency, then priority
shedding, cheapest verdict first, and all three are no-ops unless the
service was built with an ``OverloadConfig``. On a completion outcome
the lease must be touched before the breaker records (a completed task
is a heartbeat *first*, so ``lease.renewed`` precedes ``breaker.close``),
the hedge plane settles its race before the breaker records (a losing
hedge arm's error is suppressed *before* it could trip a breaker, and a
hedge win moves ``task.endpoint_id`` to the winner so success credits
the endpoint that produced it), and the breaker must record before the
retry interceptor decides (so ``breaker.open`` precedes ``task.retry``
in the event log — the order the chaos reports and journal offsets
depend on). At submit time the breaker gate runs before failover, which
reroutes only what the breaker blocked.

Hook map (an interceptor implements only what it needs):

=============  =============================================================
hook           called
=============  =============================================================
on_register    when an endpoint registers with the service
admit          at submit, before the task exists (may retarget or raise)
on_submitted   after the task is created (events that need a task id)
on_accepted    after the task is accepted (deadline scheduling)
wrap_spec      at dispatch, to substitute/instrument the function body
on_dispatched  when the dispatcher takes the task (heartbeats)
on_outcome     on every dispatch outcome; return ``True`` = handled
               (re-queued) — the service must not finalize
=============  =============================================================
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Any, Dict, Optional, Set, Tuple

from repro.durability.lease import LeaseRegistry
from repro.durability.recovery import ReplayIndex, restorer_for
from repro.errors import (
    CircuitOpen,
    EndpointOffline,
    TaskTimeout,
    is_retryable,
)
from repro.faas.functions import FunctionSpec
from repro.faas.task import Task, TaskState
from repro.faults.resilience import CircuitBreaker
from repro.util.serialization import deserialize

DEFAULT_ORDER: Tuple[str, ...] = (
    "admission",
    "concurrency",
    "shed",
    "replay",
    "lease",
    "hedge",
    "breaker",
    "failover",
    "timeout",
    "retry",
)


@dataclass(slots=True)
class SubmitContext:
    """Mutable admission state threaded through the submit-time chain."""

    requested: str  # the endpoint the caller targeted
    endpoint_id: str  # where the task is actually going
    blocked: str = ""  # non-empty = an interceptor vetoed this endpoint
    failed_over: bool = False
    # overload plane: the submitting tenant's identity URN, the task's
    # priority class, and the routed pool (the AIMD limiter key). A
    # non-empty ``rejected`` is the plane's verdict — the service
    # resolves the future to AdmissionRejected instead of dispatching.
    tenant: str = ""
    priority: int = 1
    pool: str = ""
    rejected: str = ""


class Interceptor:
    """Base interceptor: every hook is a no-op."""

    name = "interceptor"

    def __init__(self, service) -> None:
        self.service = service

    def on_register(self, endpoint_id: str) -> None:
        pass

    def admit(self, sub: SubmitContext) -> None:
        pass

    def on_submitted(self, entry, sub: SubmitContext) -> None:
        pass

    def on_accepted(self, entry, timeout: Optional[float]) -> None:
        pass

    def wrap_spec(self, entry, spec: FunctionSpec) -> FunctionSpec:
        return spec

    def on_dispatched(self, entry, endpoint_id: str) -> None:
        pass

    def on_outcome(self, entry, result, error: Optional[BaseException]) -> bool:
        return False


class AdmissionInterceptor(Interceptor):
    """Per-tenant quota gate plus overload-plane bookkeeping.

    A thin shim: all state lives in the service's
    :class:`~repro.faas.overload.OverloadController` (the interceptor
    classes cannot live there — overload.py must stay import-free of
    this module). With the plane off (``service.overload is None``)
    every hook returns immediately, so default worlds are untouched.
    """

    name = "admission"

    def admit(self, sub: SubmitContext) -> None:
        controller = self.service.overload
        if controller is not None:
            controller.check_admission(sub)

    def on_submitted(self, entry, sub: SubmitContext) -> None:
        controller = self.service.overload
        if controller is not None:
            controller.on_submitted(entry, sub)

    def on_outcome(self, entry, result, error: Optional[BaseException]) -> bool:
        controller = self.service.overload
        if controller is not None:
            controller.on_outcome(entry, error)
        return False


class ConcurrencyInterceptor(Interceptor):
    """AIMD per-pool concurrency gate (grows on success, halves on load)."""

    name = "concurrency"

    def admit(self, sub: SubmitContext) -> None:
        controller = self.service.overload
        if controller is not None:
            controller.check_concurrency(sub)


class ShedInterceptor(Interceptor):
    """Drop the lowest priority class above pending-depth watermarks."""

    name = "shed"

    def admit(self, sub: SubmitContext) -> None:
        controller = self.service.overload
        if controller is not None:
            controller.check_shed(sub)


class HedgeInterceptor(Interceptor):
    """Speculative hedged execution against fail-slow endpoints.

    A thin shim onto the service's
    :class:`~repro.faas.hedging.HedgeController` (same pattern as the
    overload interceptors — hedging.py must stay import-free of this
    module). With the plane off (``service.hedging is None``) both hooks
    return immediately, so default worlds are byte-identical.
    """

    name = "hedge"

    def on_dispatched(self, entry, endpoint_id: str) -> None:
        controller = self.service.hedging
        if controller is not None:
            controller.on_dispatched(entry, endpoint_id)

    def on_outcome(self, entry, result, error: Optional[BaseException]) -> bool:
        controller = self.service.hedging
        if controller is not None:
            return controller.on_outcome(entry, result, error)
        return False


class BreakerInterceptor(Interceptor):
    """Per-endpoint circuit breakers: gate admission, record outcomes."""

    name = "breaker"

    def __init__(self, service) -> None:
        super().__init__(service)
        self.breakers: Dict[str, CircuitBreaker] = {}

    def breaker_for(self, endpoint_id: str) -> Optional[CircuitBreaker]:
        if self.service.breaker_policy is None:
            return None
        breaker = self.breakers.get(endpoint_id)
        if breaker is None:
            breaker = CircuitBreaker(self.service.breaker_policy)
            self.breakers[endpoint_id] = breaker
        return breaker

    def is_open(self, endpoint_id: str) -> bool:
        """Read-only probe for routing-time exclusion (never transitions)."""
        breaker = self.breakers.get(endpoint_id)
        return breaker is not None and breaker.state == CircuitBreaker.OPEN

    def admit(self, sub: SubmitContext) -> None:
        breaker = self.breaker_for(sub.endpoint_id)
        if breaker is None:
            return
        now = self.service.clock.now
        before = breaker.state
        allowed = breaker.allow(now)
        if breaker.state != before:
            self.service.events.emit(
                now, "faas", "breaker.half_open", endpoint=sub.endpoint_id
            )
        if not allowed:
            sub.blocked = "breaker_open"

    def on_outcome(self, entry, result, error: Optional[BaseException]) -> bool:
        task = entry.task
        now = self.service.clock.now
        breaker = self.breaker_for(task.endpoint_id)
        if breaker is None:
            return False
        if error is None:
            before = breaker.state
            breaker.record_success(now)
            if before != breaker.state:
                self.service.events.emit(
                    now, "faas", "breaker.close", endpoint=task.endpoint_id
                )
        elif breaker.record_failure(now):
            self.service.resilience.breaker_trips += 1
            self.service.events.emit(
                now, "faas", "breaker.open",
                endpoint=task.endpoint_id,
                consecutive_failures=breaker.consecutive_failures,
                trips=breaker.trips,
            )
        return False


class FailoverInterceptor(Interceptor):
    """Reroute breaker-blocked work to a declared fallback endpoint."""

    name = "failover"

    def __init__(self, service) -> None:
        super().__init__(service)
        self.fallbacks: Dict[str, str] = {}

    def declare(self, endpoint_id: str, fallback_id: str) -> None:
        self.fallbacks[endpoint_id] = fallback_id

    def healthy_fallback(self, endpoint_id: str) -> Optional[str]:
        """The declared fallback, if it exists and its breaker admits work."""
        fallback_id = self.fallbacks.get(endpoint_id)
        if not fallback_id or fallback_id == endpoint_id:
            return None
        fb_breaker = self.service.breaker_for(fallback_id)
        if fb_breaker is None or fb_breaker.allow(self.service.clock.now):
            return fallback_id
        return None

    def admit(self, sub: SubmitContext) -> None:
        if not sub.blocked:
            return
        fallback_id = self.healthy_fallback(sub.endpoint_id)
        if fallback_id is not None:
            sub.endpoint_id = fallback_id
            sub.failed_over = True
            sub.blocked = ""
        else:
            raise CircuitOpen(
                f"circuit open for endpoint {sub.requested[:8]} "
                f"and no healthy fallback declared"
            )

    def on_submitted(self, entry, sub: SubmitContext) -> None:
        if not sub.failed_over:
            return
        task = entry.task
        task.original_endpoint_id = sub.requested
        self.service.resilience.failovers += 1
        self.service.events.emit(
            self.service.clock.now, "faas", "task.failover",
            task_id=task.task_id, from_endpoint=sub.requested,
            to_endpoint=task.endpoint_id, reason="breaker_open",
        )


class TimeoutInterceptor(Interceptor):
    """Per-task deadlines over the whole lifetime, retries included."""

    name = "timeout"

    def on_accepted(self, entry, timeout: Optional[float]) -> None:
        if timeout is None:
            return
        entry.deadline = self.service.clock.now + timeout
        self.service.clock.call_after(
            timeout, lambda: self._deadline_fired(entry, timeout)
        )

    def _deadline_fired(self, entry, timeout: float) -> None:
        """A per-task deadline event: fail the task if it is still alive."""
        task = entry.task
        if task.state.is_terminal:
            return
        error = TaskTimeout(
            f"task {task.task_id} exceeded its {timeout:g}s deadline "
            f"(attempt {entry.attempt})"
        )
        self.service.resilience.timeouts += 1
        self.service.events.emit(
            self.service.clock.now, "faas", "task.timeout",
            task_id=task.task_id, endpoint=task.endpoint_id,
            timeout=timeout, attempt=entry.attempt,
        )
        dispatcher = self.service._dispatchers.get(task.endpoint_id)
        if dispatcher is not None:
            if dispatcher.inflight is entry:
                dispatcher.abort_inflight(error)
                dispatcher.pump()
                return
            if entry in dispatcher.queue:
                dispatcher.queue.remove(entry)
        # waiting on its dispatch/backoff event, or queued: fail in place
        self.service._complete(entry, None, error)


class RetryInterceptor(Interceptor):
    """Re-queue retryable failures with deterministic backoff."""

    name = "retry"

    def on_outcome(self, entry, result, error: Optional[BaseException]) -> bool:
        if error is None:
            return False
        service = self.service
        task = entry.task
        now = service.clock.now
        policy = service.retry_policy
        if policy is not None and policy.should_retry(error, entry.attempt):
            overload = service.overload
            if overload is None or overload.allow_retry(task, now):
                delay = policy.delay(entry.attempt, task.task_id)
                entry.attempt += 1
                entry.aborted = False  # the retry's own callback must land
                task.attempts = entry.attempt
                task.state = TaskState.PENDING
                service.resilience.retries += 1
                target = task.endpoint_id
                breaker = service.breaker_for(target)
                if breaker is not None and breaker.state == CircuitBreaker.OPEN:
                    fallback_id = service.pipeline.failover.healthy_fallback(target)
                    if fallback_id is not None:
                        if not task.original_endpoint_id:
                            task.original_endpoint_id = target
                        service._retarget(task, fallback_id)
                        target = fallback_id
                        service.resilience.failovers += 1
                        service.events.emit(
                            now, "faas", "task.failover",
                            task_id=task.task_id,
                            from_endpoint=task.original_endpoint_id,
                            to_endpoint=target, reason="breaker_open",
                        )
                service.events.emit(
                    now, "faas", "task.retry",
                    task_id=task.task_id, endpoint=target,
                    attempt=entry.attempt, delay=round(delay, 6),
                    error=type(error).__name__,
                )
                dispatcher = service._dispatcher(target)
                service.clock.call_after(delay, lambda: dispatcher.arrive(entry))
                return True
            # retry budget exhausted: fall through to the give-up branch

        if policy is not None and is_retryable(error):
            task.gave_up = True
            task.last_error_kind = type(error).__name__
            service.resilience.give_ups += 1
            service.events.emit(
                now, "faas", "task.gave_up",
                task_id=task.task_id, endpoint=task.endpoint_id,
                attempts=entry.attempt, error=type(error).__name__,
            )
        return False


class LeaseInterceptor(Interceptor):
    """Heartbeat leases: task activity keeps an endpoint's lease alive."""

    name = "lease"

    def __init__(self, service) -> None:
        super().__init__(service)
        self.registry: Optional[LeaseRegistry] = None
        self.dead: Set[str] = set()

    def enable(self, ttl: float) -> LeaseRegistry:
        if self.registry is None:
            self.registry = LeaseRegistry(
                self.service.clock, self.service.events, ttl=ttl,
                on_expire=self._on_expired,
            )
            for endpoint_id in sorted(self.service._endpoints):
                self.grant(endpoint_id)
        return self.registry

    def grant(self, endpoint_id: str) -> None:
        if self.registry is None or endpoint_id in self.dead:
            return
        lease = self.registry.grant(endpoint_id)
        endpoint = self.service._endpoints.get(endpoint_id)
        if endpoint is not None:
            endpoint.lease = lease

    def renew(self, endpoint_id: str) -> None:
        if self.registry is not None:
            self.registry.renew(endpoint_id)

    def mark_dead(self, endpoint_ids) -> None:
        """Recovery learned these leases were dead at the crash."""
        self.dead |= set(endpoint_ids)
        for endpoint_id in endpoint_ids:
            self.expire_recovered(endpoint_id)

    def _on_expired(self, endpoint_id: str) -> None:
        endpoint = self.service._endpoints.get(endpoint_id)
        if endpoint is not None:
            endpoint.lease = None
        if endpoint is None or not endpoint.online:
            return
        endpoint.online = False
        self.service.fail_inflight(
            endpoint_id,
            EndpointOffline(
                f"endpoint {endpoint_id[:8]} lease expired (missed heartbeats)"
            ),
        )

    def expire_recovered(self, endpoint_id: str) -> None:
        """Mark a journal-declared-dead endpoint offline in this world."""
        endpoint = self.service._endpoints.get(endpoint_id)
        if endpoint is None or not endpoint.online:
            return
        endpoint.online = False
        endpoint.lease = None
        self.service.events.emit(
            self.service.clock.now, "durability", "lease.expired",
            endpoint=endpoint_id, phase="recovery",
        )
        self.service.fail_inflight(
            endpoint_id,
            EndpointOffline(
                f"endpoint {endpoint_id[:8]} lease was dead at the crash"
            ),
        )

    def on_register(self, endpoint_id: str) -> None:
        if endpoint_id in self.dead:
            # recovery learned from the journal that this endpoint's lease
            # was already dead at the crash — never bring it up live
            self.expire_recovered(endpoint_id)
        else:
            self.grant(endpoint_id)

    def on_dispatched(self, entry, endpoint_id: str) -> None:
        # dispatch is a heartbeat: the endpoint accepted work, so it lives
        self.renew(endpoint_id)

    def on_outcome(self, entry, result, error: Optional[BaseException]) -> bool:
        if error is None:
            # a completed task is a heartbeat from its endpoint
            self.renew(entry.task.endpoint_id)
        return False


class ReplayInterceptor(Interceptor):
    """Write-ahead journal recording and journaled-result replay."""

    name = "replay"

    def __init__(self, service) -> None:
        super().__init__(service)
        self.journal = None
        self.index: Optional[ReplayIndex] = None
        # exactly-once audit: keys whose bodies actually ran vs. keys
        # whose journaled results were replayed (disjoint by design)
        self.executed_keys: Set[str] = set()
        self.replayed_keys: Set[str] = set()

    def wrap_spec(self, entry, spec: FunctionSpec) -> FunctionSpec:
        """The spec this dispatch should execute, possibly instrumented.

        Replay mode substitutes a journaled-SUCCESS body: the recorded
        result comes back after re-materialising remote side effects (the
        function's registered restorer) and advancing the clock by the
        journaled body cost, so every span and event the live path would
        produce still appears — at identical virtual times — without the
        body ever re-executing. Record mode wraps the body with plain
        start/end cost capture. With durability off, the spec passes
        through untouched.
        """
        task = entry.task
        record = None
        if self.index is not None:
            record = self.index.replay_record(task.idempotency_key)
        if record is not None:
            task.replayed = True
            self.replayed_keys.add(task.idempotency_key)
            self.service.events.emit(
                self.service.clock.now, "durability", "task.replayed",
                task_id=task.task_id, key=task.idempotency_key,
                endpoint=task.endpoint_id, function=spec.name,
            )
            return replace(spec, fn=self._replay_body(task, spec, record))
        if self.journal is None and self.index is None:
            return spec
        return replace(spec, fn=self._recording_body(task, spec))

    def _replay_body(self, task: Task, spec: FunctionSpec, record: dict):
        clock = self.service.clock

        def body(fctx, *args, **kwargs):
            result = deserialize(record.get("result", "null"))
            started = clock.now
            restorer = restorer_for(spec.name)
            if restorer is not None:
                restorer(fctx, result, *args, **kwargs)
            # whatever time the restorer consumed counts toward the
            # journaled body cost — total advance equals the original
            elapsed = float(record.get("body_elapsed") or 0.0)
            remaining = elapsed - (clock.now - started)
            if remaining > 1e-12:
                clock.advance(remaining)
            task.body_elapsed = elapsed
            return result

        return body

    def _recording_body(self, task: Task, spec: FunctionSpec):
        fn = spec.fn
        clock = self.service.clock

        def body(fctx, *args, **kwargs):
            self.executed_keys.add(task.idempotency_key)
            started = clock.now
            try:
                return fn(fctx, *args, **kwargs)
            finally:
                task.body_elapsed = clock.now - started

        return body


INTERCEPTORS = {
    cls.name: cls
    for cls in (
        AdmissionInterceptor,
        ConcurrencyInterceptor,
        ShedInterceptor,
        ReplayInterceptor,
        LeaseInterceptor,
        HedgeInterceptor,
        BreakerInterceptor,
        FailoverInterceptor,
        TimeoutInterceptor,
        RetryInterceptor,
    )
}


class Pipeline:
    """An ordered interceptor chain wrapping the bare dispatch core."""

    def __init__(self, service, order: Tuple[str, ...] = DEFAULT_ORDER) -> None:
        unknown = [name for name in order if name not in INTERCEPTORS]
        if unknown:
            raise ValueError(
                f"unknown interceptor(s) {unknown}; choices: {sorted(INTERCEPTORS)}"
            )
        self.service = service
        self.order = tuple(order)
        self.stages = [INTERCEPTORS[name](service) for name in order]
        self._by_name: Dict[str, Interceptor] = {s.name: s for s in self.stages}
        # Per-hook chains holding only the stages that actually override
        # the hook: every chain driver runs per task, and walking six
        # no-op stages per hook is pure overhead at scale. Computed from
        # the classes, so behavior is identical by construction.
        self._admit = self._overriding("admit")
        self._on_submitted = self._overriding("on_submitted")
        self._on_accepted = self._overriding("on_accepted")
        self._wrap_spec = self._overriding("wrap_spec")
        self._on_dispatched = self._overriding("on_dispatched")
        self._on_outcome = self._overriding("on_outcome")

    def _overriding(self, hook: str) -> Tuple[Interceptor, ...]:
        base = getattr(Interceptor, hook)
        return tuple(
            s for s in self.stages if getattr(type(s), hook) is not base
        )

    def __getitem__(self, name: str) -> Interceptor:
        return self._by_name[name]

    def __contains__(self, name: str) -> bool:
        return name in self._by_name

    # named accessors for the stages the service itself must reach
    @property
    def breaker(self) -> BreakerInterceptor:
        return self._by_name["breaker"]

    @property
    def failover(self) -> FailoverInterceptor:
        return self._by_name["failover"]

    @property
    def lease(self) -> LeaseInterceptor:
        return self._by_name["lease"]

    @property
    def replay(self) -> ReplayInterceptor:
        return self._by_name["replay"]

    # -- chain drivers -------------------------------------------------------
    def register(self, endpoint_id: str) -> None:
        for stage in self.stages:
            stage.on_register(endpoint_id)

    def admit(self, sub: SubmitContext) -> SubmitContext:
        for stage in self._admit:
            stage.admit(sub)
        return sub

    def submitted(self, entry, sub: SubmitContext) -> None:
        for stage in self._on_submitted:
            stage.on_submitted(entry, sub)

    def accepted(self, entry, timeout: Optional[float]) -> None:
        for stage in self._on_accepted:
            stage.on_accepted(entry, timeout)

    def wrap_spec(self, entry) -> FunctionSpec:
        spec = entry.spec
        for stage in self._wrap_spec:
            spec = stage.wrap_spec(entry, spec)
        return spec

    def dispatched(self, entry, endpoint_id: str) -> None:
        for stage in self._on_dispatched:
            stage.on_dispatched(entry, endpoint_id)

    def outcome(self, entry, result: Any, error: Optional[BaseException]) -> bool:
        """Run the outcome chain; ``True`` means an interceptor re-queued
        the task and the service must not finalize it."""
        if error is not None:
            self.service.resilience.count_error(error)
        for stage in self._on_outcome:
            if stage.on_outcome(entry, result, error):
                return True
        return False
