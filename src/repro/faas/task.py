"""Tasks: one function execution on one endpoint."""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Any, Optional


class TaskState(enum.Enum):
    PENDING = "PENDING"
    RUNNING = "RUNNING"
    SUCCESS = "SUCCESS"
    FAILED = "FAILED"
    CANCELLED = "CANCELLED"

    @property
    def is_terminal(self) -> bool:
        return self in (
            TaskState.SUCCESS, TaskState.FAILED, TaskState.CANCELLED
        )


@dataclass(slots=True)
class Task:
    """Cloud-side record of one function invocation.

    ``result`` holds the deserialized return value on success;
    ``exception_text`` holds the remote traceback text on failure — the
    text CORRECT surfaces in the Action log (Fig. 5). Slotted: one
    record lives per submitted task for the life of the world.
    """

    task_id: str
    function_id: str
    endpoint_id: str
    identity_urn: str
    args: tuple = ()
    kwargs: dict = field(default_factory=dict)
    state: TaskState = TaskState.PENDING
    result: Any = None
    exception_text: str = ""
    submitted_at: float = 0.0
    started_at: Optional[float] = None
    completed_at: Optional[float] = None
    # resilience bookkeeping: dispatch attempts made (1 = no retries),
    # whether the terminal error was transient (feeds TaskFailed.retryable),
    # and the endpoint originally targeted when failover rerouted the task
    attempts: int = 1
    error_retryable: bool = False
    original_endpoint_id: str = ""
    # durability: the endpoint-independent exactly-once key, the measured
    # cost of the successful body alone (excludes provisioning and queue
    # wait, unlike execution_time), and whether this task's body was
    # replayed from a write-ahead journal instead of executed
    idempotency_key: str = ""
    body_elapsed: Optional[float] = None
    replayed: bool = False
    # placement: which policy routed this task, through which pool, and
    # the chosen endpoint's live queue depth at routing time — all empty
    # or zero when the caller pinned an explicit endpoint
    routed_by: str = ""
    pool: str = ""
    queue_depth_at_route: int = 0
    # overload plane: the caller's priority class (0 = critical, higher
    # is cheaper to shed); and the exhausted-retry postmortem — set when
    # the retry policy gave up, recording the terminal error kind so
    # provenance can explain why the task failed
    priority: int = 1
    gave_up: bool = False
    last_error_kind: str = ""
    # hedging: whether a speculative duplicate was launched for this
    # task, whether the duplicate produced the winning result, and the
    # endpoint whose (cancelled or ignored) attempt lost the race
    hedged: bool = False
    hedge_won: bool = False
    loser_endpoint: str = ""

    @property
    def queue_latency(self) -> Optional[float]:
        if self.started_at is None:
            return None
        return self.started_at - self.submitted_at

    @property
    def execution_time(self) -> Optional[float]:
        if self.started_at is None or self.completed_at is None:
            return None
        return self.completed_at - self.started_at
