"""Futures for the deferred task lifecycle.

:meth:`FaaSService.submit` no longer runs the task to completion — it
enqueues the task on a per-endpoint dispatcher and hands back a
:class:`TaskFuture`. Results are pulled by *driving the shared clock*:
``future.result()`` fires pending events (dispatch, block provisioning,
task completion) until this future resolves. Because every blocking wait
is expressed as clock events rather than Python control flow, tasks
in flight on different endpoints interleave in virtual time.

:class:`Future` is the generic building block; chained computations (the
CORRECT clone→execute pipeline) compose plain futures resolved from
completion callbacks.
"""

from __future__ import annotations

from typing import Any, Callable, List, Optional, TYPE_CHECKING

from repro.errors import TaskCancelled, TaskFailed
from repro.util.clock import SimClock

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.faas.task import Task


class Future:
    """A value that resolves when the simulation reaches its event.

    ``clock`` is the shared :class:`SimClock`; :meth:`wait` advances it
    event by event until the future resolves. A future that can never
    resolve (the event queue drains first) raises :class:`TaskFailed`
    rather than spinning — in a discrete-event world an empty queue *is*
    a deadlock.
    """

    __slots__ = ("_clock", "_resolved", "_result", "_exception", "_callbacks")

    def __init__(self, clock: Optional[SimClock] = None) -> None:
        self._clock = clock
        self._resolved = False
        self._result: Any = None
        self._exception: Optional[BaseException] = None
        self._callbacks: List[Callable[["Future"], None]] = []

    # -- resolution (producer side) ------------------------------------------
    def set_result(self, value: Any) -> None:
        self._resolve(result=value)

    def set_exception(self, exc: BaseException) -> None:
        self._resolve(exception=exc)

    def _resolve(
        self, result: Any = None, exception: Optional[BaseException] = None
    ) -> None:
        if self._resolved:
            raise RuntimeError("future already resolved")
        self._resolved = True
        self._result = result
        self._exception = exception
        callbacks, self._callbacks = self._callbacks, []
        for callback in callbacks:
            callback(self)

    def cancel(self) -> bool:
        """Resolve with :class:`TaskCancelled` if still pending.

        Returns ``True`` when this call retracted the future, ``False``
        when it had already resolved (a result, an error, or an earlier
        cancel — cancellation cannot un-happen a completion).
        """
        if self._resolved:
            return False
        self.set_exception(TaskCancelled("future cancelled"))
        return True

    # -- observation (consumer side) -----------------------------------------
    def done(self) -> bool:
        """True once the future has a result or an exception."""
        return self._resolved

    def cancelled(self) -> bool:
        """True when the future resolved by cancellation."""
        return self._resolved and isinstance(self._exception, TaskCancelled)

    def add_done_callback(self, fn: Callable[["Future"], None]) -> None:
        """Call ``fn(self)`` when resolved; immediately if already done."""
        if self._resolved:
            fn(self)
        else:
            self._callbacks.append(fn)

    def wait(self) -> "Future":
        """Drive the clock until this future resolves; never raises its error."""
        while not self._resolved:
            if self._clock is None:
                raise TaskFailed("future has no clock to drive and is pending")
            nxt = self._clock.next_event_time()
            if nxt is None:
                raise TaskFailed(
                    "deadlock: future pending but no events are scheduled"
                )
            self._clock.run_until(nxt)
        return self

    def result(self) -> Any:
        """The value; drives the clock if needed, re-raises the exception."""
        self.wait()
        if self._exception is not None:
            raise self._exception
        return self._result

    def exception(self) -> Optional[BaseException]:
        """The exception (or None); drives the clock if needed."""
        self.wait()
        return self._exception


class TaskFuture(Future):
    """Handle on one submitted FaaS task.

    Mirrors the compute SDK's future: :meth:`result` drives virtual time
    until the task completes, returning the remote value or raising
    :class:`~repro.errors.TaskFailed` carrying the remote traceback.
    """

    __slots__ = ("task", "span", "service")

    def __init__(self, clock: SimClock, task: "Task") -> None:
        super().__init__(clock)
        self.task = task
        # telemetry span for this task, set by the service at submit time
        # (None when the world runs untraced)
        self.span = None
        # the owning service, set at submit time so cancel() can retract
        # the pending dispatch entry, not just resolve the future
        self.service = None

    @property
    def task_id(self) -> str:
        return self.task.task_id

    def cancel(self) -> bool:
        """Retract the task service-side; resolves with TaskCancelled.

        Goes through :meth:`FaaSService.cancel` when the service is
        attached, so the queued or in-flight dispatch entry is removed
        and the task record lands in the ``CANCELLED`` terminal state.
        """
        if self.service is not None:
            return self.service.cancel(self.task.task_id)
        return super().cancel()

    def resolve_from_task(self) -> None:
        """Resolve from the (terminal) task record. Called by the service."""
        from repro.faas.task import TaskState

        if self.task.state is TaskState.SUCCESS:
            self.set_result(self.task.result)
        elif self.task.state is TaskState.CANCELLED:
            self.set_exception(
                TaskCancelled(f"task {self.task.task_id} was cancelled")
            )
        else:
            self.set_exception(
                TaskFailed(
                    f"task {self.task.task_id} failed remotely",
                    remote_traceback=self.task.exception_text,
                    retryable=self.task.error_retryable,
                )
            )

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"TaskFuture({self.task.task_id}, state={self.task.state.value})"
