"""The dispatch plane: per-endpoint FIFO ordering + execution, nothing else.

One :class:`EndpointDispatcher` per endpoint takes validated
:class:`PendingTask` entries from scheduled dispatch events and runs them
one at a time (the pilot holds one block). Resilience behavior — lease
heartbeats, replay substitution, retry/breaker decisions — enters only
through the service's :class:`~repro.faas.pipeline.Pipeline` hooks;
placement has already happened by the time an entry arrives here.

The queue is ordered by each entry's submission sequence number, not by
arrival time: a retried or failed-over attempt re-enters the queue
*where its original submission order puts it*, so per-endpoint FIFO
holds even when backoff jitter makes attempts from different batches
land out of order.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass
from typing import Deque, Optional

from repro.auth.oauth import Token
from repro.errors import (
    CoordinatorCrashed,
    EndpointNotFound,
    EndpointOffline,
    PermissionDenied,
)
from repro.faas.endpoint import MultiUserEndpoint
from repro.faas.functions import FunctionSpec
from repro.faas.future import TaskFuture
from repro.faas.task import Task, TaskState
from repro.faults.injector import injector_of
from repro.telemetry import tracer_of


@dataclass(slots=True)
class PendingTask:
    """A validated task waiting on (or moving through) an endpoint queue.

    Slotted: one instance exists per live task, and at a million tasks
    the per-instance ``__dict__`` is real memory.
    """

    task: Task
    future: TaskFuture
    token: Token
    spec: FunctionSpec
    template: str
    # global submission order; the dispatcher keeps its queue sorted by
    # this, so re-arrivals (retry, failover) cannot jump or trail tasks
    # submitted around them
    seq: int = 0
    # telemetry span opened at submit time; carries the submitter's trace
    # context across the async dispatch boundary
    span: object = None
    # resilience bookkeeping: 1-based dispatch attempt, the abort flag an
    # offline/timeout abort sets so a stale completion callback for the
    # doomed attempt is discarded, and the absolute deadline when the
    # caller set a per-task timeout
    attempt: int = 1
    aborted: bool = False
    deadline: Optional[float] = None
    # hedging: set on the speculative duplicate entry (the hedge arm
    # shares the primary's task and future but runs on another pool
    # member), plus the virtual time this entry's current attempt was
    # handed to an endpoint — the base the hedge deadline counts from
    is_hedge: bool = False
    dispatched_at: Optional[float] = None


class EndpointDispatcher:
    """FIFO dispatch loop for one endpoint.

    Tasks arrive via scheduled dispatch events and run one at a time per
    endpoint (the pilot holds one block); completion hands the loop to
    the next queued task. Separate endpoints have separate dispatchers,
    so their queues drain concurrently in virtual time.
    """

    def __init__(self, service, endpoint_id: str) -> None:
        self.service = service
        self.endpoint_id = endpoint_id
        self.queue: Deque[PendingTask] = deque()
        self.busy = False
        self.inflight: Optional[PendingTask] = None

    def arrive(self, entry: PendingTask) -> None:
        """Queue an entry in submission order and try to dispatch.

        Entries normally arrive in ``seq`` order (dispatch events for one
        endpoint fire in submit order), making this an append. A
        failed-over or retried attempt can arrive *behind* tasks that
        were submitted after it; the ordered insert restores its place.
        """
        if entry.task.state.is_terminal:
            # the deadline fired while this entry's dispatch or retry
            # backoff event was in flight; the task is already finalized
            # and re-queueing it would dispatch (and resolve) it twice
            return
        if entry.aborted:
            # retracted (cancelled, or a hedge race already settled)
            # while its arrival event was on the wire; a retry clears
            # the flag before re-scheduling, so this only drops entries
            # nobody is waiting on
            return
        if not self.queue or entry.seq >= self.queue[-1].seq:
            self.queue.append(entry)
        else:
            index = 0
            for index, queued in enumerate(self.queue):  # noqa: B007
                if queued.seq > entry.seq:
                    break
            self.queue.insert(index, entry)
        self.pump()

    def abort_inflight(self, error: BaseException) -> Optional[PendingTask]:
        """Fail the in-flight task with ``error`` and free the lane.

        Used when the endpoint drops offline (or a deadline fires) while
        work is on the wire: the eventual completion callback for the
        doomed attempt is discarded via the entry's ``aborted`` flag, and
        the typed error goes through the normal completion path — so it
        is retryable like any other failure.
        """
        entry = self.inflight
        if entry is None:
            return None
        entry.aborted = True
        self.inflight = None
        self.busy = False
        self.service._complete(entry, None, error)
        return entry

    def retract(self, entry: PendingTask) -> bool:
        """Withdraw an entry without completing it; True if it was running.

        The cancellation primitive: the entry's eventual completion
        callback is discarded via ``aborted``, the lane (or queue slot)
        is freed, and — unlike :meth:`abort_inflight` — *no* outcome
        flows through the pipeline, so nothing retries a retraction.
        Used for caller cancellation and for the losing arm of a hedge.
        """
        entry.aborted = True
        if self.inflight is entry:
            self.inflight = None
            self.busy = False
            self.pump()
            return True
        if entry in self.queue:
            self.queue.remove(entry)
        return False

    def pump(self) -> None:
        if self.busy or not self.queue:
            return
        entry = self.queue.popleft()
        self.busy = True
        self.inflight = entry
        task = entry.task
        task.state = TaskState.RUNNING
        entry.dispatched_at = self.service.clock.now
        if entry.is_hedge:
            # the hedge arm is a shadow of an already-running task: keep
            # the primary's started_at (queue latency counts from the
            # first dispatch) and emit a distinct event kind so journals
            # and per-task metrics never see two dispatches of one task
            self.service.events.emit(
                self.service.clock.now, "faas", "task.hedge_dispatched",
                task_id=task.task_id, endpoint=self.endpoint_id,
                attempt=entry.attempt, pool=task.pool,
            )
        elif task.pool:
            # pool-routed tasks stamp their pool so the metrics bridge can
            # label per-pool series; pinned tasks keep the historic payload
            task.started_at = self.service.clock.now
            self.service.events.emit(
                self.service.clock.now, "faas", "task.dispatched",
                task_id=task.task_id, endpoint=self.endpoint_id,
                attempt=entry.attempt, pool=task.pool,
            )
        else:
            task.started_at = self.service.clock.now
            self.service.events.emit(
                self.service.clock.now, "faas", "task.dispatched",
                task_id=task.task_id, endpoint=self.endpoint_id,
                attempt=entry.attempt,
            )
        self.service.pipeline.dispatched(entry, self.endpoint_id)
        tracer = tracer_of(self.service.clock)
        if tracer.enabled:
            exec_span = tracer.start_span(
                "task.execute",
                parent=entry.span.context if entry.span is not None else None,
                kind="execute", task_id=task.task_id, endpoint=self.endpoint_id,
                dispatch_wait=(
                    self.service.clock.now - (task.submitted_at or 0.0)
                ),
                attempt=entry.attempt,
            )
        else:
            exec_span = tracer.start_span("task.execute")
        # an abort (offline, deadline) may re-queue this entry as a new
        # attempt before this attempt's completion event fires; the
        # generation stamp lets the doomed callback recognise itself even
        # after the retry has cleared the aborted flag
        attempt_at_dispatch = entry.attempt

        def on_done(result, error) -> None:
            tracer.end_span(
                exec_span,
                status="ok" if error is None else "error",
                error="" if error is None else f"{type(error).__name__}: {error}",
            )
            if entry.aborted or entry.attempt != attempt_at_dispatch:
                # the abort already completed (and possibly re-queued)
                # this entry; this is the doomed attempt reporting in late
                return
            # free the lane *before* resolving: done-callbacks may submit
            # follow-up tasks to this endpoint and drive the clock.
            self.busy = False
            self.inflight = None
            self.service._complete(entry, result, error)
            self.pump()

        # a fail-slow window stretches this whole dispatch: the completion
        # callback is deferred by (multiplier - 1) x the execution's
        # elapsed virtual time, modelling an endpoint that stays alive and
        # keeps succeeding while quietly running several-x slow. Sampled
        # once at dispatch, so a window opening mid-task never slows it
        # retroactively (determinism under hedged re-execution).
        injector = injector_of(self.service.clock)
        slow = injector.service_multiplier(self.endpoint_id)
        if slow > 1.0:
            clock = self.service.clock
            dispatch_started = clock.now
            fast_done = on_done

            def slowed_done(result, error) -> None:
                extra = (slow - 1.0) * (clock.now - dispatch_started)
                if extra > 1e-12:
                    clock.call_after(extra, lambda: fast_done(result, error))
                else:
                    fast_done(result, error)

            done_cb = slowed_done
        else:
            done_cb = on_done

        try:
            # the execute span is active for the whole dispatch chain, so
            # pilot provisioning and Slurm submissions parent under it
            with tracer.activate(exec_span.context):
                endpoint = self.service._endpoints.get(self.endpoint_id)
                if endpoint is None:
                    raise EndpointNotFound(
                        f"endpoint {self.endpoint_id!r} disappeared before dispatch"
                    )
                if not endpoint.online:
                    raise EndpointOffline(
                        f"endpoint {self.endpoint_id!r} went offline before dispatch"
                    )
                injector.check_dispatch(endpoint.site.name)
                injected = injector.task_error_for(
                    endpoint.site.name, entry.spec.name
                )
                if injected is not None:
                    raise injected
                # journal recording or journaled-result replay wraps the
                # function body; with durability off this is entry.spec
                spec = self.service.pipeline.wrap_spec(entry)
                if isinstance(endpoint, MultiUserEndpoint):
                    endpoint.execute_async(
                        entry.token, spec, task.args, task.kwargs,
                        done_cb, template_name=entry.template,
                    )
                else:
                    if (
                        endpoint.owner is not None
                        and endpoint.owner != entry.token.identity
                    ):
                        raise PermissionDenied(
                            f"endpoint {self.endpoint_id[:8]} belongs to "
                            f"{endpoint.owner.urn}, not {entry.token.identity.urn}"
                        )
                    endpoint.execute_async(
                        spec, task.args, task.kwargs, done_cb
                    )
        except CoordinatorCrashed:
            # a planned crash is the coordinator process dying, not a
            # dispatch failure — let it unwind the whole run
            raise
        except RecursionError:
            # interpreter stack exhaustion, not a dispatch failure —
            # swallowing it would silently drop clock events (see
            # SimClock.run_until_idle) and break determinism
            raise
        except BaseException as exc:  # noqa: BLE001 - dispatch-time failure
            on_done(None, exc)
