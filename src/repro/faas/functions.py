"""Registered functions and the context they execute in."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Optional

from repro.errors import FunctionNotRegistered
from repro.shellsim.session import ShellServices, ShellSession
from repro.sites.site import NodeHandle
from repro.util.ids import deterministic_uuid


@dataclass(slots=True)
class FunctionContext:
    """What a remote function sees: the node it landed on plus a shell.

    Registered functions take this as their first argument (injected by
    the endpoint), followed by the caller's own arguments. Results must be
    plain data — they travel through the cloud service's serializer.
    """

    handle: NodeHandle
    shell_services: ShellServices
    env: Dict[str, str] = field(default_factory=dict)
    cwd: Optional[str] = None

    def shell(self) -> ShellSession:
        """A fresh shell session on this node."""
        return ShellSession(
            self.handle,
            services=self.shell_services,
            env=dict(self.env),
            cwd=self.cwd,
        )

    @property
    def site_name(self) -> str:
        return self.handle.site.name


@dataclass(frozen=True)
class FunctionSpec:
    """A registered function.

    ``needs_outbound`` marks functions that must run on nodes with
    outbound internet (repository clones); user endpoints route them to
    the login provider on restricted sites, reproducing the MEP-template
    trick from §6.1.
    """

    function_id: str
    name: str
    fn: Callable[..., Any]
    owner_urn: str
    needs_outbound: bool = False


class FunctionRegistry:
    """Cloud-side registry of functions by UUID."""

    def __init__(self) -> None:
        self._functions: Dict[str, FunctionSpec] = {}

    def register(
        self,
        fn: Callable[..., Any],
        name: str,
        owner_urn: str,
        needs_outbound: bool = False,
    ) -> str:
        function_id = deterministic_uuid("function", owner_urn, name)
        self._functions[function_id] = FunctionSpec(
            function_id=function_id,
            name=name,
            fn=fn,
            owner_urn=owner_urn,
            needs_outbound=needs_outbound,
        )
        return function_id

    def get(self, function_id: str) -> FunctionSpec:
        try:
            return self._functions[function_id]
        except KeyError:
            raise FunctionNotRegistered(
                f"no function {function_id!r} registered"
            ) from None

    def has(self, function_id: str) -> bool:
        return function_id in self._functions

    def by_name(self, owner_urn: str, name: str) -> FunctionSpec:
        return self.get(deterministic_uuid("function", owner_urn, name))

    def ids(self) -> List[str]:
        return sorted(self._functions)
