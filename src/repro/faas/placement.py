"""The placement plane: pools, routing policies, and the router.

A task submission names a *target*. When the target is a registered
endpoint id, placement is **pinned** — the router is bypassed entirely
and the task goes exactly where the caller said (today's behavior, and
the default). When the target names an :class:`EndpointPool` (or the
site a pool serves), the :class:`Router` picks a member endpoint with a
pluggable, deterministic policy:

* ``pinned`` — always the pool's first-registered member;
* ``round-robin`` — cycle through members in registration order;
* ``least-loaded`` — the member with the fewest live (submitted but not
  yet finalized) tasks, ties broken by registration order;
* ``weighted`` — smooth weighted round-robin, weights taken from each
  member site's hardware profile (``cpu_speed``), so faster machines
  absorb proportionally more work.

Members that are *inadmissible* — offline (which includes lease-expired:
expiry marks the endpoint offline) or behind an open circuit breaker —
are excluded before the policy runs, so a pool routes around a sick
endpoint instead of submitting to it and failing over afterwards. If no
member is admissible the full member list is used, which lands the task
on the normal offline/breaker machinery with its existing semantics.

Every pool resolution produces a :class:`RouteDecision`; decisions are
appended to :attr:`Router.decisions` and stamped onto the task, its
telemetry span, and its provenance record (``routed_by``, ``pool``,
``queue_depth_at_route``).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional

from repro.errors import EndpointNotFound


@dataclass(frozen=True, slots=True)
class RouteDecision:
    """The outcome of one target resolution."""

    endpoint_id: str
    routed_by: str = ""  # policy name; "" = explicit endpoint target
    pool: str = ""  # pool name; "" = explicit endpoint target
    queue_depth_at_route: int = 0

    @property
    def explicit(self) -> bool:
        return self.pool == ""


@dataclass
class EndpointPool:
    """N endpoints serving one site (or one logical group) under a name.

    Member order is registration order; every policy treats it as the
    canonical order, which is what makes routing deterministic.
    """

    name: str
    site: str = ""
    members: List[str] = field(default_factory=list)

    def add(self, endpoint_id: str) -> None:
        if endpoint_id not in self.members:
            self.members.append(endpoint_id)


class PlacementPolicy:
    """Base class: pick one member from an admissible, ordered list."""

    name = "policy"

    def choose(self, pool: EndpointPool, members: List[str], router: "Router") -> str:
        raise NotImplementedError


class PinnedPolicy(PlacementPolicy):
    """Always the first member — a pool behaves like a single endpoint."""

    name = "pinned"

    def choose(self, pool: EndpointPool, members: List[str], router: "Router") -> str:
        return members[0]


class RoundRobinPolicy(PlacementPolicy):
    """Cycle through members in registration order, one counter per pool."""

    name = "round-robin"

    def __init__(self) -> None:
        self._next: Dict[str, int] = {}

    def choose(self, pool: EndpointPool, members: List[str], router: "Router") -> str:
        index = self._next.get(pool.name, 0)
        # the cursor walks the *full* member list so a temporarily-skipped
        # (inadmissible) endpoint resumes its turn when it comes back
        for _ in range(len(pool.members)):
            candidate = pool.members[index % len(pool.members)]
            index += 1
            if candidate in members:
                self._next[pool.name] = index
                return candidate
        self._next[pool.name] = index
        return members[0]


class LeastLoadedPolicy(PlacementPolicy):
    """The member with the fewest live tasks; ties go to registration order.

    With a health source attached to the router (see
    :attr:`Router.health_of`), equal queue depths are broken by the
    *higher* health score before falling back to registration order —
    so among idle members the one that has not been failing lately
    wins. Without one the key is depth alone, and routing is
    byte-identical to the pre-observability behavior.
    """

    name = "least-loaded"

    def choose(self, pool: EndpointPool, members: List[str], router: "Router") -> str:
        health_of = router.health_of
        if health_of is None:
            return min(members, key=lambda eid: (router.queue_depth(eid),))
        return min(
            members,
            key=lambda eid: (router.queue_depth(eid), -health_of(eid)),
        )


class WeightedPolicy(PlacementPolicy):
    """Smooth weighted round-robin over site hardware speeds.

    Classic nginx algorithm: each pick adds every member's weight to its
    running credit, the largest credit wins and pays back the total
    weight. Deterministic, and over W picks each member receives work in
    proportion to its weight.
    """

    name = "weighted"

    def __init__(self) -> None:
        self._credit: Dict[str, float] = {}

    def choose(self, pool: EndpointPool, members: List[str], router: "Router") -> str:
        weights = {eid: max(router.weight_of(eid), 1e-9) for eid in members}
        for eid in members:
            self._credit[eid] = self._credit.get(eid, 0.0) + weights[eid]
        best = max(members, key=lambda eid: (self._credit[eid], -members.index(eid)))
        self._credit[best] -= sum(weights.values())
        return best


POLICIES = {
    policy.name: policy
    for policy in (PinnedPolicy, RoundRobinPolicy, LeastLoadedPolicy, WeightedPolicy)
}


class Router:
    """Resolves submission targets to endpoints.

    Decoupled from the service through three callables:

    * ``queue_depth(endpoint_id)`` — live assigned-task count,
    * ``admissible(endpoint_id)`` — online and breaker not open,
    * ``weight_of(endpoint_id)`` — relative hardware speed,

    plus an optional fourth, ``health_of(endpoint_id)`` → score in
    [0, 1], attached by :meth:`FaaSService.attach_health` when the
    observability plane is enabled. Policies may consult it as a
    tie-breaker; ``None`` (the default) keeps routing byte-identical.
    """

    def __init__(
        self,
        queue_depth: Callable[[str], int],
        admissible: Callable[[str], bool],
        weight_of: Callable[[str], float],
        policy: str = "pinned",
        health_of: Optional[Callable[[str], float]] = None,
    ) -> None:
        self.queue_depth = queue_depth
        self.admissible = admissible
        self.weight_of = weight_of
        self.health_of = health_of
        self.set_policy(policy)
        self.pools: Dict[str, EndpointPool] = {}
        self._site_pools: Dict[str, str] = {}
        self.decisions: List[RouteDecision] = []

    def set_policy(self, policy: str) -> None:
        if policy not in POLICIES:
            raise ValueError(
                f"unknown placement policy {policy!r}; choices: {sorted(POLICIES)}"
            )
        self.policy = POLICIES[policy]()

    def register_pool(self, pool: EndpointPool) -> EndpointPool:
        self.pools[pool.name] = pool
        if pool.site:
            self._site_pools.setdefault(pool.site, pool.name)
        return pool

    def pool_for(self, target: str) -> Optional[EndpointPool]:
        """The pool a target names (by pool name or served site), if any."""
        name = self._site_pools.get(target, target)
        return self.pools.get(name)

    def resolve(self, target: str) -> RouteDecision:
        """Route a pool/site target through the active policy."""
        pool = self.pool_for(target)
        if pool is None:
            raise EndpointNotFound(
                f"no endpoint, pool, or site {target!r} registered"
            )
        if not pool.members:
            raise EndpointNotFound(f"pool {pool.name!r} has no endpoints")
        members = [eid for eid in pool.members if self.admissible(eid)]
        if not members:
            # nothing healthy: hand the task to the normal offline /
            # breaker machinery rather than inventing a new failure mode
            members = list(pool.members)
        chosen = self.policy.choose(pool, members, self)
        decision = RouteDecision(
            endpoint_id=chosen,
            routed_by=self.policy.name,
            pool=pool.name,
            queue_depth_at_route=self.queue_depth(chosen),
        )
        self.decisions.append(decision)
        return decision
