"""A federated Function-as-a-Service platform (Globus Compute stand-in).

The cloud service (:class:`FaaSService`) is the single contact point:
functions are registered with it, tasks are submitted to it, and results
are retrieved from it — but it is a thin control-plane core over three
layers. The **placement plane** (:mod:`repro.faas.placement`) resolves
pool/site targets to endpoints through pluggable deterministic policies;
the **resilience plane** (:mod:`repro.faas.pipeline`) composes retry,
circuit breaking, timeout, failover, replay substitution, and lease
touching as ordered interceptor middleware; the **overload-protection plane**
(:mod:`repro.faas.overload`) sits at the head of the interceptor chain
and applies per-tenant admission quotas, AIMD concurrency limiting,
retry budgets, and priority load shedding with sampling brownout; the
**dispatch plane** (:mod:`repro.faas.dispatch`) does per-endpoint FIFO
ordering and execution, nothing else. Endpoints connect outbound from sites and
execute tasks on resources provisioned through providers. Multi-user
endpoints fork per-user endpoints via site identity mapping and enforce
high-assurance policies and function allow-lists — the security
machinery CORRECT builds on (§5.1–§5.2).
"""

from repro.faas.task import Task, TaskState
from repro.faas.functions import FunctionSpec, FunctionRegistry, FunctionContext
from repro.faas.endpoint import (
    UserEndpoint,
    MultiUserEndpoint,
    EndpointTemplate,
)
from repro.faas.future import Future, TaskFuture
from repro.faas.placement import (
    EndpointPool,
    PlacementPolicy,
    POLICIES,
    RouteDecision,
    Router,
)
from repro.faas.pipeline import DEFAULT_ORDER, Interceptor, Pipeline
from repro.faas.overload import (
    OverloadConfig,
    OverloadController,
    PRIORITY_BATCH,
    PRIORITY_CRITICAL,
    PRIORITY_NORMAL,
)
from repro.faas.dispatch import EndpointDispatcher, PendingTask
from repro.faas.service import BatchRequest, FaaSService
from repro.faas.client import ComputeClient

__all__ = [
    "Task",
    "TaskState",
    "Future",
    "TaskFuture",
    "BatchRequest",
    "FunctionSpec",
    "FunctionRegistry",
    "FunctionContext",
    "UserEndpoint",
    "MultiUserEndpoint",
    "EndpointTemplate",
    "EndpointPool",
    "EndpointDispatcher",
    "PendingTask",
    "PlacementPolicy",
    "POLICIES",
    "RouteDecision",
    "Router",
    "DEFAULT_ORDER",
    "Interceptor",
    "OverloadConfig",
    "OverloadController",
    "PRIORITY_BATCH",
    "PRIORITY_CRITICAL",
    "PRIORITY_NORMAL",
    "Pipeline",
    "FaaSService",
    "ComputeClient",
]
