"""A federated Function-as-a-Service platform (Globus Compute stand-in).

The cloud service (:class:`FaaSService`) is the single contact point:
functions are registered with it, tasks are submitted to it, and results
are retrieved from it. Endpoints connect outbound from sites and execute
tasks on resources provisioned through providers. Multi-user endpoints
fork per-user endpoints via site identity mapping and enforce
high-assurance policies and function allow-lists — the security machinery
CORRECT builds on (§5.1–§5.2).
"""

from repro.faas.task import Task, TaskState
from repro.faas.functions import FunctionSpec, FunctionRegistry, FunctionContext
from repro.faas.endpoint import (
    UserEndpoint,
    MultiUserEndpoint,
    EndpointTemplate,
)
from repro.faas.future import Future, TaskFuture
from repro.faas.service import BatchRequest, FaaSService
from repro.faas.client import ComputeClient

__all__ = [
    "Task",
    "TaskState",
    "Future",
    "TaskFuture",
    "BatchRequest",
    "FunctionSpec",
    "FunctionRegistry",
    "FunctionContext",
    "UserEndpoint",
    "MultiUserEndpoint",
    "EndpointTemplate",
    "FaaSService",
    "ComputeClient",
]
