"""Fail-slow defense: gray-failure detection and speculative hedging.

Outages, crashes, and overload all *announce* themselves — a fail-slow
endpoint does not. It stays online, keeps accepting work, keeps
succeeding, and quietly runs several-x slow, so nothing in the
resilience plane (breaker, retry, lease) ever fires while one gray pool
member inflates every p99 it touches. This module closes that gap with
two cooperating pieces, both deterministic in virtual time:

* The :class:`StragglerDetector` maintains per-endpoint sliding windows
  of observed service times (dispatch → completion, virtual seconds) and
  flags an endpoint whose recent p95 exceeds ``flag_ratio`` times the
  pool median p95. The continuous ``gray_score`` in [0, 1] feeds the
  :class:`~repro.telemetry.health.HealthScorer` (and through it,
  ``least-loaded`` routing with ``--health-routing``), so gray members
  stop winning routing ties *before* any hedge is needed.

* The :class:`HedgeController` owns speculative execution. At every
  primary dispatch it derives a hedge deadline — ``factor`` x the pooled
  service-time ``quantile`` over the sample window, never below
  ``min_deadline`` — and schedules a check. A task still running past
  its deadline gets a duplicate :class:`~repro.faas.dispatch.PendingTask`
  (same task, same future, same endpoint-independent idempotency key) on
  a *different* admissible pool member. First result wins: the winner
  flows through the normal outcome chain exactly once, the loser is
  retracted via :meth:`EndpointDispatcher.retract` and its late callback
  is discarded by the existing attempt/abort guard — the future's
  double-resolution guard is never reachable.

Everything here is off unless the service was built with a
:class:`HedgeConfig`; with the plane off the interceptor hooks return
immediately and worlds are byte-identical to an unhedged build. With it
on, hedge decisions depend only on virtual-time observations, so the
same seed produces the same hedges, the same winners, and the same
report bytes.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Deque, Dict, List, Optional, TYPE_CHECKING
from collections import deque

from repro.faas.dispatch import PendingTask
from repro.telemetry.metrics import percentile

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.faas.service import FaaSService

# A deadline check that fires while the clock is transiently inside a
# task body's measure() region must defer (see _deadline_fired); this is
# the re-check step. Coarse on purpose: a region spanning S virtual
# seconds costs O(S / step) no-op events, and sub-second precision buys
# nothing when deadlines are tens of seconds.
_REGION_RETRY_SECONDS = 1.0


@dataclass(frozen=True)
class HedgeConfig:
    """Tuning for the fail-slow plane; defaults suit pooled Fig. 4 runs.

    ``factor`` x the pooled ``quantile`` is the hedge deadline: at 95/1.5
    roughly one task in twenty is even *eligible* to hedge, which is what
    keeps wasted duplicate work bounded — a healthy run hedges (almost)
    nothing, a gray run hedges exactly the stragglers.
    """

    quantile: float = 95.0  # pooled service-time quantile
    factor: float = 1.5  # deadline = factor x quantile
    min_samples: int = 20  # pooled completions before hedging arms
    min_deadline: float = 5.0  # virtual-seconds floor for the deadline
    window: float = 600.0  # pooled sample window (virtual seconds)
    detector_window: float = 600.0  # per-endpoint detector window
    flag_ratio: float = 2.0  # endpoint p95 / pool median p95 that flags
    detector_min_samples: int = 5  # per-endpoint floor before flagging


class StragglerDetector:
    """Per-endpoint service-time baselines and gray-failure scores.

    A pure observer over (endpoint, elapsed, now) samples: no clock
    events, no randomness — byte-identical across runs with identical
    observations. Scores are relative (endpoint p95 against the pool
    median p95), so a uniformly slow pool is *not* gray: gray failure is
    one member diverging from its peers.
    """

    def __init__(
        self,
        window: float = 600.0,
        flag_ratio: float = 2.0,
        min_samples: int = 5,
    ) -> None:
        if flag_ratio <= 1.0:
            raise ValueError(
                f"flag_ratio must exceed 1.0, got {flag_ratio}"
            )
        self.window = window
        self.flag_ratio = flag_ratio
        self.min_samples = min_samples
        self._samples: Dict[str, Deque] = {}

    def record(self, endpoint_id: str, elapsed: float, now: float) -> None:
        """Observe one completed dispatch's service time."""
        bucket = self._samples.get(endpoint_id)
        if bucket is None:
            bucket = self._samples[endpoint_id] = deque()
        bucket.append((now, elapsed))
        self._prune(bucket, now)

    def _prune(self, bucket: Deque, now: float) -> None:
        floor = now - self.window
        while bucket and bucket[0][0] < floor:
            bucket.popleft()

    def endpoints(self) -> List[str]:
        return sorted(self._samples)

    def p95(self, endpoint_id: str, now: float) -> Optional[float]:
        """Recent p95 service time; None below the sample floor."""
        bucket = self._samples.get(endpoint_id)
        if bucket is None:
            return None
        self._prune(bucket, now)
        if len(bucket) < self.min_samples:
            return None
        return percentile([elapsed for _, elapsed in bucket], 95.0)

    def pool_median(self, now: float) -> Optional[float]:
        """Median of the per-endpoint p95s (endpoints above the floor)."""
        values = sorted(
            p95
            for p95 in (
                self.p95(endpoint_id, now) for endpoint_id in self._samples
            )
            if p95 is not None
        )
        if not values:
            return None
        mid = len(values) // 2
        if len(values) % 2:
            return values[mid]
        return (values[mid - 1] + values[mid]) / 2.0

    def ratio(self, endpoint_id: str, now: float) -> float:
        """Endpoint p95 over pool median p95; 1.0 without evidence."""
        own = self.p95(endpoint_id, now)
        median = self.pool_median(now)
        if own is None or median is None or median <= 0:
            return 1.0
        return own / median

    def gray_score(self, endpoint_id: str, now: float) -> float:
        """Gray-failure score in [0, 1]: 0 at the median, 1 at the flag.

        Linear in the p95 ratio between 1.0 and ``flag_ratio`` — smooth
        enough for health-weighted routing to start deprioritizing an
        endpoint *before* it is formally flagged.
        """
        score = (self.ratio(endpoint_id, now) - 1.0) / (self.flag_ratio - 1.0)
        return min(1.0, max(0.0, score))

    def flagged(self, endpoint_id: str, now: float) -> bool:
        """True when the endpoint's recent p95 crossed the flag ratio."""
        return self.ratio(endpoint_id, now) >= self.flag_ratio


@dataclass
class HedgeStats:
    """Counters the experiment reports and the bench schema export."""

    hedges_launched: int = 0
    hedges_won: int = 0  # the duplicate produced the winning result
    hedges_cancelled: int = 0  # a loser arm was retracted unfinished
    hedges_lost: int = 0  # the duplicate errored; primary kept deciding
    # duplicate execution seconds: virtual time during which *two* copies
    # of one task were executing at once — the redundant half of each
    # race's overlap window, whichever arm ends up winning
    wasted_seconds: float = 0.0
    useful_seconds: float = 0.0  # winning-arm execution, virtual seconds
    stragglers_flagged: int = 0

    def wasted_ratio(self) -> float:
        """Wasted duplicate work as a share of all virtual compute."""
        total = self.useful_seconds + self.wasted_seconds
        if total <= 0:
            return 0.0
        return self.wasted_seconds / total


@dataclass(slots=True)
class _Race:
    """One in-flight hedge: the primary arm, the duplicate, its target."""

    primary: PendingTask
    hedge: PendingTask
    endpoint: str
    launched_at: float
    # tied-request retraction already benched the queued primary (its
    # load slot is unbound); the settle paths must not touch it again
    primary_retired: bool = False


class HedgeController:
    """Runtime state of the fail-slow plane, owned by one service.

    The pipeline's ``hedge`` interceptor is a thin shim onto the hooks
    here, mirroring how the overload interceptors delegate to the
    :class:`~repro.faas.overload.OverloadController`.
    """

    def __init__(self, service: "FaaSService", config: HedgeConfig) -> None:
        self.service = service
        self.config = config
        self.stats = HedgeStats()
        self.detector = StragglerDetector(
            window=config.detector_window,
            flag_ratio=config.flag_ratio,
            min_samples=config.detector_min_samples,
        )
        self._samples: Deque = deque()  # (now, elapsed, endpoint) triples
        self._races: Dict[str, _Race] = {}
        self._flagged: set = set()

    # -- baselines -----------------------------------------------------

    def _prune(self, now: float) -> None:
        floor = now - self.config.window
        while self._samples and self._samples[0][0] < floor:
            self._samples.popleft()

    def hedge_deadline(self, now: float) -> Optional[float]:
        """Quantile-derived deadline, or None before the sample floor.

        The quantile is taken over samples from endpoints *not* currently
        flagged by the detector: a gray member's stretched service times
        would otherwise inflate the pooled p95, raise the deadline, and
        let its own stragglers escape hedging — the baseline must track
        what a healthy member takes. Falls back to the full pool when the
        healthy subset is below the sample floor (e.g. every member
        flagged, or the window just rolled over).
        """
        self._prune(now)
        if len(self._samples) < self.config.min_samples:
            return None
        healthy = [
            elapsed
            for _, elapsed, endpoint_id in self._samples
            if endpoint_id not in self._flagged
        ]
        values = (
            healthy
            if len(healthy) >= self.config.min_samples
            else [elapsed for _, elapsed, _ in self._samples]
        )
        quantile = percentile(values, self.config.quantile)
        return max(self.config.min_deadline, self.config.factor * quantile)

    def _observe(self, endpoint_id: str, elapsed: float, now: float) -> None:
        self._samples.append((now, elapsed, endpoint_id))
        self._prune(now)
        self.detector.record(endpoint_id, elapsed, now)
        flagged_now = self.detector.flagged(endpoint_id, now)
        if flagged_now and endpoint_id not in self._flagged:
            self._flagged.add(endpoint_id)
            self.stats.stragglers_flagged += 1
            self.service.events.emit(
                now, "faas", "straggler.flagged", endpoint=endpoint_id,
                ratio=round(self.detector.ratio(endpoint_id, now), 3),
            )
        elif not flagged_now and endpoint_id in self._flagged:
            self._flagged.discard(endpoint_id)
            self.service.events.emit(
                now, "faas", "straggler.cleared", endpoint=endpoint_id,
            )
        if self._flagged:
            self._sweep_flagged(now)

    def _sweep_flagged(self, now: float) -> None:
        """Queue rescue: hedge entries stuck behind a flagged member.

        A gray member's tail damage is mostly *queueing*: one stretched
        inflight task holds the lane while everything behind it waits out
        the window, and the dispatch-deadline path only ever covers the
        running task. So on every completed observation while any member
        is flagged, entries still queued on a flagged member are hedged
        onto healthy peers — first result wins, and a queued primary that
        loses its race is retracted before it ever runs, costing zero
        duplicate compute.
        """
        for endpoint_id in sorted(self._flagged):
            dispatcher = self.service._dispatchers.get(endpoint_id)
            if dispatcher is None:
                continue
            for queued in list(dispatcher.queue):
                self._launch_hedge(queued, reason="queued")

    def gray_of(self, endpoint_id: str, now: float) -> float:
        """Detector score for health integration (0 = clean, 1 = gray)."""
        return self.detector.gray_score(endpoint_id, now)

    # -- pipeline hooks ------------------------------------------------

    def on_dispatched(self, entry: PendingTask, endpoint_id: str) -> None:
        """Arm a hedge-deadline check for a freshly dispatched primary."""
        if entry.is_hedge:
            race = self._races.get(entry.task.task_id)
            if race is not None and race.hedge is entry:
                self._tie_break(race)
            return
        task = entry.task
        if task.hedged:
            # a queue-rescued primary reached the lane with its race
            # still open; the open race decides, no second deadline
            return
        if not task.pool:
            # a pinned task has no pool sibling to hedge onto
            return
        now = self.service.clock.now
        deadline = self.hedge_deadline(now)
        if deadline is None:
            return
        generation = entry.attempt
        self.service.clock.call_after(
            deadline,
            lambda: self._deadline_fired(entry, generation, deadline),
        )

    def _tie_break(self, race: _Race) -> None:
        """Dean-style tied request: the duplicate reached a lane first.

        The hedge only exists because the primary's member is suspected
        gray; once the duplicate is actually *executing* on a healthy
        peer, a primary still waiting in the gray queue can only lose
        the race late. Retract it now, before it ever runs, and the race
        costs zero duplicate compute. A primary already running keeps
        racing — its head start may still win.
        """
        primary = race.primary
        task = primary.task
        service = self.service
        dispatcher = service._dispatchers.get(task.endpoint_id)
        if dispatcher is None or dispatcher.inflight is primary:
            return
        if primary in dispatcher.queue:
            dispatcher.retract(primary)
            race.primary_retired = True
            service._unbind_load(task.endpoint_id)
            service.events.emit(
                service.clock.now, "faas", "hedge.tied",
                task_id=task.task_id, retired=task.endpoint_id,
                racing=race.endpoint,
            )

    def _deadline_fired(
        self, entry: PendingTask, generation: int, deadline: float
    ) -> None:
        """The primary is still running past its deadline: hedge it."""
        service = self.service
        if service.clock.in_measured_region:
            # The check fired at *speculative* time: some task body is
            # advancing the clock inside a measure() region that will
            # rewind on exit, and the primary's completion event may not
            # even be scheduled yet — acting now would hedge tasks that
            # finish well before the deadline on the real timeline.
            # Defer until the clock is back outside every region.
            service.clock.call_after(
                _REGION_RETRY_SECONDS,
                lambda: self._deadline_fired(entry, generation, deadline),
            )
            return
        if entry.attempt != generation:
            # the check outlived its attempt (abort + retry re-dispatched
            # the entry); the retry armed its own deadline
            return
        self._launch_hedge(entry, deadline=deadline, reason="deadline")

    def _launch_hedge(
        self, entry: PendingTask, deadline: float = 0.0,
        reason: str = "deadline",
    ) -> None:
        """Duplicate ``entry``'s task onto another admissible pool member."""
        service = self.service
        task = entry.task
        if (
            entry.aborted
            or entry.is_hedge
            or task.state.is_terminal
            or task.hedged
            or not task.pool
        ):
            return
        pool = service.router.pools.get(task.pool)
        if pool is None:
            return
        members = list(pool.members)
        candidates = [
            member
            for member in members
            if member != task.endpoint_id and service._admissible(member)
        ]
        if not candidates:
            return
        # deterministic target: least loaded, pool order breaking ties
        target = min(
            candidates,
            key=lambda member: (service.load(member), members.index(member)),
        )
        now = service.clock.now
        hedge = PendingTask(
            task, entry.future, entry.token, entry.spec, entry.template,
            seq=entry.seq, span=entry.span, attempt=entry.attempt,
            is_hedge=True,
        )
        task.hedged = True
        self._races[task.task_id] = _Race(
            primary=entry, hedge=hedge, endpoint=target, launched_at=now
        )
        self.stats.hedges_launched += 1
        # the duplicate occupies a routing slot on its target until the
        # race settles (mirrors _bind_load at submit)
        service._bind_load(target)
        service.events.emit(
            now, "faas", "hedge.launched",
            task_id=task.task_id, from_endpoint=task.endpoint_id,
            to_endpoint=target, deadline=round(deadline, 6),
            elapsed=round(now - (entry.dispatched_at or now), 6),
            reason=reason,
        )
        endpoint = service.endpoint(target)
        delay = (
            service.cloud_overhead_seconds
            + 2 * endpoint.site.network.latency_to_cloud
        )
        dispatcher = service._dispatcher(target)
        service.clock.call_after(delay, lambda: dispatcher.arrive(hedge))

    def on_outcome(
        self, entry: PendingTask, result, error: Optional[BaseException]
    ) -> bool:
        """Settle races; ``True`` suppresses a losing hedge arm's error."""
        service = self.service
        now = service.clock.now
        task = entry.task
        race = self._races.get(task.task_id)
        if error is None and entry.dispatched_at is not None:
            elapsed = now - entry.dispatched_at
            ran_on = (
                race.endpoint
                if race is not None and entry is race.hedge
                else task.endpoint_id
            )
            self.stats.useful_seconds += elapsed
            self._observe(ran_on, elapsed, now)
        if race is None:
            return False
        if entry is race.hedge:
            if error is not None:
                # the duplicate errored: it simply loses. Suppress the
                # outcome — the primary stays the sole decider and the
                # breaker/retry chain never sees speculative failures.
                del self._races[task.task_id]
                self.stats.hedges_lost += 1
                if entry.dispatched_at is not None:
                    self.stats.wasted_seconds += max(
                        0.0, now - entry.dispatched_at
                    )
                service._unbind_load(race.endpoint)
                if race.primary_retired:
                    # the tied-request retraction benched the queued
                    # primary on the bet that this duplicate would win;
                    # it just died, so the primary goes back in line
                    primary = race.primary
                    primary.aborted = False
                    service._bind_load(task.endpoint_id)
                    dispatcher = service._dispatchers.get(task.endpoint_id)
                    if dispatcher is not None:
                        dispatcher.arrive(primary)
                service.events.emit(
                    now, "faas", "hedge.lost",
                    task_id=task.task_id, endpoint=race.endpoint,
                    error=type(error).__name__,
                )
                return True
            # first result wins, and it came from the duplicate: retract
            # the primary and move the task's assignment to the winner
            # before the breaker records, so success credits the endpoint
            # that actually produced it
            del self._races[task.task_id]
            self.stats.hedges_won += 1
            task.hedge_won = True
            task.loser_endpoint = task.endpoint_id
            if not race.primary_retired:
                primary = race.primary
                dispatcher = service._dispatchers.get(task.endpoint_id)
                was_running = (
                    dispatcher.retract(primary)
                    if dispatcher is not None
                    else False
                )
                if was_running and entry.dispatched_at is not None:
                    # both arms executed for the hedge's whole runtime:
                    # that overlap is the duplicated compute this win cost
                    self.stats.wasted_seconds += max(
                        0.0, now - entry.dispatched_at
                    )
                service._unbind_load(task.endpoint_id)
            task.endpoint_id = race.endpoint
            service.events.emit(
                now, "faas", "hedge.won",
                task_id=task.task_id, endpoint=race.endpoint,
                loser=task.loser_endpoint,
            )
            return False
        # entry is the primary arm
        if error is None:
            # the primary finished first: the duplicate is retracted and
            # its (possibly same-batch) completion callback is discarded
            # by the abort guard — the future resolves exactly once
            del self._races[task.task_id]
            self._cancel_hedge(race, task, now)
            return False
        # primary failed with the duplicate still out: the normal
        # breaker/retry chain decides; if it finalizes, on_finalize
        # sweeps the surviving hedge arm
        return False

    def on_finalize(self, entry: PendingTask) -> None:
        """Sweep a surviving hedge arm when its task finalizes anyway."""
        race = self._races.pop(entry.task.task_id, None)
        if race is None:
            return
        self._cancel_hedge(race, entry.task, self.service.clock.now)

    def _cancel_hedge(self, race: _Race, task, now: float) -> None:
        hedge = race.hedge
        dispatcher = self.service._dispatchers.get(race.endpoint)
        was_running = (
            dispatcher.retract(hedge) if dispatcher is not None else False
        )
        if was_running and hedge.dispatched_at is not None:
            self.stats.wasted_seconds += max(0.0, now - hedge.dispatched_at)
        self.stats.hedges_cancelled += 1
        task.loser_endpoint = race.endpoint
        self.service._unbind_load(race.endpoint)
        self.service.events.emit(
            now, "faas", "hedge.cancelled",
            task_id=task.task_id, endpoint=race.endpoint,
            was_running=was_running,
        )

    # -- reporting -----------------------------------------------------

    def snapshot(self) -> Dict[str, float]:
        """JSON-ready counters for reports and the bench schema."""
        stats = self.stats
        return {
            "hedges_launched": stats.hedges_launched,
            "hedges_won": stats.hedges_won,
            "hedges_cancelled": stats.hedges_cancelled,
            "hedges_lost": stats.hedges_lost,
            "wasted_seconds": round(stats.wasted_seconds, 6),
            "useful_seconds": round(stats.useful_seconds, 6),
            "wasted_ratio": round(stats.wasted_ratio(), 6),
            "stragglers_flagged": stats.stragglers_flagged,
        }
