"""Endpoints: where tasks actually execute.

* :class:`UserEndpoint` — a single-user endpoint running in user space,
  with a login executor and (optionally) a compute executor. Functions
  flagged ``needs_outbound`` are routed to the login executor on sites
  whose compute nodes cannot reach the internet (§6.1).
* :class:`MultiUserEndpoint` — a privileged service that forks user
  endpoints on demand: it authenticates the requesting identity, applies
  the site's high-assurance policy, maps the identity to a local account,
  and instantiates a UEP from a named template (§5.1).

Both kinds can carry a function **allow-list**: tasks for unlisted
functions are rejected with :class:`repro.errors.FunctionNotAllowed`
before any code runs (§5.2).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Optional, Set

from repro.auth.identity import Identity
from repro.auth.oauth import Token
from repro.auth.policies import HighAssurancePolicy
from repro.errors import FunctionNotAllowed, NetworkBlocked
from repro.executor.pilot import PilotExecutor
from repro.executor.providers import LocalProvider, Provider, SlurmProvider
from repro.faas.functions import FunctionContext, FunctionSpec
from repro.shellsim.session import ShellServices
from repro.sites.site import Site
from repro.telemetry import tracer_of
from repro.util.ids import deterministic_uuid


@dataclass
class EndpointTemplate:
    """MEP template: how to build a UEP for a mapped user.

    ``compute_partition=None`` means login-only execution (the Anvil
    configuration in §6.2); otherwise tests run on compute nodes via a
    SLURM pilot (the FASTER/Expanse configuration in §6.1).
    """

    name: str = "default"
    compute_partition: Optional[str] = None
    nodes_per_block: int = 1
    walltime: float = 3600.0
    allowed_functions: Optional[Set[str]] = None  # None = allow all
    env: Dict[str, str] = field(default_factory=dict)


class UserEndpoint:
    """A single-user Globus Compute endpoint."""

    def __init__(
        self,
        site: Site,
        local_user: str,
        shell_services: ShellServices,
        template: Optional[EndpointTemplate] = None,
        owner: Optional[Identity] = None,
    ) -> None:
        self.site = site
        self.local_user = local_user
        self.template = template or EndpointTemplate()
        self.owner = owner
        self.shell_services = shell_services
        self.endpoint_id = deterministic_uuid(
            "endpoint", site.name, local_user, self.template.name
        )
        self.online = True
        # liveness lease, held while the FaaS service's lease registry is
        # on; task activity heartbeats it, expiry takes the endpoint down
        self.lease = None

        self._login_executor = PilotExecutor(
            LocalProvider(site, local_user), user=local_user
        )
        self._compute_executor: Optional[PilotExecutor] = None
        if self.template.compute_partition is not None:
            self._compute_executor = PilotExecutor(
                SlurmProvider(
                    site,
                    local_user,
                    partition=self.template.compute_partition,
                    nodes_per_block=self.template.nodes_per_block,
                    walltime=self.template.walltime,
                ),
                user=local_user,
            )

    # -- security ----------------------------------------------------------
    def check_function_allowed(self, spec: FunctionSpec) -> None:
        allowed = self.template.allowed_functions
        if allowed is not None and spec.function_id not in allowed:
            raise FunctionNotAllowed(
                f"endpoint {self.endpoint_id[:8]} on {self.site.name}: "
                f"function {spec.name!r} is not on the allow-list"
            )

    # -- execution ------------------------------------------------------------
    def _executor_for(self, spec: FunctionSpec) -> PilotExecutor:
        if self._compute_executor is None:
            return self._login_executor
        if spec.needs_outbound and not self.site.network.allows_outbound("compute"):
            # Restricted site: route outbound-needing work to the login node.
            return self._login_executor
        return self._compute_executor

    def _task_body(self, spec: FunctionSpec, args: tuple, kwargs: dict):
        def task_body(handle):
            ctx = FunctionContext(
                handle=handle,
                shell_services=self.shell_services,
                env=dict(self.template.env),
            )
            return spec.fn(ctx, *args, **kwargs)

        return task_body

    def execute(self, spec: FunctionSpec, args: tuple, kwargs: dict):
        """Run one task; returns the function's result (or raises)."""
        self.check_function_allowed(spec)
        executor = self._executor_for(spec)
        return executor.submit(self._task_body(spec, args, kwargs))

    def execute_async(
        self,
        spec: FunctionSpec,
        args: tuple,
        kwargs: dict,
        on_done: Callable[[Any, Optional[BaseException]], None],
    ) -> None:
        """Deferred :meth:`execute`: ``on_done(result, error)`` fires at the
        task's virtual completion time. Allow-list violations raise
        immediately — no code runs, so no time passes (§5.2)."""
        self.check_function_allowed(spec)
        executor = self._executor_for(spec)
        tracer = tracer_of(self.site.clock)
        if tracer.enabled:
            tracer.annotate(
                local_user=self.local_user,
                executor=(
                    "compute" if executor is self._compute_executor else "login"
                ),
            )
        executor.submit_async(self._task_body(spec, args, kwargs), on_done)

    def stats(self) -> Dict[str, float]:
        out = {
            "login_tasks": self._login_executor.tasks_run,
            "login_queue_wait": self._login_executor.total_queue_wait,
        }
        if self._compute_executor is not None:
            out["compute_tasks"] = self._compute_executor.tasks_run
            out["compute_queue_wait"] = self._compute_executor.total_queue_wait
            out["compute_blocks"] = self._compute_executor.blocks_started
        return out

    def shutdown(self) -> None:
        self._login_executor.shutdown()
        if self._compute_executor is not None:
            self._compute_executor.shutdown()
        self.online = False


class MultiUserEndpoint:
    """A privileged MEP forking UEPs per authenticated user."""

    def __init__(
        self,
        site: Site,
        shell_services: ShellServices,
        templates: Optional[Dict[str, EndpointTemplate]] = None,
        policy: Optional[HighAssurancePolicy] = None,
        audit_log: Optional[List[dict]] = None,
        instance: str = "",
    ) -> None:
        self.site = site
        self.shell_services = shell_services
        self.templates = templates or {"default": EndpointTemplate()}
        self.policy = policy or HighAssurancePolicy.permissive()
        # ``instance`` distinguishes pool members on one site; the empty
        # default preserves the historical singleton id
        self.endpoint_id = (
            deterministic_uuid("mep", site.name, instance)
            if instance
            else deterministic_uuid("mep", site.name)
        )
        self.online = True
        self.lease = None  # see UserEndpoint.lease
        self.audit_log: List[dict] = audit_log if audit_log is not None else []
        self._ueps: Dict[tuple, UserEndpoint] = {}

    def user_endpoint(
        self, token: Token, template_name: str = "default"
    ) -> UserEndpoint:
        """Fork (or reuse) a UEP for the token's identity.

        Applies, in order: high-assurance policy, identity mapping. Both
        raise on failure, so an unmapped or policy-violating identity
        never reaches a local account.
        """
        self.policy.check(token, self.site.clock.now)
        local_user = self.site.identity_map.resolve(token.identity)
        template = self.templates.get(template_name)
        if template is None:
            raise KeyError(
                f"MEP on {self.site.name}: no template {template_name!r} "
                f"(have {sorted(self.templates)})"
            )
        key = (token.identity.uuid, template_name)
        uep = self._ueps.get(key)
        if uep is None or not uep.online:
            uep = UserEndpoint(
                site=self.site,
                local_user=local_user,
                shell_services=self.shell_services,
                template=template,
                owner=token.identity,
            )
            self._ueps[key] = uep
            self.audit_log.append(
                {
                    "time": self.site.clock.now,
                    "event": "uep.forked",
                    "identity": token.identity.urn,
                    "local_user": local_user,
                    "template": template_name,
                }
            )
        return uep

    def _audit_task(self, token: Token, spec: FunctionSpec) -> None:
        self.audit_log.append(
            {
                "time": self.site.clock.now,
                "event": "task.executed",
                "identity": token.identity.urn,
                "function": spec.name,
            }
        )

    def execute(
        self,
        token: Token,
        spec: FunctionSpec,
        args: tuple,
        kwargs: dict,
        template_name: str = "default",
    ):
        uep = self.user_endpoint(token, template_name)
        self._audit_task(token, spec)
        return uep.execute(spec, args, kwargs)

    def execute_async(
        self,
        token: Token,
        spec: FunctionSpec,
        args: tuple,
        kwargs: dict,
        on_done: Callable[[Any, Optional[BaseException]], None],
        template_name: str = "default",
    ) -> None:
        """Deferred :meth:`execute`. Policy, identity mapping, and template
        resolution still raise synchronously at dispatch — an unmapped or
        policy-violating identity never reaches a local account."""
        uep = self.user_endpoint(token, template_name)
        self._audit_task(token, spec)
        tracer = tracer_of(self.site.clock)
        if tracer.enabled:
            tracer.annotate(template=template_name, identity=token.identity.urn)
        uep.execute_async(spec, args, kwargs, on_done)

    def shutdown(self) -> None:
        for uep in self._ueps.values():
            uep.shutdown()
        self.online = False
