"""The FaaS cloud service: registry, submission, results."""

from __future__ import annotations

import traceback
from typing import Dict, List, Optional, Union

from repro.auth.oauth import AuthService, SCOPE_COMPUTE
from repro.errors import (
    EndpointNotFound,
    EndpointOffline,
    PayloadTooLarge,
    PermissionDenied,
    ReproError,
    TaskFailed,
)
from repro.faas.endpoint import MultiUserEndpoint, UserEndpoint
from repro.faas.functions import FunctionRegistry
from repro.faas.task import Task, TaskState
from repro.util.clock import SimClock
from repro.util.events import EventLog
from repro.util.ids import IdFactory
from repro.util.serialization import DEFAULT_PAYLOAD_LIMIT, serialized_size

# Fixed cloud-side processing overhead per task (queueing, dispatch).
CLOUD_OVERHEAD_SECONDS = 0.8

Endpoint = Union[UserEndpoint, MultiUserEndpoint]


class FaaSService:
    """The hybrid cloud service endpoints register with.

    Execution is synchronous in virtual time: :meth:`submit` routes the
    task to the endpoint, runs it (advancing the shared clock through
    queue waits and compute), records the outcome, and returns the task
    id. :meth:`get_result` then returns the value or raises
    :class:`~repro.errors.TaskFailed` with the remote traceback.
    """

    def __init__(
        self,
        clock: SimClock,
        auth: AuthService,
        events: Optional[EventLog] = None,
        payload_limit: int = DEFAULT_PAYLOAD_LIMIT,
    ) -> None:
        self.clock = clock
        self.auth = auth
        self.events = events if events is not None else EventLog()
        self.functions = FunctionRegistry()
        self.payload_limit = payload_limit
        self._endpoints: Dict[str, Endpoint] = {}
        self._tasks: Dict[str, Task] = {}
        self._task_ids = IdFactory("task")

    # -- registration ------------------------------------------------------------
    def register_endpoint(self, endpoint: Endpoint) -> str:
        self._endpoints[endpoint.endpoint_id] = endpoint
        self.events.emit(
            self.clock.now, "faas", "endpoint.registered",
            endpoint_id=endpoint.endpoint_id,
            site=endpoint.site.name,
            endpoint_kind=type(endpoint).__name__,
        )
        return endpoint.endpoint_id

    def register_function(
        self,
        token_value: str,
        fn,
        name: str,
        needs_outbound: bool = False,
    ) -> str:
        token = self.auth.introspect(token_value, required_scope=SCOPE_COMPUTE)
        function_id = self.functions.register(
            fn, name=name, owner_urn=token.identity.urn,
            needs_outbound=needs_outbound,
        )
        self.events.emit(
            self.clock.now, "faas", "function.registered",
            function_id=function_id, name=name, owner=token.identity.urn,
        )
        return function_id

    def endpoint(self, endpoint_id: str) -> Endpoint:
        endpoint = self._endpoints.get(endpoint_id)
        if endpoint is None:
            raise EndpointNotFound(f"no endpoint {endpoint_id!r} registered")
        return endpoint

    def endpoints(self) -> List[str]:
        return sorted(self._endpoints)

    # -- task lifecycle -------------------------------------------------------------
    def submit(
        self,
        token_value: str,
        endpoint_id: str,
        function_id: str,
        args: tuple = (),
        kwargs: Optional[dict] = None,
        template: str = "default",
    ) -> str:
        """Submit one task; executes synchronously in virtual time."""
        kwargs = kwargs or {}
        token = self.auth.introspect(token_value, required_scope=SCOPE_COMPUTE)
        spec = self.functions.get(function_id)
        endpoint = self.endpoint(endpoint_id)
        if not endpoint.online:
            raise EndpointOffline(f"endpoint {endpoint_id!r} is offline")

        payload_size = serialized_size({"args": list(args), "kwargs": kwargs})
        if payload_size > self.payload_limit:
            raise PayloadTooLarge(
                f"arguments serialize to {payload_size} bytes "
                f"(limit {self.payload_limit})"
            )

        task = Task(
            task_id=self._task_ids.uuid(),
            function_id=function_id,
            endpoint_id=endpoint_id,
            identity_urn=token.identity.urn,
            args=args,
            kwargs=kwargs,
            submitted_at=self.clock.now,
        )
        self._tasks[task.task_id] = task
        self.events.emit(
            self.clock.now, "faas", "task.submitted",
            task_id=task.task_id, function=spec.name,
            endpoint=endpoint_id, identity=token.identity.urn,
        )

        # control-plane cost: runner -> cloud -> endpoint
        self.clock.advance(
            CLOUD_OVERHEAD_SECONDS + 2 * endpoint.site.network.latency_to_cloud
        )
        task.state = TaskState.RUNNING
        task.started_at = self.clock.now
        try:
            if isinstance(endpoint, MultiUserEndpoint):
                result = endpoint.execute(
                    token, spec, args, kwargs, template_name=template
                )
            else:
                if (
                    endpoint.owner is not None
                    and endpoint.owner != token.identity
                ):
                    raise PermissionDenied(
                        f"endpoint {endpoint_id[:8]} belongs to "
                        f"{endpoint.owner.urn}, not {token.identity.urn}"
                    )
                result = endpoint.execute(spec, args, kwargs)
            result_size = serialized_size(result)
            if result_size > self.payload_limit:
                raise PayloadTooLarge(
                    f"result serializes to {result_size} bytes "
                    f"(limit {self.payload_limit})"
                )
            task.result = result
            task.state = TaskState.SUCCESS
        except ReproError as exc:
            task.state = TaskState.FAILED
            task.exception_text = f"{type(exc).__name__}: {exc}"
        except Exception:  # noqa: BLE001 - remote user code may raise anything
            task.state = TaskState.FAILED
            task.exception_text = traceback.format_exc()
        task.completed_at = self.clock.now
        self.events.emit(
            self.clock.now, "faas", "task.completed",
            task_id=task.task_id, state=task.state.value,
        )
        return task.task_id

    def get_task(self, task_id: str) -> Task:
        try:
            return self._tasks[task_id]
        except KeyError:
            raise TaskFailed(f"unknown task {task_id!r}") from None

    def get_result(self, task_id: str):
        """Result of a task; raises :class:`TaskFailed` with the remote error."""
        task = self.get_task(task_id)
        if task.state is TaskState.FAILED:
            raise TaskFailed(
                f"task {task_id} failed remotely",
                remote_traceback=task.exception_text,
            )
        if task.state is not TaskState.SUCCESS:
            raise TaskFailed(f"task {task_id} not complete ({task.state.value})")
        return task.result

    def tasks_for(self, identity_urn: str) -> List[Task]:
        return [
            t for t in self._tasks.values() if t.identity_urn == identity_urn
        ]
