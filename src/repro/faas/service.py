"""The FaaS cloud service: registry, submission, dispatch, results.

The submit→result path is deferred: :meth:`FaaSService.submit` validates
the request, enqueues the task on a **per-endpoint dispatcher**, and
returns a :class:`~repro.faas.future.TaskFuture` immediately — no virtual
time passes. Control-plane cost (cloud overhead plus the runner↔cloud
round trip) becomes a scheduled *dispatch event*; execution is driven by
the shared :class:`~repro.util.clock.SimClock`. Tasks bound for different
endpoints therefore interleave in virtual time: a pilot queue wait on one
site overlaps with compute on another, which is the FaaS amortization
argument of §6.1/§7.3 made concrete.
"""

from __future__ import annotations

import traceback
from collections import deque
from dataclasses import dataclass, field
from typing import Deque, Dict, Iterable, List, Optional, Sequence, Union

from repro.auth.oauth import AuthService, SCOPE_COMPUTE, Token
from repro.errors import (
    EndpointNotFound,
    EndpointOffline,
    PayloadTooLarge,
    PermissionDenied,
    ReproError,
    TaskFailed,
)
from repro.faas.endpoint import MultiUserEndpoint, UserEndpoint
from repro.faas.functions import FunctionRegistry, FunctionSpec
from repro.faas.future import TaskFuture
from repro.faas.task import Task, TaskState
from repro.telemetry import tracer_of
from repro.util.clock import SimClock
from repro.util.events import EventLog
from repro.util.ids import IdFactory
from repro.util.serialization import DEFAULT_PAYLOAD_LIMIT, serialized_size

# Default cloud-side processing overhead per task (queueing, dispatch).
# Constructor parameter ``cloud_overhead_seconds`` overrides it so the
# §7.3 overhead ablation can sweep the control-plane cost.
CLOUD_OVERHEAD_SECONDS = 0.8

Endpoint = Union[UserEndpoint, MultiUserEndpoint]


@dataclass
class BatchRequest:
    """One entry of a :meth:`FaaSService.submit_batch` submission."""

    endpoint_id: str
    function_id: str
    args: tuple = ()
    kwargs: dict = field(default_factory=dict)
    template: str = "default"


@dataclass
class _PendingTask:
    """A validated task waiting on (or moving through) an endpoint queue."""

    task: Task
    future: TaskFuture
    token: Token
    spec: FunctionSpec
    template: str
    # telemetry span opened at submit time; carries the submitter's trace
    # context across the async dispatch boundary
    span: object = None


class _EndpointDispatcher:
    """FIFO dispatch loop for one endpoint.

    Tasks arrive via scheduled dispatch events and run one at a time per
    endpoint (the pilot holds one block); completion hands the loop to
    the next queued task. Separate endpoints have separate dispatchers,
    so their queues drain concurrently in virtual time.
    """

    def __init__(self, service: "FaaSService", endpoint_id: str) -> None:
        self.service = service
        self.endpoint_id = endpoint_id
        self.queue: Deque[_PendingTask] = deque()
        self.busy = False

    def arrive(self, entry: _PendingTask) -> None:
        self.queue.append(entry)
        self.pump()

    def pump(self) -> None:
        if self.busy or not self.queue:
            return
        entry = self.queue.popleft()
        self.busy = True
        task = entry.task
        task.state = TaskState.RUNNING
        task.started_at = self.service.clock.now
        self.service.events.emit(
            self.service.clock.now, "faas", "task.dispatched",
            task_id=task.task_id, endpoint=self.endpoint_id,
        )
        tracer = tracer_of(self.service.clock)
        exec_span = tracer.start_span(
            "task.execute",
            parent=entry.span.context if entry.span is not None else None,
            kind="execute", task_id=task.task_id, endpoint=self.endpoint_id,
            dispatch_wait=self.service.clock.now - (task.submitted_at or 0.0),
        )

        def on_done(result, error) -> None:
            # free the lane *before* resolving: done-callbacks may submit
            # follow-up tasks to this endpoint and drive the clock.
            self.busy = False
            tracer.end_span(
                exec_span,
                status="ok" if error is None else "error",
                error="" if error is None else f"{type(error).__name__}: {error}",
            )
            self.service._complete(entry, result, error)
            self.pump()

        try:
            # the execute span is active for the whole dispatch chain, so
            # pilot provisioning and Slurm submissions parent under it
            with tracer.activate(exec_span.context):
                endpoint = self.service._endpoints.get(self.endpoint_id)
                if endpoint is None:
                    raise EndpointNotFound(
                        f"endpoint {self.endpoint_id!r} disappeared before dispatch"
                    )
                if not endpoint.online:
                    raise EndpointOffline(
                        f"endpoint {self.endpoint_id!r} went offline before dispatch"
                    )
                if isinstance(endpoint, MultiUserEndpoint):
                    endpoint.execute_async(
                        entry.token, entry.spec, task.args, task.kwargs,
                        on_done, template_name=entry.template,
                    )
                else:
                    if (
                        endpoint.owner is not None
                        and endpoint.owner != entry.token.identity
                    ):
                        raise PermissionDenied(
                            f"endpoint {self.endpoint_id[:8]} belongs to "
                            f"{endpoint.owner.urn}, not {entry.token.identity.urn}"
                        )
                    endpoint.execute_async(
                        entry.spec, task.args, task.kwargs, on_done
                    )
        except BaseException as exc:  # noqa: BLE001 - dispatch-time failure
            on_done(None, exc)


class FaaSService:
    """The hybrid cloud service endpoints register with.

    :meth:`submit` enqueues and returns a :class:`TaskFuture`; the task
    executes as the clock is driven past its dispatch, provisioning, and
    completion events. ``future.result()`` (and the blocking client
    wrapper built on it) drives the clock on the caller's behalf, so
    code written against the old synchronous API behaves identically.
    """

    def __init__(
        self,
        clock: SimClock,
        auth: AuthService,
        events: Optional[EventLog] = None,
        payload_limit: int = DEFAULT_PAYLOAD_LIMIT,
        cloud_overhead_seconds: float = CLOUD_OVERHEAD_SECONDS,
    ) -> None:
        self.clock = clock
        self.auth = auth
        self.events = events if events is not None else EventLog()
        self.functions = FunctionRegistry()
        self.payload_limit = payload_limit
        self.cloud_overhead_seconds = cloud_overhead_seconds
        self._endpoints: Dict[str, Endpoint] = {}
        self._tasks: Dict[str, Task] = {}
        self._futures: Dict[str, TaskFuture] = {}
        self._dispatchers: Dict[str, _EndpointDispatcher] = {}
        self._task_ids = IdFactory("task")

    # -- registration ------------------------------------------------------------
    def register_endpoint(self, endpoint: Endpoint) -> str:
        self._endpoints[endpoint.endpoint_id] = endpoint
        self.events.emit(
            self.clock.now, "faas", "endpoint.registered",
            endpoint_id=endpoint.endpoint_id,
            site=endpoint.site.name,
            endpoint_kind=type(endpoint).__name__,
        )
        return endpoint.endpoint_id

    def register_function(
        self,
        token_value: str,
        fn,
        name: str,
        needs_outbound: bool = False,
    ) -> str:
        token = self.auth.introspect(token_value, required_scope=SCOPE_COMPUTE)
        function_id = self.functions.register(
            fn, name=name, owner_urn=token.identity.urn,
            needs_outbound=needs_outbound,
        )
        self.events.emit(
            self.clock.now, "faas", "function.registered",
            function_id=function_id, name=name, owner=token.identity.urn,
        )
        return function_id

    def endpoint(self, endpoint_id: str) -> Endpoint:
        endpoint = self._endpoints.get(endpoint_id)
        if endpoint is None:
            raise EndpointNotFound(f"no endpoint {endpoint_id!r} registered")
        return endpoint

    def endpoints(self) -> List[str]:
        return sorted(self._endpoints)

    def _dispatcher(self, endpoint_id: str) -> _EndpointDispatcher:
        dispatcher = self._dispatchers.get(endpoint_id)
        if dispatcher is None:
            dispatcher = _EndpointDispatcher(self, endpoint_id)
            self._dispatchers[endpoint_id] = dispatcher
        return dispatcher

    # -- task lifecycle -------------------------------------------------------------
    def submit(
        self,
        token_value: str,
        endpoint_id: str,
        function_id: str,
        args: tuple = (),
        kwargs: Optional[dict] = None,
        template: str = "default",
    ) -> TaskFuture:
        """Enqueue one task; returns its future immediately.

        Validation (credentials, endpoint existence and liveness, payload
        size) happens eagerly and raises, mirroring the SDK rejecting a
        request at the cloud's front door. Everything downstream —
        dispatch, policy checks, provisioning, execution — happens as
        clock events and surfaces through the future.
        """
        kwargs = kwargs or {}
        token = self.auth.introspect(token_value, required_scope=SCOPE_COMPUTE)
        spec = self.functions.get(function_id)
        endpoint = self.endpoint(endpoint_id)
        if not endpoint.online:
            raise EndpointOffline(f"endpoint {endpoint_id!r} is offline")

        payload_size = serialized_size({"args": list(args), "kwargs": kwargs})
        if payload_size > self.payload_limit:
            raise PayloadTooLarge(
                f"arguments serialize to {payload_size} bytes "
                f"(limit {self.payload_limit})"
            )

        task = Task(
            task_id=self._task_ids.uuid(),
            function_id=function_id,
            endpoint_id=endpoint_id,
            identity_urn=token.identity.urn,
            args=args,
            kwargs=kwargs,
            submitted_at=self.clock.now,
        )
        self._tasks[task.task_id] = task
        future = TaskFuture(self.clock, task)
        self._futures[task.task_id] = future
        self.events.emit(
            self.clock.now, "faas", "task.submitted",
            task_id=task.task_id, function=spec.name,
            endpoint=endpoint_id, identity=token.identity.urn,
        )

        # task span parents under whatever is active at the submit site
        # (a CI step, a CORRECT action...) and is carried on the pending
        # entry so dispatch/execution can hang below it.
        span = tracer_of(self.clock).start_span(
            f"task:{spec.name}", kind="task",
            task_id=task.task_id, function=spec.name,
            endpoint=endpoint_id, site=endpoint.site.name,
        )
        future.span = span
        entry = _PendingTask(task, future, token, spec, template, span=span)
        dispatcher = self._dispatcher(endpoint_id)
        # control-plane cost: runner -> cloud -> endpoint, as an event
        delay = (
            self.cloud_overhead_seconds
            + 2 * endpoint.site.network.latency_to_cloud
        )
        self.clock.call_after(delay, lambda: dispatcher.arrive(entry))
        return future

    def submit_batch(
        self,
        token_value: str,
        requests: Sequence[BatchRequest],
    ) -> List[TaskFuture]:
        """Enqueue many tasks at once; futures come back in request order.

        One authentication round covers the whole batch, and tasks fan
        out to their endpoint dispatchers immediately — the bulk path the
        ROADMAP's heavy-traffic goal calls for.
        """
        return [
            self.submit(
                token_value,
                request.endpoint_id,
                request.function_id,
                args=request.args,
                kwargs=request.kwargs,
                template=request.template,
            )
            for request in requests
        ]

    def _complete(
        self, entry: _PendingTask, result, error: Optional[BaseException]
    ) -> None:
        """Record a finished dispatch and resolve its future."""
        task = entry.task
        if error is None:
            try:
                result_size = serialized_size(result)
                if result_size > self.payload_limit:
                    raise PayloadTooLarge(
                        f"result serializes to {result_size} bytes "
                        f"(limit {self.payload_limit})"
                    )
            except ReproError as exc:
                error = exc
        if error is None:
            task.result = result
            task.state = TaskState.SUCCESS
        else:
            task.state = TaskState.FAILED
            if isinstance(error, ReproError):
                task.exception_text = f"{type(error).__name__}: {error}"
            else:
                task.exception_text = "".join(
                    traceback.format_exception(
                        type(error), error, error.__traceback__
                    )
                )
        task.completed_at = self.clock.now
        tracer_of(self.clock).end_span(
            entry.span,
            status="ok" if task.state is TaskState.SUCCESS else "error",
            error="" if error is None else f"{type(error).__name__}: {error}",
        )
        self.events.emit(
            self.clock.now, "faas", "task.completed",
            task_id=task.task_id, state=task.state.value,
            endpoint=task.endpoint_id, function=entry.spec.name,
        )
        future = self._futures.get(task.task_id)
        if future is not None:
            future.resolve_from_task()

    # -- results ---------------------------------------------------------------
    def drive_until_complete(self, task_id: str) -> Task:
        """Advance virtual time event-by-event until the task is terminal."""
        task = self.get_task(task_id)
        while not task.state.is_terminal:
            nxt = self.clock.next_event_time()
            if nxt is None:
                raise TaskFailed(
                    f"task {task_id} cannot complete: no pending events "
                    f"(state {task.state.value})"
                )
            self.clock.run_until(nxt)
        return task

    def get_task(self, task_id: str) -> Task:
        try:
            return self._tasks[task_id]
        except KeyError:
            raise TaskFailed(f"unknown task {task_id!r}") from None

    def get_future(self, task_id: str) -> TaskFuture:
        try:
            return self._futures[task_id]
        except KeyError:
            raise TaskFailed(f"unknown task {task_id!r}") from None

    def get_result(self, task_id: str):
        """Result of a task; raises :class:`TaskFailed` with the remote error.

        Blocking wrapper over the future: a task still in flight is
        driven to completion in virtual time first.
        """
        task = self.drive_until_complete(task_id)
        if task.state is TaskState.FAILED:
            raise TaskFailed(
                f"task {task_id} failed remotely",
                remote_traceback=task.exception_text,
            )
        if task.state is not TaskState.SUCCESS:
            raise TaskFailed(f"task {task_id} not complete ({task.state.value})")
        return task.result

    def tasks_for(self, identity_urn: str) -> List[Task]:
        return [
            t for t in self._tasks.values() if t.identity_urn == identity_urn
        ]
